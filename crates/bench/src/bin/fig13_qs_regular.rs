//! Fig. 13: QS-CaQR on regular applications — logical and compiled depth
//! across the full qubit-usage sweep (Multiply_13, System_9, BV_10).
//!
//! The paper's observation: logical depth rises monotonically as qubits
//! shrink, but the *compiled* depth first falls (reuse relieves SWAP
//! pressure) and only rises once saving gets too aggressive — so the sweet
//! spot sits in the middle.

use caqr::{baseline, qs};
use caqr_bench::{device_for, format_dt, Table};
use caqr_benchmarks::{bv, revlib};
use caqr_circuit::depth::duration_dt;

fn sweep(bench: &caqr_benchmarks::Benchmark) {
    let device = device_for(bench.circuit.num_qubits());
    println!("\n{} (device: {}):", bench.name, device.topology());
    let points = qs::regular::sweep(&bench.circuit, &device.logical_duration_model());
    let mut t = Table::new(&[
        "qubits",
        "logical depth",
        "compiled depth",
        "compiled duration",
        "SWAPs",
    ]);
    for p in &points {
        let routed = baseline::compile(&p.circuit, &device).expect("fits device");
        t.row(&[
            p.qubits.to_string(),
            p.depth().to_string(),
            routed.circuit.depth().to_string(),
            format_dt(duration_dt(&routed.circuit, &device.duration_model())),
            routed.swap_count.to_string(),
        ]);
    }
    t.print();
}

fn main() {
    println!("Fig. 13 — QS-CaQR qubit-usage sweep, regular applications");
    sweep(&revlib::multiply_13());
    sweep(&revlib::system_9());
    sweep(&bv::bv_all_ones(10));
}
