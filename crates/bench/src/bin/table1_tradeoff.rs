//! Table 1: the QS-CaQR trade-off — baseline vs maximal reuse vs minimal
//! depth, reporting qubits / depth / duration / SWAPs for the full suite
//! (seven regular applications + QAOA{5,10,15,20,25}-0.3).
//!
//! All `suite x strategy` compiles run through the batch engine (worker
//! pool + compile cache); the printed numbers are identical to sequential
//! per-circuit compilation.

use caqr::Strategy;
use caqr_bench::{compile_grid, format_dt, Table};
use caqr_benchmarks::suite;

fn main() {
    println!("Table 1 — QS-CaQR versions vs baseline\n");
    let strategies = [
        Strategy::Baseline,
        Strategy::QsMaxReuse,
        Strategy::QsMinDepth,
    ];
    let benches = suite::full_table_suite(caqr_bench::EXPERIMENT_SEED);
    let grid = compile_grid(&benches, &strategies);
    for (column, strategy) in strategies.iter().enumerate() {
        let title = match strategy {
            Strategy::Baseline => "Baseline (No Reuse)",
            Strategy::QsMaxReuse => "Ours with Maximal Reuse",
            Strategy::QsMinDepth => "Ours with Minimal Depth",
            _ => unreachable!(),
        };
        println!("{title}:");
        let mut t = Table::new(&["benchmark", "qubit", "depth", "duration", "SWAP"]);
        for (bench, row) in benches.iter().zip(&grid) {
            match &row[column] {
                Ok(report) => t.row(&[
                    bench.name.clone(),
                    report.qubits.to_string(),
                    report.depth.to_string(),
                    format_dt(report.duration_dt),
                    report.swaps.to_string(),
                ]),
                Err(e) => t.row(&[
                    bench.name.clone(),
                    format!("error: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]),
            }
        }
        t.print();
        println!();
    }
    println!(
        "paper shape: maximal reuse cuts qubits hard at a depth/duration cost;\n\
         minimal depth saves moderately and often beats the baseline's depth."
    );
}
