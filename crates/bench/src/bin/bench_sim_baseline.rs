//! Measures the simulator engine's component wins on the Table 3 workload
//! and writes them to `BENCH_sim.json`.
//!
//! Six configurations run the same noisy workload:
//!
//! 1. `pre_pr` — a frozen re-implementation of the executor as it was
//!    before the parallel/kernel/snapshot work: one shared RNG, per-index
//!    bit-tested gate loops, and idle/gate/readout probabilities
//!    recomputed (`exp()` and all) inside every shot. Wall-clock baseline
//!    only: its shared-stream histograms differ from the per-shot-stream
//!    executor by design.
//! 2. `reference` — the current executor with every optimization off
//!    (sequential, generic gate path, no snapshot, collapse-based
//!    measurement).
//! 3. `kernels` — specialized stride kernels + hoisted noise tables.
//! 4. `kernels_snapshot` — plus noiseless-prefix snapshotting.
//! 5. `sampling` — plus deferred-measurement sampling (collapse-free
//!    terminal measurements).
//! 6. `full` — plus auto worker threads (equal to `sampling` on a
//!    single-core host).
//!
//! Configurations 2-4 must produce bit-identical histograms, as must 5-6
//! (asserted) — including the support-tracked sparse engine, which
//! engages inside `full` on the low-support Multiply_13 circuit and is
//! bit-identical to dense by construction (`full_no_sparse` attributes
//! its win). A separate dynamic Clifford workload (`stab_*` rows) pits
//! the dense engine against the whole-circuit stabilizer tableau; those
//! two agree in distribution only, so they are compared by TVD.
//!
//! Usage: `bench_sim_baseline [--quick] [--check] [--out PATH]`
//!
//! `--quick` shrinks the shot count (CI smoke); `--check` skips writing
//! the JSON, verifies the cross-configuration histogram equality, and
//! enforces the `full` throughput floor at the full shot count; `--out`
//! overrides the output path.

use caqr::{compile, Strategy};
use caqr_bench::{mumbai, EXPERIMENT_SEED};
use caqr_benchmarks::{bv, extra, revlib, Benchmark};
use caqr_circuit::Circuit;
use caqr_sim::{metrics, Counts, Engine, Executor, KernelDispatch, NoiseModel, ShotReport};
use std::time::Instant;

/// Shots/s the `full` configuration must sustain on the 2000-shot
/// Table 3 workload: 3x the frozen pre-PR executor's 8,418 shots/s.
const FULL_FLOOR_SHOTS_PER_SEC: f64 = 25_255.0;

/// The executor as it stood before this optimization pass, reconstructed
/// verbatim so the speedup in `BENCH_sim.json` is measured against real
/// history rather than a de-tuned current build.
mod pre_pr {
    use caqr_circuit::depth::Schedule;
    use caqr_circuit::{Circuit, Gate};
    use caqr_sim::noise::IdleChannel;
    use caqr_sim::{Counts, NoiseModel, C64};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    struct State {
        n: usize,
        amps: Vec<C64>,
    }

    impl State {
        fn zero(n: usize) -> Self {
            let mut amps = vec![C64::ZERO; 1 << n];
            amps[0] = C64::ONE;
            State { n, amps }
        }

        fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
            let bit = 1usize << q;
            for i in 0..self.amps.len() {
                if i & bit == 0 {
                    let j = i | bit;
                    let (a0, a1) = (self.amps[i], self.amps[j]);
                    self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                    self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
                }
            }
        }

        fn diag_1q(&mut self, q: usize, m0: C64, m1: C64) {
            let bit = 1usize << q;
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = if i & bit == 0 { m0 } else { m1 } * *a;
            }
        }

        fn phase_1q(&mut self, q: usize, phase: C64) {
            self.diag_1q(q, C64::ONE, phase);
        }

        fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
            match *gate {
                Gate::H => {
                    let s = std::f64::consts::FRAC_1_SQRT_2;
                    self.apply_1q(
                        qubits[0],
                        [[C64::real(s), C64::real(s)], [C64::real(s), C64::real(-s)]],
                    );
                }
                Gate::X => self.apply_1q(qubits[0], [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
                Gate::Y => self.apply_1q(qubits[0], [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
                Gate::Z => self.phase_1q(qubits[0], C64::real(-1.0)),
                Gate::S => self.phase_1q(qubits[0], C64::I),
                Gate::Sdg => self.phase_1q(qubits[0], -C64::I),
                Gate::T => self.phase_1q(qubits[0], C64::cis(std::f64::consts::FRAC_PI_4)),
                Gate::Tdg => self.phase_1q(qubits[0], C64::cis(-std::f64::consts::FRAC_PI_4)),
                Gate::Rx(a) => {
                    let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                    self.apply_1q(
                        qubits[0],
                        [
                            [C64::real(c), C64::new(0.0, -s)],
                            [C64::new(0.0, -s), C64::real(c)],
                        ],
                    );
                }
                Gate::Ry(a) => {
                    let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                    self.apply_1q(
                        qubits[0],
                        [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]],
                    );
                }
                Gate::Rz(a) => self.diag_1q(qubits[0], C64::cis(-a / 2.0), C64::cis(a / 2.0)),
                Gate::Phase(a) => self.phase_1q(qubits[0], C64::cis(a)),
                Gate::U(theta, phi, lambda) => {
                    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                    self.apply_1q(
                        qubits[0],
                        [
                            [C64::real(c), -(C64::cis(lambda).scale(s))],
                            [C64::cis(phi).scale(s), C64::cis(phi + lambda).scale(c)],
                        ],
                    );
                }
                Gate::Cx => {
                    let (cb, tb) = (1usize << qubits[0], 1usize << qubits[1]);
                    for i in 0..self.amps.len() {
                        if i & cb != 0 && i & tb == 0 {
                            self.amps.swap(i, i | tb);
                        }
                    }
                }
                Gate::Cz => self.cphase(qubits[0], qubits[1], C64::real(-1.0)),
                Gate::Cp(a) => self.cphase(qubits[0], qubits[1], C64::cis(a)),
                Gate::Rzz(a) => {
                    let (ab, bb) = (1usize << qubits[0], 1usize << qubits[1]);
                    let (even, odd) = (C64::cis(-a / 2.0), C64::cis(a / 2.0));
                    for (i, amp) in self.amps.iter_mut().enumerate() {
                        let parity = ((i & ab != 0) as u8) ^ ((i & bb != 0) as u8);
                        *amp = if parity == 0 { even } else { odd } * *amp;
                    }
                }
                Gate::Swap => {
                    let (ab, bb) = (1usize << qubits[0], 1usize << qubits[1]);
                    for i in 0..self.amps.len() {
                        if i & ab != 0 && i & bb == 0 {
                            self.amps.swap(i, (i & !ab) | bb);
                        }
                    }
                }
                Gate::Measure | Gate::Reset => unreachable!("handled by the caller"),
            }
        }

        fn cphase(&mut self, a: usize, b: usize, phase: C64) {
            let (ab, bb) = (1usize << a, 1usize << b);
            for (i, amp) in self.amps.iter_mut().enumerate() {
                if i & ab != 0 && i & bb != 0 {
                    *amp = phase * *amp;
                }
            }
        }

        fn prob_one(&self, q: usize) -> f64 {
            let bit = 1usize << q;
            self.amps
                .iter()
                .enumerate()
                .filter(|(i, _)| i & bit != 0)
                .map(|(_, a)| a.abs2())
                .sum()
        }

        fn project(&mut self, q: usize, value: bool) {
            let bit = 1usize << q;
            let mut keep = 0.0;
            for (i, a) in self.amps.iter().enumerate() {
                if ((i & bit != 0) == value) && a.abs2() > 0.0 {
                    keep += a.abs2();
                }
            }
            let scale = if keep > 0.0 { 1.0 / keep.sqrt() } else { 0.0 };
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = if (i & bit != 0) == value {
                    a.scale(scale)
                } else {
                    C64::ZERO
                };
            }
        }

        fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
            let p1 = self.prob_one(q);
            let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
            self.project(q, outcome);
            outcome
        }

        fn reset(&mut self, q: usize, rng: &mut impl Rng) {
            if self.measure(q, rng) {
                self.apply_gate(&Gate::X, &[q]);
            }
        }

        fn amplitude_damp(&mut self, q: usize, gamma: f64, rng: &mut impl Rng) {
            if gamma == 0.0 {
                return;
            }
            let p1 = self.prob_one(q);
            let p_jump = (gamma * p1).clamp(0.0, 1.0);
            let bit = 1usize << q;
            if p_jump > 0.0 && rng.gen_bool(p_jump) {
                let scale = (gamma / p_jump).sqrt();
                for i in 0..self.amps.len() {
                    if i & bit == 0 {
                        self.amps[i] = self.amps[i | bit].scale(scale);
                        self.amps[i | bit] = C64::ZERO;
                    }
                }
            } else {
                let damp = (1.0 - gamma).sqrt();
                let norm = (1.0 - p_jump).sqrt();
                for (i, a) in self.amps.iter_mut().enumerate() {
                    *a = if i & bit == 0 {
                        a.scale(1.0 / norm)
                    } else {
                        a.scale(damp / norm)
                    };
                }
            }
        }

        fn num_qubits(&self) -> usize {
            self.n
        }
    }

    /// `run_shots` exactly as the previous executor ran it: serial, one
    /// shared RNG, all noise probabilities recomputed per shot.
    pub fn run_shots(model: &NoiseModel, circuit: &Circuit, shots: usize, seed: u64) -> Counts {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = Counts::new(circuit.num_clbits());
        let schedule = Schedule::asap(circuit, &model.device().duration_model());
        for _ in 0..shots {
            counts.record(run_single(model, circuit, &schedule, &mut rng));
        }
        counts
    }

    fn run_single(
        model: &NoiseModel,
        circuit: &Circuit,
        schedule: &Schedule,
        rng: &mut impl Rng,
    ) -> u64 {
        let mut state = State::zero(circuit.num_qubits());
        let mut clreg: u64 = 0;
        let mut busy_until = vec![0u64; state.num_qubits()];

        for (idx, instr) in circuit.iter().enumerate() {
            let start = schedule.start(idx);
            for q in &instr.qubits {
                let gap = start.saturating_sub(busy_until[q.index()]);
                match model.idle_channel() {
                    IdleChannel::PauliTwirl => {
                        let p = model.idle_error(q.index(), gap);
                        if p > 0.0 && rng.gen_bool(p) {
                            state.apply_gate(&NoiseModel::random_pauli(rng), &[q.index()]);
                        }
                    }
                    IdleChannel::ThermalRelaxation => {
                        let gamma = model.idle_gamma(q.index(), gap);
                        if gamma > 0.0 {
                            state.amplitude_damp(q.index(), gamma, rng);
                        }
                        let pz = model.idle_dephase(q.index(), gap);
                        if pz > 0.0 && rng.gen_bool(pz) {
                            state.apply_gate(&Gate::Z, &[q.index()]);
                        }
                    }
                }
                busy_until[q.index()] = schedule.finish(idx);
            }

            if let Some(cond) = instr.condition {
                if clreg >> cond.index() & 1 == 0 {
                    continue;
                }
            }

            let operands: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
            match instr.gate {
                Gate::Measure => {
                    let q = operands[0];
                    let mut bit = state.measure(q, rng);
                    let p = model.readout_error(q);
                    if p > 0.0 && rng.gen_bool(p) {
                        bit = !bit;
                    }
                    let c = instr.clbit.expect("measure has a clbit").index();
                    if bit {
                        clreg |= 1 << c;
                    } else {
                        clreg &= !(1 << c);
                    }
                }
                Gate::Reset => state.reset(operands[0], rng),
                ref gate => {
                    state.apply_gate(gate, &operands);
                    let p = model.gate_error(instr);
                    for &q in &operands {
                        if p > 0.0 && rng.gen_bool(p) {
                            state.apply_gate(&NoiseModel::random_pauli(rng), &[q]);
                        }
                    }
                }
            }
        }
        clreg
    }
}

struct Config {
    name: &'static str,
    exec: Executor,
    /// Configs in the same group must produce bit-identical histograms.
    group: usize,
}

fn configs() -> Vec<Config> {
    let model = NoiseModel::from_device(mumbai());
    vec![
        Config {
            name: "reference",
            exec: Executor::noisy(model.clone()).reference(),
            group: 0,
        },
        Config {
            name: "scalar_kernels",
            exec: Executor::noisy(model.clone())
                .with_threads(1)
                .with_snapshot(false)
                .with_sampling(false)
                .with_wide(false)
                .with_chunked_fusion(false),
            group: 0,
        },
        Config {
            name: "wide",
            exec: Executor::noisy(model.clone())
                .with_threads(1)
                .with_snapshot(false)
                .with_sampling(false)
                .with_chunked_fusion(false),
            group: 0,
        },
        Config {
            name: "wide_snapshot",
            exec: Executor::noisy(model.clone())
                .with_threads(1)
                .with_sampling(false)
                .with_chunked_fusion(false),
            group: 0,
        },
        Config {
            name: "wide_fused2q",
            exec: Executor::noisy(model.clone())
                .with_threads(1)
                .with_sampling(false),
            group: 0,
        },
        Config {
            name: "sampling",
            exec: Executor::noisy(model.clone())
                .with_threads(1)
                .with_sparse(false),
            group: 1,
        },
        Config {
            name: "full_no_sparse",
            exec: Executor::noisy(model.clone()).with_sparse(false),
            group: 1,
        },
        Config {
            name: "full",
            exec: Executor::noisy(model),
            group: 1,
        },
    ]
}

/// The Table 3 benchmarks, compiled for Mumbai and compacted to their used
/// wires — exactly what `table3_tvd` simulates.
fn workload() -> Vec<(String, Circuit)> {
    let device = mumbai();
    let benches: Vec<Benchmark> = vec![
        bv::bv_all_ones(5),
        bv::bv_all_ones(10),
        revlib::multiply_13(),
        revlib::cc_10(),
        revlib::cc_13(),
    ];
    benches
        .into_iter()
        .map(|bench| {
            let report = compile(&bench.circuit, &device, Strategy::Baseline).expect("fits");
            (bench.name, report.circuit.compact_qubits().0)
        })
        .collect()
}

struct Measurement {
    name: &'static str,
    group: usize,
    wall_s: f64,
    shots_per_sec: f64,
    counts: Vec<Counts>,
    /// One traced report per workload circuit (per-layer attribution).
    reports: Vec<ShotReport>,
}

fn measure(config: &Config, workload: &[(String, Circuit)], shots: usize) -> Measurement {
    let started = Instant::now();
    let mut counts = Vec::with_capacity(workload.len());
    let mut reports = Vec::with_capacity(workload.len());
    let mut total_shots = 0usize;
    for (_, circuit) in workload {
        let (c, report) = config
            .exec
            .run_shots_traced(circuit, shots, EXPERIMENT_SEED);
        total_shots += shots;
        counts.push(c);
        reports.push(report);
    }
    let wall_s = started.elapsed().as_secs_f64();
    Measurement {
        name: config.name,
        group: config.group,
        wall_s,
        shots_per_sec: total_shots as f64 / wall_s.max(1e-12),
        counts,
        reports,
    }
}

fn main() {
    let mut quick = false;
    let mut check_only = false;
    let mut out = "BENCH_sim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                quick = true;
                check_only = true;
            }
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unrecognized argument '{other}'");
                eprintln!("usage: bench_sim_baseline [--quick] [--check] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let shots = if quick { 100 } else { 2000 };

    println!("compiling Table 3 workload...");
    let workload = workload();
    let model = NoiseModel::from_device(mumbai());

    // The frozen pre-optimization executor: wall-clock baseline only (its
    // shared-RNG histograms differ from the per-shot-stream executor by
    // design, so it is excluded from the equality check below).
    let pre_started = Instant::now();
    let mut pre_total = 0u64;
    for (_, circuit) in &workload {
        let counts = pre_pr::run_shots(&model, circuit, shots, EXPERIMENT_SEED);
        pre_total += counts.total() as u64;
    }
    let pre_wall = pre_started.elapsed().as_secs_f64();
    println!(
        "{:>18}: {:8.3} s  ({:9.0} shots/s)",
        "pre_pr",
        pre_wall,
        pre_total as f64 / pre_wall.max(1e-12)
    );

    let mut measurements = Vec::new();
    for config in configs() {
        let m = measure(&config, &workload, shots);
        let detail: Vec<String> = workload
            .iter()
            .zip(&m.reports)
            .map(|((name, _), r)| {
                format!("{name} {:.3}s/{}", r.wall.as_secs_f64(), r.kernel_dispatch)
            })
            .collect();
        let last = m.reports.last().expect("non-empty workload");
        println!(
            "{:>18}: {:8.3} s  ({:9.0} shots/s, prefix {} ops, {} forks, {} deferred) [{}]",
            m.name,
            m.wall_s,
            m.shots_per_sec,
            last.prefix_ops,
            last.snapshot_forks,
            last.deferred_measures,
            detail.join(", ")
        );
        measurements.push(m);
    }

    // Within each group the histograms must be bit-identical — those
    // optimizations are not allowed to change a shot. Deferred sampling
    // (group 1) reorders the draw stream, so it only matches group 0 in
    // distribution.
    for group in 0..=1usize {
        let mut members = measurements.iter().filter(|m| m.group == group);
        let head = members.next().expect("non-empty group");
        for m in members {
            for (i, (name, _)) in workload.iter().enumerate() {
                assert_eq!(
                    m.counts[i], head.counts[i],
                    "{} diverged from {} on {name}",
                    m.name, head.name
                );
            }
        }
    }
    println!("histograms bit-identical within each configuration group");

    let full = measurements.last().unwrap();
    // The support bound must admit Multiply_13 (permutation/phase
    // structure, true support 32 of 8192) and reject the full-support
    // circuits — the sparse engine's whole value is engaging exactly
    // where it wins.
    let multiply = workload
        .iter()
        .position(|(name, _)| name.contains("Multiply"))
        .expect("Table 3 workload contains Multiply_13");
    assert_eq!(
        full.reports[multiply].kernel_dispatch,
        KernelDispatch::Sparse,
        "the full config must run Multiply_13 on the sparse engine"
    );
    let speedup_pre = pre_wall / full.wall_s.max(1e-12);
    let speedup_ref = measurements[0].wall_s / full.wall_s.max(1e-12);
    println!("end-to-end speedup vs pre-PR executor: {speedup_pre:.2}x");
    println!("end-to-end speedup vs de-optimized current executor: {speedup_ref:.2}x");

    // Dynamic Clifford workload: dense vs whole-circuit stabilizer
    // tableau under the same Pauli-twirl noise. Distribution-level
    // agreement only (the engines consume randomness differently).
    let stab = extra::stabilizer_ladder(10, 6);
    // Enough shots that per-bit marginals resolve to ~0.01; the tableau
    // engine makes this cheap even in quick mode.
    let stab_shots = shots.max(2000);
    let stab_configs = [
        (
            "stab_dense",
            Executor::noisy(model.clone()).with_engine(Engine::Dense),
        ),
        (
            "stab_tableau",
            Executor::noisy(model.clone()).with_engine(Engine::Stabilizer),
        ),
    ];
    let mut stab_rows = Vec::new();
    for (name, exec) in &stab_configs {
        let started = Instant::now();
        let (counts, report) = exec.run_shots_traced(&stab.circuit, stab_shots, EXPERIMENT_SEED);
        let wall = started.elapsed().as_secs_f64();
        println!(
            "{:>18}: {:8.3} s  ({:9.0} shots/s, dispatch {}, {} stabilizer gates)",
            name,
            wall,
            stab_shots as f64 / wall.max(1e-12),
            report.kernel_dispatch,
            report.stabilizer_prefix_gates,
        );
        stab_rows.push((
            *name,
            wall,
            stab_shots as f64 / wall.max(1e-12),
            counts,
            report,
        ));
    }
    let tableau_report = &stab_rows[1].4;
    assert_eq!(tableau_report.kernel_dispatch, KernelDispatch::Tableau);
    assert!(
        tableau_report.stabilizer_prefix_gates > 0,
        "the stabilizer workload must run on the tableau"
    );
    // The noisy 16-bit histogram is too diffuse for an empirical-TVD
    // equality test at any affordable shot count; per-clbit marginals
    // concentrate the comparison instead.
    let stab_marginal_diff = (0..stab.circuit.num_clbits())
        .map(|bit| {
            let d = metrics::z_expectation(&stab_rows[0].3, bit);
            let t = metrics::z_expectation(&stab_rows[1].3, bit);
            (d - t).abs() / 2.0
        })
        .fold(0.0f64, f64::max);
    println!(
        "stab_dense vs stab_tableau max per-bit marginal diff: {stab_marginal_diff:.4} ({stab_shots} shots)"
    );
    assert!(
        stab_marginal_diff < 0.08,
        "dense and tableau engines diverged in distribution (marginal diff {stab_marginal_diff:.4})"
    );

    if check_only {
        // The quick pass above validated cross-config equality; the
        // throughput floor is only meaningful at the full shot count,
        // where per-run overheads amortize. Re-measure just `full`.
        let full_cfg = Config {
            name: "full",
            exec: Executor::noisy(model),
            group: 1,
        };
        let m = measure(&full_cfg, &workload, 2000);
        println!(
            "floor check: full = {:.0} shots/s at 2000 shots (floor {FULL_FLOOR_SHOTS_PER_SEC:.0})",
            m.shots_per_sec
        );
        assert!(
            m.shots_per_sec >= FULL_FLOOR_SHOTS_PER_SEC,
            "full config regressed below the throughput floor: {:.0} < {FULL_FLOOR_SHOTS_PER_SEC:.0} shots/s",
            m.shots_per_sec
        );
        println!("--check passed");
        return;
    }
    assert!(
        quick || full.shots_per_sec >= FULL_FLOOR_SHOTS_PER_SEC,
        "full config regressed below the throughput floor: {:.0} < {FULL_FLOOR_SHOTS_PER_SEC:.0} shots/s",
        full.shots_per_sec
    );

    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"table3_baseline\",\n");
    json.push_str(&format!("  \"shots_per_circuit\": {shots},\n"));
    json.push_str(&format!("  \"circuits\": {},\n", workload.len()));
    json.push_str(&format!(
        "  \"threads_full\": {},\n",
        full.reports.last().expect("non-empty workload").threads
    ));
    json.push_str(&format!(
        "  \"speedup_full_vs_pre_pr\": {speedup_pre:.3},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_full_vs_reference\": {speedup_ref:.3},\n"
    ));
    json.push_str("  \"configs\": [\n");
    json.push_str(&format!(
        "    {{\"name\": \"pre_pr\", \"wall_s\": {:.4}, \"shots_per_sec\": {:.1}}},\n",
        pre_wall,
        pre_total as f64 / pre_wall.max(1e-12)
    ));
    for m in measurements.iter() {
        let per_circuit: Vec<String> = workload
            .iter()
            .zip(&m.reports)
            .map(|((name, _), r)| {
                format!(
                    "{{\"circuit\": \"{name}\", \"wall_s\": {:.4}, \"dispatch\": \"{}\"}}",
                    r.wall.as_secs_f64(),
                    r.kernel_dispatch
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.4}, \"shots_per_sec\": {:.1}, \"per_circuit\": [{}]}},\n",
            m.name,
            m.wall_s,
            m.shots_per_sec,
            per_circuit.join(", ")
        ));
    }
    for (i, (name, wall, rate, _, report)) in stab_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_s\": {wall:.4}, \"shots_per_sec\": {rate:.1}, \"stabilizer_prefix_gates\": {}}}{}\n",
            report.stabilizer_prefix_gates,
            if i + 1 < stab_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"stab_workload_shots\": {stab_shots},\n"));
    json.push_str(&format!(
        "  \"stab_marginal_diff_dense_vs_tableau\": {stab_marginal_diff:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out, json).expect("write baseline json");
    println!("wrote {out}");
}
