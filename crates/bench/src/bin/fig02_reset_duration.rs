//! Fig. 2: the measure+reset vs measure+conditional-X duration comparison.
//!
//! The paper reports that replacing Qiskit's built-in reset (which embeds
//! a redundant measurement pulse) with a measurement followed by a
//! classically-controlled X cuts the reuse sequence from 33,179 dt to
//! 16,467 dt (about 50%) on IBM Mumbai.

use caqr_arch::DT_NANOSECONDS;
use caqr_bench::{mumbai, Table};

fn main() {
    let dev = mumbai();
    let cal = dev.calibration();
    println!("Fig. 2 — reuse-sequence duration on {}\n", dev.topology());

    let naive = cal.measure_plus_reset_duration();
    let optimized = cal.measure_plus_condx_duration();

    let mut t = Table::new(&["sequence", "duration (dt)", "duration (us)"]);
    let us = |dt: u64| format!("{:.3}", dt as f64 * DT_NANOSECONDS / 1000.0);
    t.row(&[
        "measure + built-in reset (Fig. 2a)".into(),
        naive.to_string(),
        us(naive),
    ]);
    t.row(&[
        "measure + conditional X (Fig. 2b)".into(),
        optimized.to_string(),
        us(optimized),
    ]);
    t.print();

    let reduction = 100.0 * (1.0 - optimized as f64 / naive as f64);
    println!("\nreduction: {reduction:.1}% (paper: ~50%, 33179 dt -> 16467 dt)");
}
