//! Developer probe: per-layer timing split of the noisy simulator on the
//! two circuits that dominate `bench_sim_baseline` wall time.
//!
//! Usage: `bench_sim_probe [SHOTS]` (default 2000).

use caqr::{compile, Strategy};
use caqr_bench::{mumbai, EXPERIMENT_SEED};
use caqr_benchmarks::revlib;
use caqr_sim::{Executor, NoiseModel};
use std::time::Instant;

fn main() {
    let shots: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let device = mumbai();
    let model = NoiseModel::from_device(mumbai());
    for bench in [revlib::multiply_13(), revlib::cc_13()] {
        let report = compile(&bench.circuit, &device, Strategy::Baseline).expect("fits");
        let circuit = report.circuit.compact_qubits().0;
        println!(
            "=== {} ({} qubits, {} instrs) ===",
            bench.name,
            circuit.num_qubits(),
            circuit.len()
        );
        let variants: Vec<(&str, Executor)> = vec![
            ("full", Executor::noisy(model.clone()).with_threads(1)),
            (
                "no_chunked",
                Executor::noisy(model.clone())
                    .with_threads(1)
                    .with_chunked_fusion(false),
            ),
            (
                "no_sampling",
                Executor::noisy(model.clone())
                    .with_threads(1)
                    .with_sampling(false)
                    .with_chunked_fusion(false),
            ),
            ("ideal_sampling", Executor::ideal().with_threads(1)),
        ];
        for (name, exec) in variants {
            let started = Instant::now();
            let (_, rep) = exec.run_shots_traced(&circuit, shots, EXPERIMENT_SEED);
            let wall = started.elapsed().as_secs_f64();
            println!(
                "{name:>14}: {wall:7.3} s ({:8.0} shots/s)  gates_in {} kernels_out {} prefix {} forks {} deferred {}",
                shots as f64 / wall,
                rep.gates_in,
                rep.kernels_out,
                rep.prefix_ops,
                rep.snapshot_forks,
                rep.deferred_measures
            );
        }
    }
}
