//! Bounded-memory streaming compilation on a million-gate program,
//! frozen in `BENCH_stream.json`.
//!
//! The point of `caqr-stream` is that a program too large to materialize
//! still compiles: the source is parsed gate by gate, the windowed
//! scheduler retires measured qubits for reuse as their causal cones
//! close, and chunks leave the process as soon as they are compiled. This
//! bench pins three things:
//!
//! 1. **Memory** — the synthetic million-gate program through
//!    [`Engine::compile_streamed`] versus the batch path (materialize the
//!    text, parse the whole circuit, schedule it). Peak RSS (`VmHWM`) of
//!    the streamed phase must sit at least [`RSS_FLOOR`]x below the batch
//!    phase. The streamed phase runs first because `VmHWM` is monotonic.
//! 2. **Equal output** — the streamed digest and metrics must equal the
//!    batch twin's bit for bit, for both the smoke and million specs.
//! 3. **Width** — on the golden corpus, the causal-cone scheduler's
//!    full-lookahead wire count next to the paper's QS-max-reuse and SR
//!    strategies and the logical width (the cone-reuse width delta).
//!
//! Usage: `bench_stream [--quick] [--check] [--json] [--out PATH]`
//!
//! * default — run everything and print the tables.
//! * `--json` — also write the frozen `BENCH_stream.json`.
//! * `--check` — recompute the deterministic outputs (smoke digest and
//!   metrics, corpus widths) and compare them against the committed JSON;
//!   verify the frozen RSS ratio clears the floor. With `--quick` the
//!   million-gate rerun is skipped (CI smoke).
//! * `--quick` — smoke spec only; composes with `--check`.

use caqr::{CancelToken, Strategy};
use caqr_bench::{compile_grid, peak_rss_kb, Table};
use caqr_benchmarks::stream::StreamSpec;
use caqr_benchmarks::Benchmark;
use caqr_circuit::qasm::from_qasm;
use caqr_engine::Engine;
use caqr_stream::{schedule_circuit, NullSink, StreamMetrics, StreamOptions, StreamReport};
use caqr_wire::Value;
use std::time::Instant;

/// The streamed phase must peak at least this many times below batch.
const RSS_FLOOR: f64 = 10.0;

/// One spec (smoke or million) with its deterministic outputs.
struct SpecRow {
    name: &'static str,
    spec: StreamSpec,
    report: StreamReport,
}

/// Memory and throughput measured on the full million-gate run.
struct MillionRun {
    stream_rss_kb: Option<u64>,
    batch_rss_kb: Option<u64>,
    gates_per_sec: f64,
    wall_ms: u64,
}

/// One golden-corpus circuit's width under each reuse approach.
struct WidthRow {
    bench: String,
    logical: usize,
    cone_wires: usize,
    qs_qubits: Option<usize>,
    sr_qubits: Option<usize>,
}

fn stream_options() -> StreamOptions {
    StreamOptions::default()
}

/// Streams a spec through the engine and cross-checks the batch twin:
/// same digest, same metrics, at bounded window occupancy.
fn run_spec(name: &'static str, spec: StreamSpec) -> SpecRow {
    let streamed =
        Engine::compile_streamed(spec.text_chunks(), stream_options(), &CancelToken::new())
            .expect("streamed compile");
    let batch = from_qasm(&spec.text()).expect("batch parse");
    let (batch_report, _) =
        schedule_circuit(&batch, stream_options(), NullSink).expect("batch twin");
    assert_eq!(
        streamed.report, batch_report,
        "{name}: streamed output differs from the batch twin"
    );
    assert_eq!(
        streamed.report.metrics.gates_in as usize,
        spec.gate_count(),
        "{name}: generator gate count drifted"
    );
    SpecRow {
        name,
        spec,
        report: streamed.report,
    }
}

/// The million-gate memory comparison. The streamed phase runs FIRST
/// (before any large allocation) because `VmHWM` is a monotonic
/// high-water mark; the batch phase then materializes the same program
/// and pushes the mark up by however much it really costs.
fn run_million(spec: StreamSpec) -> (SpecRow, MillionRun) {
    let started = Instant::now();
    let streamed =
        Engine::compile_streamed(spec.text_chunks(), stream_options(), &CancelToken::new())
            .expect("streamed compile");
    let wall = started.elapsed();
    let stream_rss_kb = peak_rss_kb();

    let text = spec.text();
    let batch = from_qasm(&text).expect("batch parse");
    drop(text);
    let (batch_report, _) =
        schedule_circuit(&batch, stream_options(), NullSink).expect("batch twin");
    drop(batch);
    let batch_rss_kb = peak_rss_kb();

    assert_eq!(
        streamed.report, batch_report,
        "million: streamed output differs from the batch twin"
    );
    let row = SpecRow {
        name: "million",
        spec,
        report: streamed.report,
    };
    let run = MillionRun {
        stream_rss_kb,
        batch_rss_kb,
        gates_per_sec: streamed.report.metrics.gates_in as f64 / wall.as_secs_f64().max(1e-9),
        wall_ms: wall.as_millis() as u64,
    };
    (row, run)
}

fn golden_corpus() -> Vec<Benchmark> {
    use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
    vec![
        caqr_benchmarks::revlib::xor_5(),
        caqr_benchmarks::revlib::four_mod5(),
        caqr_benchmarks::revlib::rd32(),
        caqr_benchmarks::bv::bv_all_ones(5),
        caqr_benchmarks::bv::bv_all_ones(8),
        qaoa_benchmark(6, 0.3, GraphKind::Random, 2029),
        qaoa_benchmark(8, 0.3, GraphKind::Random, 2031),
    ]
}

/// Cone-based reuse width (full lookahead) against QS-max-reuse and SR on
/// the golden corpus.
fn run_width_delta() -> Vec<WidthRow> {
    let benches = golden_corpus();
    let strategies = [Strategy::QsMaxReuse, Strategy::Sr];
    let grid = compile_grid(&benches, &strategies);
    benches
        .iter()
        .zip(&grid)
        .map(|(bench, cells)| {
            // Full lookahead: the window covers the whole program, so a
            // measured qubit retires iff it is truly dead — the cone
            // scheduler's best case, and it can never under-buffer.
            let opts = StreamOptions {
                window: bench.circuit.len() + 1,
                chunk_gates: 1024,
                optimize_chunks: false,
            };
            let (report, _) = schedule_circuit(&bench.circuit, opts, NullSink)
                .expect("full lookahead never retires early");
            WidthRow {
                bench: bench.name.clone(),
                logical: bench.circuit.num_qubits(),
                cone_wires: report.metrics.wires,
                qs_qubits: cells[0].as_ref().ok().map(|r| r.qubits),
                sr_qubits: cells[1].as_ref().ok().map(|r| r.qubits),
            }
        })
        .collect()
}

fn render_specs(rows: &[SpecRow]) {
    let mut t = Table::new(&[
        "spec",
        "gates_in",
        "declared_q",
        "wires",
        "resets",
        "cones",
        "peak_window",
        "peak_live",
        "digest",
    ]);
    for row in rows {
        let m = row.report.metrics;
        t.row(&[
            row.name.to_string(),
            m.gates_in.to_string(),
            m.declared_qubits.to_string(),
            m.wires.to_string(),
            m.resets_inserted.to_string(),
            m.cones_closed.to_string(),
            m.peak_window.to_string(),
            m.peak_live.to_string(),
            format!("{:.16}", row.report.digest.to_string()),
        ]);
    }
    t.print();
}

fn render_width(rows: &[WidthRow]) {
    let fmt = |q: Option<usize>| q.map_or_else(|| "-".to_string(), |q| q.to_string());
    let mut t = Table::new(&["bench", "logical", "cone", "qs-max", "sr"]);
    for row in rows {
        t.row(&[
            row.bench.clone(),
            row.logical.to_string(),
            row.cone_wires.to_string(),
            fmt(row.qs_qubits),
            fmt(row.sr_qubits),
        ]);
    }
    t.print();
}

fn opt_num(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn spec_json(row: &SpecRow) -> String {
    let m = row.report.metrics;
    format!(
        "{{\"name\": \"{}\", \"blocks\": {}, \"block_qubits\": {}, \"depth\": {}, \
         \"gates_in\": {}, \"declared_qubits\": {}, \"wires\": {}, \"resets_inserted\": {}, \
         \"cones_closed\": {}, \"peak_window\": {}, \"peak_live\": {}, \"digest\": \"{}\"}}",
        row.name,
        row.spec.blocks,
        row.spec.block_qubits,
        row.spec.depth,
        m.gates_in,
        m.declared_qubits,
        m.wires,
        m.resets_inserted,
        m.cones_closed,
        m.peak_window,
        m.peak_live,
        row.report.digest,
    )
}

fn to_json(specs: &[SpecRow], million: &MillionRun, widths: &[WidthRow]) -> String {
    let ratio = match (million.stream_rss_kb, million.batch_rss_kb) {
        (Some(s), Some(b)) if s > 0 => format!("{:.1}", b as f64 / s as f64),
        _ => "null".to_string(),
    };
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"caqr_stream_bounded_memory\",\n");
    let opts = stream_options();
    json.push_str(&format!(
        "  \"options\": {{\"window\": {}, \"chunk_gates\": {}}},\n",
        opts.window, opts.chunk_gates
    ));
    json.push_str(&format!("  \"rss_floor\": {RSS_FLOOR},\n"));
    json.push_str("  \"specs\": [\n");
    for (i, row) in specs.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&spec_json(row));
        json.push_str(if i + 1 < specs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"memory\": {{\"stream_peak_rss_kb\": {}, \"batch_peak_rss_kb\": {}, \
         \"batch_over_stream\": {ratio}}},\n",
        opt_num(million.stream_rss_kb),
        opt_num(million.batch_rss_kb),
    ));
    json.push_str(&format!(
        "  \"throughput\": {{\"million_gates_per_sec\": {:.0}, \"wall_ms\": {}}},\n",
        million.gates_per_sec, million.wall_ms
    ));
    json.push_str("  \"width_delta\": [\n");
    for (i, row) in widths.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"logical_qubits\": {}, \"cone_wires\": {}, \
             \"qs_max_qubits\": {}, \"sr_qubits\": {}}}{}\n",
            row.bench,
            row.logical,
            row.cone_wires,
            opt_num(row.qs_qubits.map(|q| q as u64)),
            opt_num(row.sr_qubits.map(|q| q as u64)),
            if i + 1 < widths.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn assert_rss_floor(million: &MillionRun) {
    match (million.stream_rss_kb, million.batch_rss_kb) {
        (Some(stream), Some(batch)) => {
            let ratio = batch as f64 / stream.max(1) as f64;
            assert!(
                ratio >= RSS_FLOOR,
                "streamed peak RSS {stream} kB is only {ratio:.1}x below batch {batch} kB \
                 (floor {RSS_FLOOR}x)"
            );
        }
        _ => eprintln!("note: VmHWM unavailable on this platform; RSS floor not enforced"),
    }
}

fn metrics_of(frozen: &Value) -> StreamMetrics {
    let num = |key: &str| {
        frozen
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("frozen spec row is missing '{key}'"))
    };
    StreamMetrics {
        declared_qubits: num("declared_qubits") as usize,
        wires: num("wires") as usize,
        clbits: 0, // not frozen; compared via the digest
        gates_in: num("gates_in"),
        gates_out: 0, // not frozen; compared via the digest
        resets_inserted: num("resets_inserted"),
        chunks: 0, // not frozen; compared via the digest
        peak_window: num("peak_window") as usize,
        peak_live: num("peak_live") as usize,
        cones_closed: num("cones_closed"),
        peak_cone: 0, // not frozen
    }
}

/// Compares recomputed deterministic outputs against the committed
/// `BENCH_stream.json`.
fn check(specs: &[SpecRow], widths: &[WidthRow], path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check needs the committed {path}: {e}"));
    let frozen = caqr_wire::parse(&text).expect("committed JSON parses");

    // The frozen memory ratio must clear the floor: the committed numbers
    // are the claim this PR makes, and regeneration re-measures them.
    let ratio = frozen
        .get("memory")
        .and_then(|m| m.get("batch_over_stream"))
        .and_then(Value::as_f64);
    if let Some(ratio) = ratio {
        assert!(
            ratio >= RSS_FLOOR,
            "frozen batch/stream RSS ratio {ratio:.1}x is under the {RSS_FLOOR}x floor"
        );
    }

    let frozen_specs = frozen
        .get("specs")
        .and_then(Value::as_array)
        .expect("'specs' array");
    for row in specs {
        let frozen_row = frozen_specs
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some(row.name))
            .unwrap_or_else(|| panic!("spec '{}' missing from {path}", row.name));
        assert_eq!(
            frozen_row.get("digest").and_then(Value::as_str),
            Some(row.report.digest.to_string().as_str()),
            "spec '{}': digest drifted from the frozen value",
            row.name
        );
        let want = metrics_of(frozen_row);
        let got = row.report.metrics;
        for (field, frozen_v, live) in [
            ("gates_in", want.gates_in, got.gates_in),
            ("resets_inserted", want.resets_inserted, got.resets_inserted),
            ("cones_closed", want.cones_closed, got.cones_closed),
            (
                "declared_qubits",
                want.declared_qubits as u64,
                got.declared_qubits as u64,
            ),
            ("wires", want.wires as u64, got.wires as u64),
            (
                "peak_window",
                want.peak_window as u64,
                got.peak_window as u64,
            ),
            ("peak_live", want.peak_live as u64, got.peak_live as u64),
        ] {
            assert_eq!(
                frozen_v, live,
                "spec '{}': {field} drifted from the frozen value",
                row.name
            );
        }
    }

    let frozen_widths = frozen
        .get("width_delta")
        .and_then(Value::as_array)
        .expect("'width_delta' array");
    for row in widths {
        let frozen_row = frozen_widths
            .iter()
            .find(|w| w.get("bench").and_then(Value::as_str) == Some(row.bench.as_str()))
            .unwrap_or_else(|| panic!("width row '{}' missing from {path}", row.bench));
        for (field, live) in [
            ("logical_qubits", Some(row.logical as u64)),
            ("cone_wires", Some(row.cone_wires as u64)),
            ("qs_max_qubits", row.qs_qubits.map(|q| q as u64)),
            ("sr_qubits", row.sr_qubits.map(|q| q as u64)),
        ] {
            assert_eq!(
                frozen_row.get(field).and_then(Value::as_u64),
                live,
                "width row '{}': {field} drifted from the frozen value",
                row.bench
            );
        }
    }
    println!(
        "--check passed ({} specs, {} width rows verified against {path})",
        specs.len(),
        widths.len()
    );
}

fn main() {
    let mut quick = false;
    let mut check_only = false;
    let mut write_json = false;
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    let mut out = default_out.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check_only = true,
            "--json" => write_json = true,
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unrecognized argument '{other}'");
                eprintln!("usage: bench_stream [--quick] [--check] [--json] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    println!("Bounded-memory streaming compilation\n");
    if check_only {
        // Deterministic recompute only — no RSS measurement, so order is
        // free and --quick can skip the million-gate rerun.
        let mut specs = vec![run_spec("smoke", StreamSpec::smoke(2023))];
        if !quick {
            specs.push(run_spec("million", StreamSpec::million_gate(2023)));
        }
        let widths = run_width_delta();
        render_specs(&specs);
        println!();
        render_width(&widths);
        println!();
        check(&specs, &widths, &out);
        return;
    }

    // Full run: the million-gate streamed phase goes first so VmHWM
    // reflects it alone; everything else allocates strictly less.
    let (million_row, million_run) = run_million(StreamSpec::million_gate(2023));
    let smoke_row = run_spec("smoke", StreamSpec::smoke(2023));
    let widths = run_width_delta();
    let specs = vec![smoke_row, million_row];

    render_specs(&specs);
    println!();
    render_width(&widths);
    println!();
    println!(
        "million-gate stream: {:.0} gates/s over {} ms",
        million_run.gates_per_sec, million_run.wall_ms
    );
    match (million_run.stream_rss_kb, million_run.batch_rss_kb) {
        (Some(s), Some(b)) => println!(
            "peak RSS: streamed {s} kB, batch {b} kB ({:.1}x)",
            b as f64 / s.max(1) as f64
        ),
        _ => println!("peak RSS: unavailable on this platform"),
    }
    assert_rss_floor(&million_run);

    if write_json {
        std::fs::write(&out, to_json(&specs, &million_run, &widths))
            .expect("write BENCH_stream.json");
        println!("wrote {out}");
    }
}
