//! Fig. 1: the BV qubit-reuse walkthrough, rendered as ASCII circuits.
//!
//! (a) the original 5-qubit circuit, (b) one reuse (4 qubits), and
//! (c) the fully-reused 2-qubit version — with simulator verification that
//! all three read out the hidden string.

use caqr::qs;
use caqr_benchmarks::bv;
use caqr_circuit::depth::UnitDurations;
use caqr_circuit::draw;
use caqr_sim::Executor;

fn main() {
    let bench = bv::bv_all_ones(5);
    let hidden = bench.correct_output.expect("BV is deterministic");
    let sweep = qs::regular::sweep(&bench.circuit, &UnitDurations);

    println!("Fig. 1 — Bernstein-Vazirani with qubit reuse (hidden string 1111)\n");
    for point in &sweep {
        if ![5, 4, 2].contains(&point.qubits) {
            continue;
        }
        let tag = match point.qubits {
            5 => "(a) original, 5 qubits",
            4 => "(b) one reuse, 4 qubits",
            _ => "(c) full reuse, 2 qubits",
        };
        println!("{tag} — depth {}:", point.depth());
        println!("{}", draw::to_ascii(&point.circuit));
        let counts = Executor::ideal().run_shots(&point.circuit, 200, 1);
        println!(
            "simulator: hidden string read correctly in {}/200 shots\n",
            counts.get(hidden)
        );
    }
}
