//! Ablation: Edmonds blossom vs greedy maximal matching in the commuting
//! scheduler (§3.4 suggests greedy as a near-optimal cheaper alternative).

use caqr::commuting::{schedule, CommutingSpec, Matcher};
use caqr::qs;
use caqr_bench::{Table, EXPERIMENT_SEED};
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};
use std::time::Instant;

fn main() {
    println!("Ablation — matching engine in the commuting scheduler\n");
    let mut t = Table::new(&[
        "instance",
        "blossom rounds",
        "greedy rounds",
        "blossom min-q depth",
        "greedy min-q depth",
        "blossom ms",
        "greedy ms",
    ]);
    for (n, kind, label) in [
        (12usize, GraphKind::Random, "QAOA12-0.3r"),
        (16, GraphKind::Random, "QAOA16-0.3r"),
        (16, GraphKind::PowerLaw, "QAOA16-0.3p"),
        (20, GraphKind::Random, "QAOA20-0.3r"),
    ] {
        let graph = kind.generate(n, 0.3, EXPERIMENT_SEED);
        let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
        let spec = CommutingSpec::from_circuit(&circuit).unwrap();

        let mut cells = vec![label.to_string()];
        let mut rounds_cells = Vec::new();
        let mut depth_cells = Vec::new();
        let mut time_cells = Vec::new();
        for matcher in [Matcher::Blossom, Matcher::Greedy] {
            let start = Instant::now();
            let rounds = schedule(&spec, &[], matcher).unwrap();
            let sweep = qs::commuting::sweep(&spec, matcher);
            let elapsed = start.elapsed().as_millis();
            rounds_cells.push(rounds.len().to_string());
            depth_cells.push(format!(
                "{} ({}q)",
                sweep.last().unwrap().depth(),
                sweep.last().unwrap().qubits
            ));
            time_cells.push(elapsed.to_string());
        }
        cells.extend(rounds_cells);
        cells.extend(depth_cells);
        cells.extend(time_cells);
        t.row(&cells);
    }
    t.print();
    println!("\nexpected: greedy matches blossom's round count within ~1 and runs faster.");
}
