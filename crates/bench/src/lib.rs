//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! paper-vs-measured results. This library provides the bits they share:
//! aligned-table printing, the canonical experiment seeds, and a couple of
//! compile wrappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use caqr::Strategy;
use caqr_arch::Device;
use caqr_benchmarks::Benchmark;
use caqr_engine::{BatchRequest, CompileJob, Engine};
use caqr_sim::Engine as SimEngine;

/// The seed every experiment binary uses unless it sweeps seeds — keeps
/// printed numbers reproducible run to run.
pub const EXPERIMENT_SEED: u64 = 2023;

/// Command-line options shared by the simulation-heavy experiment
/// binaries: `--shots N`, `--threads N`, and
/// `--engine auto|dense|stabilizer`.
///
/// The executor's histograms are bit-identical at every thread count, so
/// `--threads` only changes wall-clock time; `--shots` changes the
/// statistics (each binary documents its default). `--engine` selects the
/// simulator engine ([`caqr_sim::Engine`]): `auto` (default) picks the
/// stabilizer tableau for noiseless Clifford circuits and dense sweeps
/// otherwise, `dense` forces the state vector, `stabilizer` uses the
/// tableau wherever legal.
#[derive(Debug, Clone, Copy)]
pub struct SimArgs {
    /// Shots per simulated circuit.
    pub shots: usize,
    /// Simulator worker threads; 0 (default) = one per core.
    pub threads: usize,
    /// Simulator engine selection (default [`SimEngine::Auto`]).
    pub engine: SimEngine,
}

impl SimArgs {
    /// Parses `std::env::args()`, exiting with a usage message on
    /// unrecognized input or `--help`.
    pub fn parse(default_shots: usize) -> Self {
        match Self::from_args(default_shots, std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--shots N] [--threads N] [--engine auto|dense|stabilizer]   \
                     (threads 0 = one per core)"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (test seam).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first unrecognized or malformed
    /// argument.
    pub fn from_args(
        default_shots: usize,
        args: impl IntoIterator<Item = String>,
    ) -> Result<Self, String> {
        let mut parsed = SimArgs {
            shots: default_shots,
            threads: 0,
            engine: SimEngine::Auto,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut raw = |name: &str| {
                inline
                    .clone()
                    .or_else(|| args.next())
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            let number = |name: &str, v: String| {
                v.parse::<usize>()
                    .map_err(|_| format!("{name} expects a number, got '{v}'"))
            };
            match flag.as_str() {
                "--shots" => parsed.shots = number("--shots", raw("--shots")?)?.max(1),
                "--threads" => parsed.threads = number("--threads", raw("--threads")?)?,
                "--engine" => parsed.engine = raw("--engine")?.parse()?,
                "--help" | "-h" => return Err("experiment binary options:".to_string()),
                other => return Err(format!("unrecognized argument '{other}'")),
            }
        }
        Ok(parsed)
    }
}

/// The IBM Mumbai stand-in used by the real-machine experiments.
pub fn mumbai() -> Device {
    Device::mumbai(EXPERIMENT_SEED)
}

/// A device large enough for `n` logical qubits: Mumbai when it fits,
/// scaled heavy-hex otherwise (§4.1's "scaled heavy-hex architecture").
pub fn device_for(n: usize) -> Device {
    if n <= 27 {
        mumbai()
    } else {
        Device::scaled_heavy_hex(n, EXPERIMENT_SEED)
    }
}

/// Compiles every `benchmark x strategy` pair through the batch engine
/// (worker pool + content-addressed compile cache) and returns the reports
/// as a grid: one row per benchmark, one column per strategy, in input
/// order. Errors are stringified so table binaries can print them inline.
///
/// Each benchmark is compiled on [`device_for`] its width, exactly as the
/// sequential table binaries did — the engine only changes *how* the work
/// runs (pooled, cached, instrumented), never the numbers.
pub fn compile_grid(
    benches: &[Benchmark],
    strategies: &[Strategy],
) -> Vec<Vec<Result<caqr::CompileReport, String>>> {
    let mut jobs = Vec::with_capacity(benches.len() * strategies.len());
    for bench in benches {
        let device = device_for(bench.circuit.num_qubits());
        for &strategy in strategies {
            jobs.push(CompileJob::new(
                bench.name.clone(),
                bench.circuit.clone(),
                device.clone(),
                strategy,
            ));
        }
    }
    let report = Engine::run(&BatchRequest::new(jobs));
    let mut results = report.results.into_iter();
    benches
        .iter()
        .map(|_| {
            strategies
                .iter()
                .map(|_| match results.next().expect("one result per job") {
                    Ok(outcome) => Ok(outcome.report),
                    Err(failed) => Err(failed.error.to_string()),
                })
                .collect()
        })
        .collect()
}

/// A minimal fixed-width table printer for harness output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The process's peak resident-set size (`VmHWM`) in kilobytes, read
/// from `/proc/self/status`. Returns `None` off Linux or when the field
/// is unavailable — callers must degrade gracefully (the streaming bench
/// reports `null` instead of failing).
///
/// `VmHWM` is a monotonic high-water mark: to compare two phases within
/// one process, run the low-memory phase first.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Formats a duration in `dt` the way the paper's Table 1 does (`91K`).
pub fn format_dt(dt: u64) -> String {
    if dt >= 1000 {
        format!("{}K", (dt as f64 / 1000.0).round() as u64)
    } else {
        dt.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(&["a"]).row(&["x".into(), "y".into()]);
    }

    #[test]
    fn sim_args_defaults_and_overrides() {
        let strs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let d = SimArgs::from_args(2000, strs(&[])).unwrap();
        assert_eq!((d.shots, d.threads), (2000, 0));
        assert_eq!(d.engine, SimEngine::Auto);
        let a = SimArgs::from_args(2000, strs(&["--shots", "50", "--threads", "4"])).unwrap();
        assert_eq!((a.shots, a.threads), (50, 4));
        let eq = SimArgs::from_args(2000, strs(&["--shots=7", "--threads=2"])).unwrap();
        assert_eq!((eq.shots, eq.threads), (7, 2));
        assert!(SimArgs::from_args(10, strs(&["--bogus"])).is_err());
        assert!(SimArgs::from_args(10, strs(&["--shots"])).is_err());
        assert!(SimArgs::from_args(10, strs(&["--shots", "many"])).is_err());
    }

    #[test]
    fn sim_args_engine_flag() {
        let strs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let d = SimArgs::from_args(10, strs(&["--engine", "dense"])).unwrap();
        assert_eq!(d.engine, SimEngine::Dense);
        let s = SimArgs::from_args(10, strs(&["--engine=stabilizer"])).unwrap();
        assert_eq!(s.engine, SimEngine::Stabilizer);
        let a = SimArgs::from_args(10, strs(&["--engine", "auto"])).unwrap();
        assert_eq!(a.engine, SimEngine::Auto);
        assert!(SimArgs::from_args(10, strs(&["--engine", "cosmic"])).is_err());
        assert!(SimArgs::from_args(10, strs(&["--engine"])).is_err());
    }

    #[test]
    fn format_dt_thousands() {
        assert_eq!(format_dt(91_300), "91K");
        assert_eq!(format_dt(450), "450");
        assert_eq!(format_dt(1_500), "2K");
    }

    #[test]
    #[cfg_attr(not(target_os = "linux"), ignore = "VmHWM is Linux-only")]
    fn peak_rss_reads_a_plausible_value_on_linux() {
        let kb = peak_rss_kb().expect("VmHWM parses on Linux");
        // A test process has at least a megabyte resident.
        assert!(kb > 1024, "VmHWM {kb} kB is implausibly small");
    }

    #[test]
    fn device_for_sizes() {
        assert_eq!(device_for(10).num_qubits(), 27);
        assert!(device_for(64).num_qubits() >= 64);
    }

    #[test]
    fn compile_grid_matches_direct_compiles() {
        let benches = vec![caqr_benchmarks::bv::bv_all_ones(4)];
        let strategies = [Strategy::Baseline, Strategy::Sr];
        let grid = compile_grid(&benches, &strategies);
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].len(), 2);
        for (strategy, cell) in strategies.iter().zip(&grid[0]) {
            let direct = caqr::compile(
                &benches[0].circuit,
                &device_for(benches[0].circuit.num_qubits()),
                *strategy,
            )
            .expect("fits");
            let batched = cell.as_ref().expect("fits");
            assert_eq!(batched.circuit, direct.circuit);
            assert_eq!(batched.swaps, direct.swaps);
        }
    }
}
