//! Bind/compile equivalence suite.
//!
//! The parametric-template contract: for any circuit with rotations,
//! lifting its angles into slots, compiling the template, and binding the
//! routed artifact back must be **byte-identical** to compiling the
//! concrete circuit directly — for every strategy and every routing cost
//! model. Layout, routing, reuse, and scheduling must therefore never
//! read an angle; this suite is the end-to-end proof of that audit.

use caqr::router::CostModelSpec;
use caqr::{compile_template_with, compile_with, Strategy};
use caqr_arch::Device;
use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
use caqr_circuit::parametric::{bind_circuit, has_slots, slot_census};
use caqr_circuit::{Circuit, ParametricCircuit, Qubit};

const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::QsMaxReuse,
    Strategy::QsMinDepth,
    Strategy::QsMinSwap,
    Strategy::QsMaxEsp,
    Strategy::Sr,
];

fn cost_models() -> [CostModelSpec; 3] {
    [
        CostModelSpec::Hop,
        CostModelSpec::parse("lookahead").expect("valid spec"),
        CostModelSpec::parse("noise-aware").expect("valid spec"),
    ]
}

/// A rotation-dense regular (non-commuting) circuit: interleaved axes and
/// mid-circuit measurement, so the regular QS/SR paths get exercised with
/// symbolic angles too.
fn rotation_mix() -> Circuit {
    let mut c = Circuit::new(5, 5);
    for i in 0..5 {
        c.h(Qubit::new(i));
        c.rz(0.1 + i as f64 * 0.37, Qubit::new(i));
    }
    for i in 0..4 {
        c.cx(Qubit::new(i), Qubit::new(i + 1));
        c.rx(-0.8 + i as f64 * 0.21, Qubit::new(i + 1));
    }
    c.cp(1.1, Qubit::new(0), Qubit::new(2));
    c.rzz(0.45, Qubit::new(1), Qubit::new(3));
    c.ry(2.5, Qubit::new(4));
    c.measure_all();
    c
}

/// Every corpus circuit that carries rotations.
fn corpus() -> Vec<(String, Circuit)> {
    let mut out = vec![("rotation-mix-5".to_string(), rotation_mix())];
    for (n, seed) in [(6usize, 2029u64), (8, 2031)] {
        let b = qaoa_benchmark(n, 0.3, GraphKind::Random, seed);
        out.push((b.name, b.circuit));
    }
    out
}

#[test]
fn bound_template_is_byte_identical_to_direct_compile() {
    let device = Device::mumbai(2023);
    for (name, circuit) in corpus() {
        let (template, values) = ParametricCircuit::parametrize(&circuit);
        assert!(
            template.num_slots() > 0,
            "{name}: corpus circuit must carry rotations"
        );
        for strategy in STRATEGIES {
            for cost_model in cost_models() {
                let tag = format!("{name} / {strategy} / {cost_model}");
                let direct = compile_with(&circuit, &device, strategy, cost_model)
                    .unwrap_or_else(|e| panic!("{tag}: direct compile failed: {e}"));
                let routed = compile_template_with(&template, &device, strategy, cost_model)
                    .unwrap_or_else(|e| panic!("{tag}: template compile failed: {e}"));
                // The routed template keeps the full slot multiset…
                assert!(has_slots(&routed.circuit), "{tag}: slots lost in routing");
                assert_eq!(
                    slot_census(&routed.circuit),
                    slot_census(template.circuit()),
                    "{tag}: slot multiset changed"
                );
                // …its structural metrics are binding-independent…
                assert_eq!(routed.qubits, direct.qubits, "{tag}: qubits");
                assert_eq!(routed.depth, direct.depth, "{tag}: depth");
                assert_eq!(routed.duration_dt, direct.duration_dt, "{tag}: duration");
                assert_eq!(routed.swaps, direct.swaps, "{tag}: swaps");
                assert_eq!(
                    routed.two_qubit_gates, direct.two_qubit_gates,
                    "{tag}: 2q count"
                );
                assert_eq!(
                    routed.esp.to_bits(),
                    direct.esp.to_bits(),
                    "{tag}: esp bits"
                );
                // …and binding reproduces the direct artifact exactly.
                let bound = bind_circuit(&routed.circuit, template.num_slots(), &values)
                    .unwrap_or_else(|e| panic!("{tag}: bind failed: {e}"));
                assert_eq!(
                    bound.fingerprint(),
                    direct.circuit.fingerprint(),
                    "{tag}: bound template is not byte-identical to direct compile"
                );
                assert_eq!(bound, direct.circuit, "{tag}: instruction streams differ");
            }
        }
    }
}

#[test]
fn rebinding_the_same_routed_template_is_pure() {
    let device = Device::mumbai(2023);
    let bench = qaoa_benchmark(6, 0.3, GraphKind::Random, 2029);
    let (template, values) = ParametricCircuit::parametrize(&bench.circuit);
    let routed = compile_template_with(&template, &device, Strategy::Sr, CostModelSpec::Hop)
        .expect("compiles");
    let a = bind_circuit(&routed.circuit, template.num_slots(), &values).unwrap();
    let b = bind_circuit(&routed.circuit, template.num_slots(), &values).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    // Distinct bindings produce distinct artifacts (angles land in the
    // fingerprint once bound).
    let other: Vec<f64> = values.iter().map(|v| v + 0.5).collect();
    let c = bind_circuit(&routed.circuit, template.num_slots(), &other).unwrap();
    assert_ne!(a.fingerprint(), c.fingerprint());
}
