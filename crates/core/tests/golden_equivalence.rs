//! Pipeline equivalence suite.
//!
//! For every benchmark circuit x every [`Strategy`], the compiled circuit
//! and report must be byte-identical to what the pre-refactor (one-shot
//! function) pipeline produced. The golden fingerprints in
//! `tests/golden/pipeline.txt` were recorded *before* the PassManager
//! refactor; any drift in circuit content, depth, duration, SWAP count,
//! two-qubit gate count, or the exact ESP bit pattern is a test failure.
//!
//! Regenerate (only when an intentional algorithmic change lands) with:
//!
//! ```text
//! CAQR_BLESS=1 cargo test -p caqr --test golden_equivalence
//! ```

use caqr::{compile, Strategy};
use caqr_arch::Device;
use caqr_benchmarks::qaoa::{qaoa_benchmark, GraphKind};
use caqr_benchmarks::{bv, revlib, Benchmark};

const GOLDEN_PATH: &str = "tests/golden/pipeline.txt";

const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::QsMaxReuse,
    Strategy::QsMinDepth,
    Strategy::QsMinSwap,
    Strategy::QsMaxEsp,
    Strategy::Sr,
];

/// The equivalence corpus: regular circuits (BV, reversible) and
/// commuting (QAOA) circuits, all narrow enough to compile under every
/// strategy in seconds.
fn corpus() -> Vec<Benchmark> {
    vec![
        revlib::xor_5(),
        revlib::four_mod5(),
        revlib::rd32(),
        bv::bv_all_ones(5),
        bv::bv_all_ones(8),
        qaoa_benchmark(6, 0.3, GraphKind::Random, 2029),
        qaoa_benchmark(8, 0.3, GraphKind::Random, 2031),
    ]
}

/// One golden line: every report field that must stay bit-identical.
fn fingerprint_line(bench: &Benchmark, strategy: Strategy, device: &Device) -> String {
    match compile(&bench.circuit, device, strategy) {
        Ok(report) => format!(
            "{} {} circuit={:032x} qubits={} depth={} duration={} swaps={} twoq={} esp_bits={:016x}",
            bench.name,
            strategy,
            report.circuit.fingerprint().as_u128(),
            report.qubits,
            report.depth,
            report.duration_dt,
            report.swaps,
            report.two_qubit_gates,
            report.esp.to_bits(),
        ),
        Err(e) => format!("{} {} error={e}", bench.name, strategy),
    }
}

fn current_fingerprints() -> String {
    let device = Device::mumbai(2023);
    let mut out = String::new();
    for bench in corpus() {
        for strategy in STRATEGIES {
            out.push_str(&fingerprint_line(&bench, strategy, &device));
            out.push('\n');
        }
    }
    out
}

#[test]
fn pipeline_matches_pre_refactor_goldens() {
    let got = current_fingerprints();
    if std::env::var_os("CAQR_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &got).expect("write goldens");
        return;
    }
    let want = include_str!("golden/pipeline.txt");
    let mut mismatches = Vec::new();
    for (g, w) in got.lines().zip(want.lines()) {
        if g != w {
            mismatches.push(format!("  want: {w}\n   got: {g}"));
        }
    }
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "golden line count drifted"
    );
    assert!(
        mismatches.is_empty(),
        "pipeline output drifted from pre-refactor goldens:\n{}",
        mismatches.join("\n")
    );
}
