//! Property tests over the router: random circuits x topologies x
//! policies x cost models.
//!
//! Whatever the cost model prefers, routing must uphold the contracts the
//! rest of the pipeline relies on:
//!
//! * **Hardware compliance** — every two-qubit gate of the routed circuit
//!   sits on a coupling edge of the device.
//! * **Gate preservation** — routing only *relocates* computation: the
//!   multiset of unconditioned unitary gates (kind + angles) survives
//!   unchanged. SWAPs are inserted and reuse adds measure + conditional-X
//!   reset pairs, so those artifacts are excluded from the comparison.
//! * **Layout injectivity** — without reclamation, no two logical qubits
//!   start on the same physical qubit. (Under SR reclaim a freed wire
//!   legitimately hosts a later logical qubit's first placement, so the
//!   check applies to the baseline policy only.)
//! * **Determinism** — routing the same circuit twice under the same
//!   options yields bit-identical output (the property the engine cache
//!   and the frozen benchmarks both depend on).
//!
//! The DPQA movement backend has its own contract block below: gate
//! preservation, zero SWAPs, a physically-valid movement schedule
//! (site occupancy, AOD ordering, Rydberg range — via
//! [`MovementSchedule::verify`]), and calibration-seed independence.
//! A regression property also pins the SWAP backend byte-identical
//! across the backend dispatch under all three cost models.

use caqr::router::{route, CostModelSpec, RouterOptions, RoutingBackendSpec};
use caqr_arch::{Device, Topology};
use caqr_circuit::{Circuit, Clbit, Gate, Instruction, Qubit};
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One (opcode, qubit-selector, angle-millis) triple decodes to one gate.
type OpSpec = (u8, u32, u32);

/// Decodes specs into a circuit on `n` qubits: a CX-heavy mix of one- and
/// two-qubit gates, terminated by a full measurement layer.
fn build_circuit(n: usize, specs: &[OpSpec]) -> Circuit {
    let mut c = Circuit::new(n, n);
    for &(op, qsel, amil) in specs {
        let q0 = qsel as usize % n;
        let q1 = (qsel as usize / n) % n;
        let a = f64::from(amil) * 0.006_283;
        let gate = match op % 8 {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Rz(a),
            3 => Gate::Ry(a),
            4 => Gate::Cz,
            _ => Gate::Cx, // CX-heavy: routing pressure comes from 2q gates
        };
        if gate.num_qubits() == 2 {
            if q0 == q1 {
                continue; // degenerate selector: skip this spec
            }
            c.push(Instruction::gate(
                gate,
                vec![Qubit::new(q0), Qubit::new(q1)],
            ));
        } else {
            c.push(Instruction::gate(gate, vec![Qubit::new(q0)]));
        }
    }
    for q in 0..n {
        c.measure(Qubit::new(q), Clbit::new(q));
    }
    c
}

/// The multiset of unconditioned unitary, non-SWAP gates — the
/// computation routing must preserve. SWAPs, measure/reset, and
/// classically-conditioned gates (reuse resets as measure +
/// conditional-X) are routing and reuse artifacts.
fn unitary_multiset(c: &Circuit) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for instr in c {
        if matches!(instr.gate, Gate::Swap | Gate::Measure | Gate::Reset)
            || instr.condition.is_some()
        {
            continue;
        }
        *counts.entry(format!("{:?}", instr.gate)).or_insert(0) += 1;
    }
    counts
}

fn topologies() -> [Topology; 3] {
    [Topology::line(8), Topology::ring(8), Topology::grid(3, 3)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn routing_contracts_hold_for_every_policy_and_model(
        n in 2usize..=6,
        topo_idx in 0usize..3,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..30),
    ) {
        let circuit = build_circuit(n, &specs);
        let expected = unitary_multiset(&circuit);
        let device =
            Device::with_synthetic_calibration(topologies()[topo_idx].clone(), 2023);
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            for model in [
                CostModelSpec::Hop,
                CostModelSpec::lookahead(),
                CostModelSpec::NoiseAware,
            ] {
                let opts = base.with_cost_model(model);
                let routed = route(&circuit, &device, opts)
                    .map_err(|e| format!("{model}: {e}"))?;

                prop_assert!(
                    routed.is_hardware_compliant(&device),
                    "{model}: two-qubit gate off the coupling map"
                );
                let got = unitary_multiset(&routed.circuit);
                prop_assert!(
                    got == expected,
                    "{model}: unitary gate multiset changed: {got:?} vs {expected:?}"
                );

                if !opts.reclaim {
                    let mut placed: Vec<usize> =
                        routed.initial_layout.iter().flatten().copied().collect();
                    placed.sort_unstable();
                    let distinct = placed.len();
                    placed.dedup();
                    prop_assert!(
                        placed.len() == distinct,
                        "{model}: initial layout maps two logical qubits to one wire"
                    );
                }

                let again = route(&circuit, &device, opts)
                    .map_err(|e| format!("{model}: {e}"))?;
                prop_assert!(
                    again.circuit.fingerprint() == routed.circuit.fingerprint(),
                    "{model}: routing is not deterministic"
                );
            }
        }
    }

    #[test]
    fn dpqa_contracts_hold_on_random_circuits(
        n in 2usize..=6,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..30),
    ) {
        let circuit = build_circuit(n, &specs);
        let expected = unitary_multiset(&circuit);
        let device = Device::dpqa_grid(5, 5, 2023);
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            let opts = base.with_backend(RoutingBackendSpec::Dpqa);
            let routed = route(&circuit, &device, opts).map_err(|e| format!("dpqa: {e}"))?;

            // Movement replaces SWAPs entirely.
            prop_assert!(routed.swap_count == 0, "dpqa inserted SWAPs");
            prop_assert!(
                routed.circuit.iter().all(|i| i.gate != Gate::Swap),
                "dpqa output contains a Swap gate"
            );
            let got = unitary_multiset(&routed.circuit);
            prop_assert!(
                got == expected,
                "dpqa: unitary gate multiset changed: {got:?} vs {expected:?}"
            );

            // The schedule must replay cleanly against the grid geometry:
            // verify() rejects double site occupancy, AOD trap crossings,
            // out-of-range Rydberg pairs, and phantom loads/measures.
            let schedule = routed.schedule.as_ref();
            prop_assert!(schedule.is_some(), "dpqa output carries no schedule");
            prop_assert!(
                routed.is_valid_for(&device),
                "movement schedule fails physical verification"
            );
            prop_assert!(
                routed.movement_stages == schedule.map_or(0, |s| s.len()),
                "movement_stages disagrees with the schedule length"
            );

            // The scheduler never reads calibration, so a device with a
            // different synthetic-calibration seed must yield the same
            // routed circuit AND the same movement program.
            let other = route(&circuit, &Device::dpqa_grid(5, 5, 77), opts)
                .map_err(|e| format!("dpqa: {e}"))?;
            prop_assert!(
                other.circuit.fingerprint() == routed.circuit.fingerprint(),
                "dpqa routing depends on the calibration seed"
            );
            prop_assert!(
                other.schedule == routed.schedule,
                "dpqa schedule depends on the calibration seed"
            );
        }
    }

    #[test]
    fn swap_backend_dispatch_is_byte_identical(
        n in 2usize..=6,
        specs in collection::vec((0u8..=255, 0u32..10_000, 0u32..1000), 1..30),
    ) {
        // Regression for the backend split: routing through the explicit
        // SWAP backend must be byte-identical to the default dispatch for
        // every cost model, and giving a grid device DPQA geometry must
        // not perturb SWAP routing on it.
        let circuit = build_circuit(n, &specs);
        let plain = Device::with_synthetic_calibration(Topology::grid(5, 5), 2023);
        let dpqa = Device::dpqa_grid(5, 5, 2023);
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            for model in [
                CostModelSpec::Hop,
                CostModelSpec::lookahead(),
                CostModelSpec::NoiseAware,
            ] {
                let default_opts = base.with_cost_model(model);
                let explicit = default_opts.with_backend(RoutingBackendSpec::Swap);
                let a = route(&circuit, &plain, default_opts)
                    .map_err(|e| format!("{model}: {e}"))?;
                let b = route(&circuit, &plain, explicit)
                    .map_err(|e| format!("{model}: {e}"))?;
                let c = route(&circuit, &dpqa, explicit)
                    .map_err(|e| format!("{model}: {e}"))?;
                prop_assert!(
                    a.circuit.fingerprint() == b.circuit.fingerprint(),
                    "{model}: explicit swap backend drifts from default dispatch"
                );
                prop_assert!(
                    a.circuit.fingerprint() == c.circuit.fingerprint(),
                    "{model}: DPQA geometry perturbs SWAP routing on a grid"
                );
                prop_assert!(
                    c.swap_count == a.swap_count && c.schedule.is_none(),
                    "{model}: swap backend emitted movement artifacts"
                );
            }
        }
    }
}
