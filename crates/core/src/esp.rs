//! Estimated success probability (ESP) — the compile-time fidelity proxy.
//!
//! The paper selects among candidate circuits by "fidelity (depending on
//! the fidelity metric, for instance, estimated success probability)"
//! (§3.2.1). ESP multiplies the success probabilities of every operation
//! and a decoherence factor for time spent idling:
//!
//! ```text
//! ESP = prod(1 - e_gate) * prod(1 - e_readout) * prod(exp(-idle / T))
//! ```
//!
//! Computed on a *physical* circuit (operands are device qubits), so the
//! per-link CNOT errors and per-qubit readout errors apply exactly.

use caqr_arch::Device;
use caqr_circuit::depth::{DurationModel, Schedule};
use caqr_circuit::{Circuit, Gate, Instruction};

/// The error probability of one physical instruction on `device`.
fn gate_error(cal: &caqr_arch::Calibration, instr: &Instruction) -> f64 {
    match instr.gate {
        Gate::Measure => cal.readout_error(instr.qubits[0].index()),
        Gate::Reset => cal.readout_error(instr.qubits[0].index()),
        Gate::Swap => {
            let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
            1.0 - (1.0 - cal.cx_error(a, b)).powi(3)
        }
        g if g.is_two_qubit() => {
            let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
            cal.cx_error(a, b)
        }
        _ => cal.sq_error(instr.qubits[0].index()),
    }
}

/// Estimated success probability of a physical circuit on `device`.
///
/// Returns a value in `(0, 1]`. Higher is better.
pub fn estimate(circuit: &Circuit, device: &Device) -> f64 {
    let cal = device.calibration();
    let mut log_esp = 0.0f64;
    for instr in circuit {
        log_esp += (1.0 - gate_error(cal, instr)).ln();
    }
    // Idle decoherence from the gaps in each qubit's timeline.
    let schedule = Schedule::asap(circuit, &device.duration_model());
    let mut busy_until = vec![0u64; circuit.num_qubits()];
    for (idx, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            let gap = schedule.start(idx).saturating_sub(busy_until[q.index()]);
            if gap > 0 {
                let rate = 0.5 * (1.0 / cal.t1_dt(q.index()) + 1.0 / cal.t2_dt(q.index()));
                log_esp += -(gap as f64) * rate;
            }
            busy_until[q.index()] = schedule.finish(idx);
        }
    }
    log_esp.exp()
}

/// Every report metric of a compiled circuit, from one traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitStats {
    /// Logical depth (gate layers through qubit and classical wires).
    pub depth: usize,
    /// Duration in `dt` under the device's physical duration model.
    pub duration_dt: u64,
    /// Two-qubit gate count (including SWAPs).
    pub two_qubit_gates: usize,
    /// Estimated success probability.
    pub esp: f64,
}

/// Computes depth, duration, two-qubit count, and ESP in a **single**
/// walk of the circuit.
///
/// The separate metrics walk the instruction list once each (and the
/// schedule-based ones rebuild the dependency DAG); this fused version
/// propagates per-wire fronts — an unweighted front for depth, a
/// `dt`-weighted front for the ASAP schedule — in one pass. The wire
/// fronts are exactly the last-writer dependencies the DAG encodes, and
/// `u64` max/add is exact, so depth and duration are identical to
/// [`Circuit::depth`] and [`caqr_circuit::depth::duration_dt`].
///
/// ESP bit-identity with [`estimate`] requires matching its floating-point
/// accumulation order: all gate-error terms in instruction order first,
/// then all idle terms in instruction order. Gate terms are accumulated
/// during the walk; idle terms are collected and folded in afterwards.
pub fn circuit_stats(circuit: &Circuit, device: &Device) -> CircuitStats {
    let cal = device.calibration();
    let model = device.duration_model();
    let mut qlevel = vec![0usize; circuit.num_qubits()];
    let mut clevel = vec![0usize; circuit.num_clbits()];
    let mut depth = 0usize;
    let mut qtime = vec![0u64; circuit.num_qubits()];
    let mut ctime = vec![0u64; circuit.num_clbits()];
    let mut makespan = 0u64;
    let mut busy_until = vec![0u64; circuit.num_qubits()];
    let mut two_qubit_gates = 0usize;
    let mut log_esp = 0.0f64;
    let mut idle_terms = Vec::new();
    for instr in circuit {
        log_esp += (1.0 - gate_error(cal, instr)).ln();
        if instr.is_two_qubit() {
            two_qubit_gates += 1;
        }
        let clbits = || instr.clbit.iter().chain(instr.condition.iter());
        // Depth: unweighted wire fronts.
        let mut level = 0;
        for q in &instr.qubits {
            level = level.max(qlevel[q.index()]);
        }
        for c in clbits() {
            level = level.max(clevel[c.index()]);
        }
        let level = level + 1;
        for q in &instr.qubits {
            qlevel[q.index()] = level;
        }
        for c in clbits() {
            clevel[c.index()] = level;
        }
        depth = depth.max(level);
        // ASAP schedule: dt-weighted wire fronts.
        let mut start = 0u64;
        for q in &instr.qubits {
            start = start.max(qtime[q.index()]);
        }
        for c in clbits() {
            start = start.max(ctime[c.index()]);
        }
        let finish = start + model.duration(instr);
        for q in &instr.qubits {
            qtime[q.index()] = finish;
        }
        for c in clbits() {
            ctime[c.index()] = finish;
        }
        makespan = makespan.max(finish);
        // Idle decoherence, deferred to preserve estimate()'s term order.
        for q in &instr.qubits {
            let gap = start.saturating_sub(busy_until[q.index()]);
            if gap > 0 {
                let rate = 0.5 * (1.0 / cal.t1_dt(q.index()) + 1.0 / cal.t2_dt(q.index()));
                idle_terms.push(-(gap as f64) * rate);
            }
            busy_until[q.index()] = finish;
        }
    }
    for term in idle_terms {
        log_esp += term;
    }
    CircuitStats {
        depth,
        duration_dt: makespan,
        two_qubit_gates,
        esp: log_esp.exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn empty_circuit_is_certain() {
        let dev = Device::mumbai(1);
        assert_eq!(estimate(&Circuit::new(2, 0), &dev), 1.0);
    }

    #[test]
    fn more_gates_lower_esp() {
        let dev = Device::mumbai(1);
        let mut short = Circuit::new(2, 0);
        short.cx(q(0), q(1));
        let mut long = short.clone();
        for _ in 0..10 {
            long.cx(q(0), q(1));
        }
        assert!(estimate(&long, &dev) < estimate(&short, &dev));
    }

    #[test]
    fn swaps_cost_three_cnots() {
        let dev = Device::mumbai(1);
        let mut with_swap = Circuit::new(2, 0);
        with_swap.swap(q(0), q(1));
        let mut three_cx = Circuit::new(2, 0);
        for _ in 0..3 {
            three_cx.cx(q(0), q(1));
        }
        let a = estimate(&with_swap, &dev);
        let b = estimate(&three_cx, &dev);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn idling_penalized() {
        let dev = Device::mumbai(1);
        // q1 idles while q0 runs a long measurement chain, then acts.
        let mut idle_heavy = Circuit::new(2, 2);
        idle_heavy.h(q(1));
        idle_heavy.measure(q(0), Clbit::new(0));
        idle_heavy.measure(q(0), Clbit::new(0));
        idle_heavy.cx(q(0), q(1));
        // Same ops, but q1's H is adjacent to its CX (same idle? no: H at
        // t=0, cx waits for measures either way). Compare against a circuit
        // without the measures instead.
        let mut compact = Circuit::new(2, 2);
        compact.h(q(1));
        compact.cx(q(0), q(1));
        assert!(estimate(&idle_heavy, &dev) < estimate(&compact, &dev));
    }

    #[test]
    fn esp_in_unit_interval() {
        let dev = Device::mumbai(1);
        let mut c = Circuit::new(5, 5);
        for i in 0..5 {
            c.h(q(i));
        }
        for i in 0..4 {
            c.cx(q(i), q(i + 1));
        }
        c.measure_all();
        let esp = estimate(&c, &dev);
        assert!(esp > 0.0 && esp <= 1.0, "esp = {esp}");
    }

    #[test]
    fn fused_stats_are_bit_identical_to_separate_metrics() {
        let dev = Device::mumbai(1);
        let mut circuits = Vec::new();
        circuits.push(Circuit::new(3, 0));
        let mut c = Circuit::new(5, 5);
        for i in 0..5 {
            c.h(q(i));
        }
        for i in 0..4 {
            c.cx(q(i), q(i + 1));
        }
        c.swap(q(0), q(1));
        c.measure_all();
        circuits.push(c);
        let mut dynamic = Circuit::new(3, 2);
        dynamic.h(q(0));
        dynamic.cx(q(0), q(1));
        dynamic.measure(q(0), Clbit::new(0));
        dynamic.cond_x(q(0), Clbit::new(0));
        dynamic.cx(q(0), q(2));
        dynamic.measure(q(2), Clbit::new(1));
        circuits.push(dynamic);
        for (i, c) in circuits.iter().enumerate() {
            let stats = circuit_stats(c, &dev);
            assert_eq!(stats.depth, c.depth(), "circuit {i}: depth");
            assert_eq!(
                stats.duration_dt,
                caqr_circuit::depth::duration_dt(c, &dev.duration_model()),
                "circuit {i}: duration"
            );
            assert_eq!(
                stats.two_qubit_gates,
                c.two_qubit_gate_count(),
                "circuit {i}: 2q count"
            );
            assert_eq!(
                stats.esp.to_bits(),
                estimate(c, &dev).to_bits(),
                "circuit {i}: esp must be bit-identical"
            );
        }
    }

    #[test]
    fn bad_links_hurt_more() {
        let dev = Device::mumbai(1);
        let cal = dev.calibration();
        // Find the best and worst CNOT links.
        let mut links: Vec<(usize, usize)> = dev.topology().edges().collect();
        links.sort_by(|&(a, b), &(c, d)| cal.cx_error(a, b).total_cmp(&cal.cx_error(c, d)));
        let (ga, gb) = links[0];
        let (ba, bb) = links[links.len() - 1];
        let mut good = Circuit::new(dev.num_qubits(), 0);
        good.cx(q(ga), q(gb));
        let mut bad = Circuit::new(dev.num_qubits(), 0);
        bad.cx(q(ba), q(bb));
        assert!(estimate(&good, &dev) > estimate(&bad, &dev));
    }
}
