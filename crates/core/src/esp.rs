//! Estimated success probability (ESP) — the compile-time fidelity proxy.
//!
//! The paper selects among candidate circuits by "fidelity (depending on
//! the fidelity metric, for instance, estimated success probability)"
//! (§3.2.1). ESP multiplies the success probabilities of every operation
//! and a decoherence factor for time spent idling:
//!
//! ```text
//! ESP = prod(1 - e_gate) * prod(1 - e_readout) * prod(exp(-idle / T))
//! ```
//!
//! Computed on a *physical* circuit (operands are device qubits), so the
//! per-link CNOT errors and per-qubit readout errors apply exactly.

use caqr_arch::Device;
use caqr_circuit::depth::Schedule;
use caqr_circuit::{Circuit, Gate};

/// Estimated success probability of a physical circuit on `device`.
///
/// Returns a value in `(0, 1]`. Higher is better.
pub fn estimate(circuit: &Circuit, device: &Device) -> f64 {
    let cal = device.calibration();
    let mut log_esp = 0.0f64;
    for instr in circuit {
        let e = match instr.gate {
            Gate::Measure => cal.readout_error(instr.qubits[0].index()),
            Gate::Reset => cal.readout_error(instr.qubits[0].index()),
            Gate::Swap => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                1.0 - (1.0 - cal.cx_error(a, b)).powi(3)
            }
            g if g.is_two_qubit() => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                cal.cx_error(a, b)
            }
            _ => cal.sq_error(instr.qubits[0].index()),
        };
        log_esp += (1.0 - e).ln();
    }
    // Idle decoherence from the gaps in each qubit's timeline.
    let schedule = Schedule::asap(circuit, &device.duration_model());
    let mut busy_until = vec![0u64; circuit.num_qubits()];
    for (idx, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            let gap = schedule.start(idx).saturating_sub(busy_until[q.index()]);
            if gap > 0 {
                let rate = 0.5 * (1.0 / cal.t1_dt(q.index()) + 1.0 / cal.t2_dt(q.index()));
                log_esp += -(gap as f64) * rate;
            }
            busy_until[q.index()] = schedule.finish(idx);
        }
    }
    log_esp.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn empty_circuit_is_certain() {
        let dev = Device::mumbai(1);
        assert_eq!(estimate(&Circuit::new(2, 0), &dev), 1.0);
    }

    #[test]
    fn more_gates_lower_esp() {
        let dev = Device::mumbai(1);
        let mut short = Circuit::new(2, 0);
        short.cx(q(0), q(1));
        let mut long = short.clone();
        for _ in 0..10 {
            long.cx(q(0), q(1));
        }
        assert!(estimate(&long, &dev) < estimate(&short, &dev));
    }

    #[test]
    fn swaps_cost_three_cnots() {
        let dev = Device::mumbai(1);
        let mut with_swap = Circuit::new(2, 0);
        with_swap.swap(q(0), q(1));
        let mut three_cx = Circuit::new(2, 0);
        for _ in 0..3 {
            three_cx.cx(q(0), q(1));
        }
        let a = estimate(&with_swap, &dev);
        let b = estimate(&three_cx, &dev);
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn idling_penalized() {
        let dev = Device::mumbai(1);
        // q1 idles while q0 runs a long measurement chain, then acts.
        let mut idle_heavy = Circuit::new(2, 2);
        idle_heavy.h(q(1));
        idle_heavy.measure(q(0), Clbit::new(0));
        idle_heavy.measure(q(0), Clbit::new(0));
        idle_heavy.cx(q(0), q(1));
        // Same ops, but q1's H is adjacent to its CX (same idle? no: H at
        // t=0, cx waits for measures either way). Compare against a circuit
        // without the measures instead.
        let mut compact = Circuit::new(2, 2);
        compact.h(q(1));
        compact.cx(q(0), q(1));
        assert!(estimate(&idle_heavy, &dev) < estimate(&compact, &dev));
    }

    #[test]
    fn esp_in_unit_interval() {
        let dev = Device::mumbai(1);
        let mut c = Circuit::new(5, 5);
        for i in 0..5 {
            c.h(q(i));
        }
        for i in 0..4 {
            c.cx(q(i), q(i + 1));
        }
        c.measure_all();
        let esp = estimate(&c, &dev);
        assert!(esp > 0.0 && esp <= 1.0, "esp = {esp}");
    }

    #[test]
    fn bad_links_hurt_more() {
        let dev = Device::mumbai(1);
        let cal = dev.calibration();
        // Find the best and worst CNOT links.
        let mut links: Vec<(usize, usize)> = dev.topology().edges().collect();
        links.sort_by(|&(a, b), &(c, d)| cal.cx_error(a, b).total_cmp(&cal.cx_error(c, d)));
        let (ga, gb) = links[0];
        let (ba, bb) = links[links.len() - 1];
        let mut good = Circuit::new(dev.num_qubits(), 0);
        good.cx(q(ga), q(gb));
        let mut bad = Circuit::new(dev.num_qubits(), 0);
        bad.cx(q(ba), q(bb));
        assert!(estimate(&good, &dev) > estimate(&bad, &dev));
    }
}
