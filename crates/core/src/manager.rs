//! The `PassManager`: runs a named sequence of passes over a
//! [`CompileCtx`], with an observer hook for per-pass instrumentation.
//!
//! Every [`Strategy`] is a declarative recipe — a list of registered pass
//! names — so strategies, CLI `--passes` overrides, and future custom
//! pipelines all flow through the same machinery. `compile_traced` is a
//! thin wrapper that installs a [`StageTrace`]-recording observer.

use crate::cancel::CancelToken;
use crate::error::CaqrError;
use crate::pass::{
    BaselineRoutePass, CommutingAnalysisPass, CompileCtx, OptimizePass, Pass, QsSweepPass,
    ReportPass, RouteSweepPass, SelectObjective, SelectPass, SrRoutePass,
};
use crate::pipeline::{CompileReport, Stage, StageTrace, Strategy};
use crate::router::{CostModelSpec, RouterConfig};
use caqr_arch::Device;
#[cfg(debug_assertions)]
use caqr_circuit::parametric;
use caqr_circuit::{Circuit, ParametricCircuit};
use std::time::{Duration, Instant};

/// Instrumentation hook invoked as the pass manager runs.
///
/// `pass_complete` fires after every pass attempt — including a failing
/// one — with the wall time the pass consumed, so a trace survives a
/// mid-pipeline failure with all time attributed.
pub trait PassObserver {
    /// Called once per executed pass, in execution order.
    fn pass_complete(&mut self, name: &'static str, stage: Stage, elapsed: Duration);
}

/// An observer that records nothing.
pub struct NoopObserver;

impl PassObserver for NoopObserver {
    fn pass_complete(&mut self, _name: &'static str, _stage: Stage, _elapsed: Duration) {}
}

impl PassObserver for StageTrace {
    fn pass_complete(&mut self, name: &'static str, stage: Stage, elapsed: Duration) {
        self.record(stage, elapsed);
        self.record_pass(name, elapsed);
    }
}

/// Resolves a registered pass name to a pass instance.
///
/// # Errors
///
/// [`CaqrError::UnknownPass`] when `name` is not in the registry.
pub fn create_pass(name: &str) -> Result<Box<dyn Pass>, CaqrError> {
    Ok(match name {
        "optimize" => Box::new(OptimizePass),
        "commuting-analysis" => Box::new(CommutingAnalysisPass),
        "qs-sweep" => Box::new(QsSweepPass),
        "route-sweep" => Box::new(RouteSweepPass),
        "select-max-reuse" => Box::new(SelectPass {
            objective: SelectObjective::MaxReuse,
        }),
        "select-min-depth" => Box::new(SelectPass {
            objective: SelectObjective::MinDepth,
        }),
        "select-min-swap" => Box::new(SelectPass {
            objective: SelectObjective::MinSwap,
        }),
        "select-max-esp" => Box::new(SelectPass {
            objective: SelectObjective::MaxEsp,
        }),
        "baseline-route" => Box::new(BaselineRoutePass),
        "sr-route" => Box::new(SrRoutePass),
        "report" => Box::new(ReportPass),
        _ => {
            return Err(CaqrError::UnknownPass {
                name: name.to_string(),
            })
        }
    })
}

/// Every pass name the registry resolves, in a stable order (for CLI
/// help text and docs).
pub const REGISTERED_PASSES: [&str; 11] = [
    "optimize",
    "commuting-analysis",
    "qs-sweep",
    "route-sweep",
    "select-max-reuse",
    "select-min-depth",
    "select-min-swap",
    "select-max-esp",
    "baseline-route",
    "sr-route",
    "report",
];

/// An ordered sequence of passes, ready to compile circuits.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// The recipe for `strategy` — the declarative replacement for the
    /// old hard-coded `match` in `compile_stages`.
    pub fn for_strategy(strategy: Strategy) -> Self {
        let names = strategy.pass_names();
        let passes = names
            .iter()
            .map(|n| create_pass(n).expect("strategy recipes only name registered passes"))
            .collect();
        PassManager { passes }
    }

    /// Builds a manager from explicit pass names (the CLI `--passes`
    /// entry point).
    ///
    /// # Errors
    ///
    /// [`CaqrError::UnknownPass`] on the first unresolvable name.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Result<Self, CaqrError> {
        let passes = names
            .into_iter()
            .map(create_pass)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PassManager { passes })
    }

    /// The names of the passes this manager will run, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Compiles `circuit` for `device`, labelling the report with
    /// `strategy`.
    ///
    /// # Errors
    ///
    /// The first pass failure, or [`CaqrError::MissingArtifact`] if the
    /// sequence finished without producing a report.
    pub fn run(
        &self,
        circuit: &Circuit,
        device: &Device,
        strategy: Strategy,
    ) -> Result<CompileReport, CaqrError> {
        self.run_observed(circuit, device, strategy, &mut NoopObserver)
    }

    /// [`PassManager::run`] with per-pass instrumentation.
    ///
    /// The observer sees every executed pass — including the failing one,
    /// with its elapsed time — before the error propagates.
    ///
    /// # Errors
    ///
    /// Same contract as [`PassManager::run`].
    pub fn run_observed(
        &self,
        circuit: &Circuit,
        device: &Device,
        strategy: Strategy,
        observer: &mut dyn PassObserver,
    ) -> Result<CompileReport, CaqrError> {
        self.run_observed_cancellable(circuit, device, strategy, observer, &CancelToken::new())
    }

    /// [`PassManager::run_observed`] under a [`CancelToken`].
    ///
    /// The token is checked before every pass: a tripped token (explicit
    /// cancel or elapsed deadline) stops the pipeline at the next pass
    /// boundary with [`CaqrError::DeadlineExceeded`] naming the pass that
    /// would have run. Passes themselves are never interrupted mid-flight,
    /// so overrun is bounded by the slowest single pass.
    ///
    /// # Errors
    ///
    /// [`CaqrError::DeadlineExceeded`] on cancellation, otherwise the same
    /// contract as [`PassManager::run`].
    pub fn run_observed_cancellable(
        &self,
        circuit: &Circuit,
        device: &Device,
        strategy: Strategy,
        observer: &mut dyn PassObserver,
        cancel: &CancelToken,
    ) -> Result<CompileReport, CaqrError> {
        self.run_observed_cancellable_with(
            circuit,
            device,
            strategy,
            CostModelSpec::Hop,
            observer,
            cancel,
        )
    }

    /// [`PassManager::run_observed_cancellable`] under an explicit
    /// routing policy — a bare swap-scoring [`CostModelSpec`] (SWAP
    /// backend) or a full [`RouterConfig`] choosing the backend too:
    /// every routing pass in the recipe (baseline route, SR route, the
    /// sweep router) compiles under it.
    ///
    /// # Errors
    ///
    /// Same contract as [`PassManager::run_observed_cancellable`].
    pub fn run_observed_cancellable_with(
        &self,
        circuit: &Circuit,
        device: &Device,
        strategy: Strategy,
        router_config: impl Into<RouterConfig>,
        observer: &mut dyn PassObserver,
        cancel: &CancelToken,
    ) -> Result<CompileReport, CaqrError> {
        let ctx = CompileCtx::new(circuit.clone(), device, strategy).with_router(router_config);
        self.run_ctx(ctx, observer, cancel)
    }

    /// Compiles a parametric template through the full pipeline: layout,
    /// routing, and reuse scheduling run on the slot-carrying circuit,
    /// and the resulting report's circuit still carries the slots — one
    /// [`ParametricCircuit::bind`] call away from any concrete binding.
    ///
    /// In debug builds, every pass is audited for angle-independence:
    /// after each pass the working circuit must contain only finite
    /// angles and well-formed slots, and the final routed artifact must
    /// use exactly the template's slot multiset (passes may reorder,
    /// remap, or interleave rotations, but never invent, drop, or do
    /// arithmetic on a symbolic angle).
    ///
    /// # Errors
    ///
    /// Same contract as [`PassManager::run_observed_cancellable_with`].
    pub fn run_template_observed_cancellable_with(
        &self,
        template: &ParametricCircuit,
        device: &Device,
        strategy: Strategy,
        router_config: impl Into<RouterConfig>,
        observer: &mut dyn PassObserver,
        cancel: &CancelToken,
    ) -> Result<CompileReport, CaqrError> {
        let ctx = CompileCtx::new(template.circuit().clone(), device, strategy)
            .with_router(router_config)
            .with_parametric(template.num_slots());
        let report = self.run_ctx(ctx, observer, cancel)?;
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                parametric::validate_angles(&report.circuit, template.num_slots()).is_ok(),
                "routed template carries a malformed angle"
            );
            debug_assert_eq!(
                parametric::slot_census(&report.circuit),
                parametric::slot_census(template.circuit()),
                "pipeline changed the template's slot multiset"
            );
        }
        Ok(report)
    }

    fn run_ctx(
        &self,
        mut ctx: CompileCtx<'_>,
        observer: &mut dyn PassObserver,
        cancel: &CancelToken,
    ) -> Result<CompileReport, CaqrError> {
        for pass in &self.passes {
            cancel.check(pass.name())?;
            let start = Instant::now();
            let result = pass.run(&mut ctx);
            observer.pass_complete(pass.name(), pass.stage(), start.elapsed());
            result?;
            // Angle-independence audit: a pass run on a template may never
            // corrupt a slot or manufacture a non-finite concrete angle.
            #[cfg(debug_assertions)]
            if let Some(num_slots) = ctx.parametric_slots() {
                debug_assert!(
                    parametric::validate_angles(ctx.circuit(), num_slots).is_ok(),
                    "pass '{}' is not angle-independent: {:?}",
                    pass.name(),
                    parametric::validate_angles(ctx.circuit(), num_slots)
                );
            }
        }
        ctx.report.take().ok_or(CaqrError::MissingArtifact {
            pass: "pass-manager",
            artifact: "compile report",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_pass_resolves() {
        for name in REGISTERED_PASSES {
            let pass = create_pass(name).expect("registered pass must resolve");
            assert_eq!(pass.name(), name);
        }
    }

    #[test]
    fn unknown_pass_is_a_typed_error() {
        match create_pass("no-such-pass") {
            Err(CaqrError::UnknownPass { name }) => assert_eq!(name, "no-such-pass"),
            Err(other) => panic!("expected UnknownPass, got {other:?}"),
            Ok(_) => panic!("expected UnknownPass, got a pass"),
        }
    }

    #[test]
    fn strategy_recipes_resolve_and_end_in_report() {
        for strategy in [
            Strategy::Baseline,
            Strategy::QsMaxReuse,
            Strategy::QsMinDepth,
            Strategy::QsMinSwap,
            Strategy::QsMaxEsp,
            Strategy::Sr,
        ] {
            let pm = PassManager::for_strategy(strategy);
            let names = pm.pass_names();
            assert_eq!(names.first(), Some(&"optimize"), "{strategy}: {names:?}");
            assert_eq!(names.last(), Some(&"report"), "{strategy}: {names:?}");
        }
    }

    #[test]
    fn cancelled_token_stops_before_the_first_pass() {
        let mut c = Circuit::new(2, 2);
        c.h(caqr_circuit::Qubit::new(0));
        c.cx(caqr_circuit::Qubit::new(0), caqr_circuit::Qubit::new(1));
        c.measure_all();
        let device = Device::with_synthetic_calibration(caqr_arch::Topology::line(4), 7);
        let token = CancelToken::new();
        token.cancel();
        let pm = PassManager::for_strategy(Strategy::QsMaxReuse);
        let err = pm
            .run_observed_cancellable(&c, &device, Strategy::QsMaxReuse, &mut NoopObserver, &token)
            .unwrap_err();
        assert_eq!(err, CaqrError::DeadlineExceeded { phase: "optimize" });
        // An untripped token compiles normally.
        let live = CancelToken::new();
        assert!(pm
            .run_observed_cancellable(&c, &device, Strategy::QsMaxReuse, &mut NoopObserver, &live)
            .is_ok());
    }

    #[test]
    fn from_names_rejects_unknown() {
        assert!(matches!(
            PassManager::from_names(["optimize", "bogus"]),
            Err(CaqrError::UnknownPass { .. })
        ));
        let pm =
            PassManager::from_names(["optimize", "baseline-route", "report"]).expect("valid names");
        assert_eq!(pm.pass_names().len(), 3);
    }
}
