//! The shared layout-and-routing engine.
//!
//! Both SR-CaQR (§3.3) and the Qiskit-O3 stand-in baseline compile a
//! logical circuit onto a device by walking the dependence DAG layer by
//! layer, mapping logical qubits to physical ones and inserting SWAPs when
//! a two-qubit gate spans non-adjacent qubits. They differ only in policy,
//! captured by [`RouterOptions`]:
//!
//! * `delay_off_critical` — SR-CaQR delays frontier gates off the critical
//!   path so their qubits map later, onto better (or reclaimed) physical
//!   qubits (§3.3.1 Step 2).
//! * `reclaim` — SR-CaQR returns a physical qubit to the free list once its
//!   logical qubit retires, inserting the measure + conditional-reset
//!   sequence when the wire is handed to a new logical qubit (Step 4).
//! * `preplace` — the baseline maps every logical qubit up front
//!   (interaction-degree placement); SR-CaQR maps on demand.
//!
//! Physical-qubit choices and SWAP insertion are error-variability aware:
//! ties break toward smaller readout error and more reliable CNOT links,
//! per the paper's Step 2/3 heuristics.
//!
//! The DAG, interaction graph, and critical-path marks the router consumes
//! come from an [`AnalysisCache`]: callers that route the same circuit
//! more than once (SR's policy comparison, the bidirectional refinement)
//! pass a shared cache via [`route_cached`] so the analyses are built once.

use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use caqr_arch::Device;
use caqr_circuit::{Circuit, CircuitDag, Clbit, Gate, Instruction, Qubit};
use caqr_graph::Graph;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Routing policy knobs; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct RouterOptions {
    /// Delay mapping for frontier gates off the critical path.
    pub delay_off_critical: bool,
    /// Reclaim physical qubits whose logical qubit has retired.
    pub reclaim: bool,
    /// Map every logical qubit before routing (baseline behaviour).
    pub preplace: bool,
}

impl RouterOptions {
    /// SR-CaQR policy: delay + reclaim, on-demand mapping.
    pub fn sr() -> Self {
        RouterOptions {
            delay_off_critical: true,
            reclaim: true,
            preplace: false,
        }
    }

    /// Baseline (no-reuse) policy: eager placement, no reclamation.
    pub fn baseline() -> Self {
        RouterOptions {
            delay_off_critical: false,
            reclaim: false,
            preplace: true,
        }
    }
}

/// A hardware-compliant compiled circuit.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The physical circuit (wires are device qubits).
    pub circuit: Circuit,
    /// SWAPs inserted.
    pub swap_count: usize,
    /// Distinct physical qubits touched — the paper's "qubit usage" for
    /// compiled circuits.
    pub physical_qubits_used: usize,
    /// First physical qubit assigned to each logical qubit.
    pub initial_layout: Vec<Option<usize>>,
    /// Physical qubit holding each logical qubit after its last gate.
    pub final_layout: Vec<Option<usize>>,
}

impl RoutedCircuit {
    /// Checks hardware compliance: every two-qubit gate on a coupling edge.
    pub fn is_hardware_compliant(&self, device: &Device) -> bool {
        self.circuit.iter().all(|i| {
            !i.is_two_qubit()
                || device
                    .topology()
                    .are_coupled(i.qubits[0].index(), i.qubits[1].index())
        })
    }
}

/// State of a physical qubit between logical assignments.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PhysState {
    /// Never used: known |0>.
    Fresh,
    /// Previously used; needs a reset before reuse. If the retired logical
    /// qubit's last gate was a measurement, its clbit suffices for a
    /// conditional reset; otherwise a fresh measurement is required.
    Dirty { measured: Option<Clbit> },
}

struct Router<'a> {
    device: &'a Device,
    opts: RouterOptions,
    circuit: &'a Circuit,
    interaction: Rc<Graph>,
    // DAG state.
    dag: Rc<CircuitDag>,
    indeg: Vec<usize>,
    scheduled: Vec<bool>,
    critical: Rc<Vec<bool>>,
    // Mapping state.
    log2phys: Vec<Option<usize>>,
    phys2log: Vec<Option<usize>>,
    phys_state: Vec<PhysState>,
    free: BTreeSet<usize>,
    used_ever: BTreeSet<usize>,
    remaining: Vec<usize>,
    initial_layout: Vec<Option<usize>>,
    final_layout: Vec<Option<usize>>,
    // Output.
    out: Vec<Instruction>,
    next_clbit: usize,
    swap_count: usize,
}

impl<'a> Router<'a> {
    fn new(
        circuit: &'a Circuit,
        device: &'a Device,
        opts: RouterOptions,
        analyses: &mut AnalysisCache,
    ) -> Self {
        let dag = analyses.dag(circuit);
        let critical = analyses.critical_path(circuit, device);
        let interaction = analyses.interaction(circuit);
        let indeg = (0..circuit.len())
            .map(|v| dag.graph().in_degree(v))
            .collect();
        let mut remaining = vec![0usize; circuit.num_qubits()];
        for instr in circuit {
            for q in &instr.qubits {
                remaining[q.index()] += 1;
            }
        }
        let p = device.num_qubits();
        Router {
            device,
            opts,
            circuit,
            interaction,
            dag,
            indeg,
            scheduled: vec![false; circuit.len()],
            critical,
            log2phys: vec![None; circuit.num_qubits()],
            phys2log: vec![None; p],
            phys_state: vec![PhysState::Fresh; p],
            free: (0..p).collect(),
            used_ever: BTreeSet::new(),
            remaining,
            initial_layout: vec![None; circuit.num_qubits()],
            final_layout: vec![None; circuit.num_qubits()],
            out: Vec::new(),
            next_clbit: circuit.num_clbits(),
            swap_count: 0,
        }
    }

    /// Chooses a free physical qubit for logical `l` (the paper's Step 2):
    /// distance to `anchor` (the gate partner, when mapped) dominates, then
    /// lookahead — summed distance to `l`'s already-mapped future partners
    /// — then room (free neighbors), then readout / link error.
    fn pick_for(&self, l: usize, anchor: Option<usize>) -> Option<usize> {
        let topo = self.device.topology();
        let cal = self.device.calibration();
        let partners: Vec<usize> = self
            .interaction
            .neighbors(l)
            .filter_map(|m| self.log2phys[m])
            .collect();
        let score = |p: usize| {
            let d_anchor = anchor.map_or(0, |x| topo.distance(x, p));
            let d_partners: u32 = partners.iter().map(|&q| topo.distance(p, q)).sum();
            let free_neighbors = topo.neighbors(p).filter(|n| self.free.contains(n)).count();
            let err = match anchor {
                Some(x) if topo.distance(x, p) == 1 => cal.cx_error(x, p),
                _ => cal.readout_error(p),
            };
            (
                d_anchor,
                d_partners,
                std::cmp::Reverse(free_neighbors),
                err,
                p,
            )
        };
        self.free.iter().copied().min_by(|&a, &b| {
            let (a0, a1, a2, a3, a4) = score(a);
            let (b0, b1, b2, b3, b4) = score(b);
            (a0, a1, a2)
                .cmp(&(b0, b1, b2))
                .then(a3.total_cmp(&b3))
                .then(a4.cmp(&b4))
        })
    }

    /// Assigns logical `l` to physical `p`, inserting the reuse reset when
    /// the wire is dirty.
    fn assign(&mut self, l: usize, p: usize) {
        let was_free = self.free.remove(&p);
        debug_assert!(was_free, "physical qubit must be free");
        if let PhysState::Dirty { measured } = self.phys_state[p] {
            let clbit = match measured {
                Some(c) => c,
                None => {
                    let c = Clbit::new(self.next_clbit);
                    self.next_clbit += 1;
                    self.out.push(Instruction {
                        gate: Gate::Measure,
                        qubits: vec![Qubit::new(p)],
                        clbit: Some(c),
                        condition: None,
                    });
                    c
                }
            };
            self.out.push(Instruction {
                gate: Gate::X,
                qubits: vec![Qubit::new(p)],
                clbit: None,
                condition: Some(clbit),
            });
        }
        self.phys_state[p] = PhysState::Fresh;
        self.phys2log[p] = Some(l);
        self.log2phys[l] = Some(p);
        self.used_ever.insert(p);
        if self.initial_layout[l].is_none() {
            self.initial_layout[l] = Some(p);
        }
    }

    /// Maps any unmapped operands of `node` per the paper's Step 2 rules.
    fn map_operands(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let unmapped: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| q.index())
            .filter(|&l| self.log2phys[l].is_none())
            .collect();
        match (unmapped.len(), instr.qubits.len()) {
            (0, _) => Ok(()),
            (1, 1) => {
                let l = unmapped[0];
                let p = self
                    .pick_for(l, None)
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, p);
                Ok(())
            }
            (1, 2) => {
                let l = unmapped[0];
                let partner = instr
                    .qubits
                    .iter()
                    .map(|q| q.index())
                    .find(|&x| x != l)
                    .ok_or_else(|| CaqrError::internal("two-qubit gate has no second operand"))?;
                let anchor = self.log2phys[partner]
                    .ok_or_else(|| CaqrError::internal("gate partner is unmapped"))?;
                let p = self
                    .pick_for(l, Some(anchor))
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, p);
                Ok(())
            }
            (2, 2) => {
                // Map the busier qubit first, to a well-connected spot.
                let (a, b) = (unmapped[0], unmapped[1]);
                let (first, second) = if self.remaining[a] >= self.remaining[b] {
                    (a, b)
                } else {
                    (b, a)
                };
                let p1 = self
                    .pick_for(first, None)
                    .ok_or_else(|| self.out_of_qubits(first, Some(node)))?;
                self.assign(first, p1);
                let p2 = self
                    .pick_for(second, Some(p1))
                    .ok_or_else(|| self.out_of_qubits(second, Some(node)))?;
                self.assign(second, p2);
                Ok(())
            }
            _ => Err(CaqrError::internal(format!(
                "gate with {} operands (1 or 2 expected)",
                instr.qubits.len()
            ))),
        }
    }

    /// The out-of-capacity error, pinpointing the logical qubit whose
    /// placement failed and (when routing, not preplacing) the
    /// instruction that needed it.
    fn out_of_qubits(&self, qubit: usize, gate_index: Option<usize>) -> CaqrError {
        CaqrError::OutOfQubits {
            logical: self.circuit.num_qubits(),
            physical: self.device.num_qubits(),
            qubit: Some(qubit),
            gate_index,
        }
    }

    /// Emits `node` remapped to physical wires and updates DAG/mapping
    /// state.
    fn complete(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let mut ni = instr.clone();
        let mut qubits = Vec::with_capacity(instr.qubits.len());
        for q in &instr.qubits {
            let p = self.log2phys[q.index()]
                .ok_or_else(|| CaqrError::internal("emitting a gate with an unmapped operand"))?;
            qubits.push(Qubit::new(p));
        }
        ni.qubits = qubits;
        self.out.push(ni);
        self.scheduled[node] = true;
        let dag = Rc::clone(&self.dag);
        for s in dag.graph().successors(node) {
            self.indeg[s] -= 1;
        }
        for q in &instr.qubits {
            let l = q.index();
            self.remaining[l] -= 1;
            if self.remaining[l] == 0 {
                let p = self.log2phys[l]
                    .ok_or_else(|| CaqrError::internal("retiring an unmapped logical qubit"))?;
                self.final_layout[l] = Some(p);
                if self.opts.reclaim {
                    let measured = if instr.gate == Gate::Measure && instr.qubits[0].index() == l {
                        Some(instr.clbit.ok_or_else(|| {
                            CaqrError::internal("measure instruction has no clbit")
                        })?)
                    } else {
                        None
                    };
                    self.phys_state[p] = PhysState::Dirty { measured };
                    self.phys2log[p] = None;
                    self.log2phys[l] = None;
                    self.free.insert(p);
                }
            }
        }
        Ok(())
    }

    /// Chooses and applies the best single SWAP for the set of
    /// routing-pending two-qubit gates (all operands mapped, none
    /// adjacent). Candidates are scored frontier-wide, SABRE-style: the
    /// swap minimizing the *summed* distance of every pending gate wins
    /// (ties: avoid touching fresh qubits, then the more reliable link).
    /// When no swap shrinks the total, the first pending gate is routed
    /// greedily (a distance-reducing swap for a single gate always exists
    /// on a connected topology), which guarantees progress.
    fn insert_swap_for_frontier(&mut self, pending: &[usize]) -> Result<(), CaqrError> {
        let topo = self.device.topology();
        let cal = self.device.calibration();
        let mut gate_phys: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        for &node in pending {
            let instr = &self.circuit.instructions()[node];
            let a = self.log2phys[instr.qubits[0].index()]
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            let b = self.log2phys[instr.qubits[1].index()]
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            gate_phys.push((a, b));
        }
        let total = |swap: Option<(usize, usize)>| -> u32 {
            let remap = |p: usize| match swap {
                Some((x, y)) if p == x => y,
                Some((x, y)) if p == y => x,
                _ => p,
            };
            gate_phys
                .iter()
                .map(|&(a, b)| topo.distance(remap(a), remap(b)))
                .sum()
        };
        let before = total(None);

        type Cand = (u32, bool, f64, usize, usize); // (total_after, fresh, err, from, to)
        let mut best: Option<Cand> = None;
        let mut endpoints: Vec<usize> = gate_phys.iter().flat_map(|&(a, b)| [a, b]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        for &from in &endpoints {
            for to in topo.neighbors(from) {
                let after = total(Some((from, to)));
                if after >= before {
                    continue;
                }
                let fresh = !self.used_ever.contains(&to);
                let err = cal.cx_error(from, to);
                let cand = (after, fresh, err, from, to);
                let better = match &best {
                    None => true,
                    Some(b) => (cand.0, cand.1)
                        .cmp(&(b.0, b.1))
                        .then(cand.2.total_cmp(&b.2))
                        .then((cand.3, cand.4).cmp(&(b.3, b.4)))
                        .is_lt(),
                };
                if better {
                    best = Some(cand);
                }
            }
        }
        // Fallback: shrink the first gate's distance directly.
        let (from, to) = match best {
            Some((_, _, _, from, to)) => (from, to),
            None => {
                let (pa, pb) = gate_phys[0];
                let cur = topo.distance(pa, pb);
                let mut fallback: Option<(u32, f64, usize, usize)> = None;
                for (anchor, other) in [(pa, pb), (pb, pa)] {
                    for n in topo.neighbors(anchor) {
                        let nd = topo.distance(n, other);
                        if nd >= cur {
                            continue;
                        }
                        let err = cal.cx_error(anchor, n);
                        let cand = (nd, err, anchor, n);
                        let better = match &fallback {
                            None => true,
                            Some(b) => cand
                                .0
                                .cmp(&b.0)
                                .then(cand.1.total_cmp(&b.1))
                                .then((cand.2, cand.3).cmp(&(b.2, b.3)))
                                .is_lt(),
                        };
                        if better {
                            fallback = Some(cand);
                        }
                    }
                }
                let (_, _, from, to) = fallback.ok_or_else(|| {
                    CaqrError::internal(
                        "no distance-reducing swap exists; device topology is disconnected",
                    )
                })?;
                (from, to)
            }
        };
        self.out.push(Instruction::gate(
            Gate::Swap,
            vec![Qubit::new(from), Qubit::new(to)],
        ));
        self.swap_count += 1;
        // Update mapping: whatever sits on `from` and `to` trades places.
        let lf = self.phys2log[from];
        let lt = self.phys2log[to];
        self.phys2log[from] = lt;
        self.phys2log[to] = lf;
        if let Some(l) = lt {
            self.log2phys[l] = Some(from);
        }
        if let Some(l) = lf {
            self.log2phys[l] = Some(to);
        }
        self.phys_state.swap(from, to);
        self.used_ever.insert(from);
        self.used_ever.insert(to);
        // Free-set bookkeeping follows occupancy.
        match (self.free.contains(&from), self.free.contains(&to)) {
            (false, true) => {
                self.free.remove(&to);
                self.free.insert(from);
            }
            (true, false) => {
                self.free.remove(&from);
                self.free.insert(to);
            }
            _ => {}
        }
        Ok(())
    }

    /// Places logical qubits per an explicit seed layout (used by the
    /// bidirectional layout refinement).
    fn preplace_seeded(&mut self, layout: &[Option<usize>]) -> Result<(), CaqrError> {
        for (l, &p) in layout.iter().enumerate().take(self.circuit.num_qubits()) {
            if let Some(p) = p {
                if self.free.contains(&p) {
                    self.assign(l, p);
                }
            }
        }
        // Any logical qubit the seed missed falls back to the heuristic.
        for l in 0..self.circuit.num_qubits() {
            if self.log2phys[l].is_none() {
                let p = self
                    .pick_for(l, None)
                    .ok_or_else(|| self.out_of_qubits(l, None))?;
                self.assign(l, p);
            }
        }
        Ok(())
    }

    /// The baseline's eager placement: logical qubits by interaction
    /// degree, each placed to minimize distance to already-placed partners.
    fn preplace_all(&mut self) -> Result<(), CaqrError> {
        let mut order: Vec<usize> = (0..self.circuit.num_qubits()).collect();
        order.sort_by(|&a, &b| {
            self.interaction
                .degree(b)
                .cmp(&self.interaction.degree(a))
                .then(a.cmp(&b))
        });
        for l in order {
            let p = self
                .pick_for(l, None)
                .ok_or_else(|| self.out_of_qubits(l, None))?;
            self.assign(l, p);
        }
        Ok(())
    }

    fn run(mut self, seed_layout: Option<&[Option<usize>]>) -> Result<RoutedCircuit, CaqrError> {
        if self.opts.preplace {
            match seed_layout {
                Some(layout) => self.preplace_seeded(layout)?,
                None => self.preplace_all()?,
            }
        }
        let total = self.circuit.len();
        let mut done = 0usize;
        while done < total {
            let frontier: Vec<usize> = (0..total)
                .filter(|&v| !self.scheduled[v] && self.indeg[v] == 0)
                .collect();
            debug_assert!(!frontier.is_empty(), "acyclic DAG always has a frontier");

            // Pass A: emit every frontier gate that is ready as-is.
            let mut progressed = false;
            for &node in &frontier {
                let instr = &self.circuit.instructions()[node];
                let phys: Vec<Option<usize>> = instr
                    .qubits
                    .iter()
                    .map(|q| self.log2phys[q.index()])
                    .collect();
                if phys.iter().any(|p| p.is_none()) {
                    continue;
                }
                let ready = !instr.is_two_qubit()
                    || match (phys[0], phys[1]) {
                        (Some(a), Some(b)) => self.device.topology().are_coupled(a, b),
                        _ => false,
                    };
                if ready {
                    self.complete(node)?;
                    done += 1;
                    progressed = true;
                }
            }
            if progressed {
                continue;
            }

            // Pass B: route the mapped-but-distant frontier a step closer
            // with one frontier-scored SWAP.
            let pending: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    let instr = &self.circuit.instructions()[v];
                    instr.is_two_qubit()
                        && instr
                            .qubits
                            .iter()
                            .all(|q| self.log2phys[q.index()].is_some())
                })
                .collect();
            if !pending.is_empty() {
                self.insert_swap_for_frontier(&pending)?;
                continue;
            }

            // Pass C: map operands — critical-path gates first; delay the
            // rest unless nothing else can move (forced progress).
            let needs_mapping: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    self.circuit.instructions()[v]
                        .qubits
                        .iter()
                        .any(|q| self.log2phys[q.index()].is_none())
                })
                .collect();
            debug_assert!(
                !needs_mapping.is_empty(),
                "otherwise pass A or B progressed"
            );
            let chosen = if self.opts.delay_off_critical {
                needs_mapping
                    .iter()
                    .copied()
                    .find(|&v| self.critical[v])
                    .unwrap_or(needs_mapping[0])
            } else {
                needs_mapping[0]
            };
            self.map_operands(chosen)?;
        }

        let mut circuit = Circuit::new(self.device.num_qubits(), self.next_clbit);
        for instr in self.out {
            circuit.push(instr);
        }
        Ok(RoutedCircuit {
            circuit,
            swap_count: self.swap_count,
            physical_qubits_used: self.used_ever.len(),
            initial_layout: self.initial_layout,
            final_layout: self.final_layout,
        })
    }
}

/// Routes `circuit` onto `device` under the given policy.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the live logical qubits cannot
/// fit on the device.
pub fn route(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
) -> Result<RoutedCircuit, CaqrError> {
    route_seeded(circuit, device, opts, None)
}

/// Routes with an explicit initial layout (`layout[l]` = physical qubit
/// for logical `l`; `None` entries fall back to the heuristic). Used by
/// the bidirectional (SABRE-style) layout refinement in
/// [`crate::baseline`].
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit.
pub fn route_seeded(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
    layout: Option<&[Option<usize>]>,
) -> Result<RoutedCircuit, CaqrError> {
    let mut analyses = AnalysisCache::new();
    route_cached(circuit, device, opts, layout, &mut analyses)
}

/// [`route_seeded`] against a shared [`AnalysisCache`] describing
/// `circuit`: the DAG, interaction graph, and critical-path marks are
/// taken from (or built into) the cache instead of recomputed, so routing
/// the same circuit under several policies pays for its analyses once.
///
/// The cache must describe `circuit` — pass a fresh cache (or one
/// invalidated since the last mutation) or the routing result is
/// undefined.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit.
pub fn route_cached(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
    layout: Option<&[Option<usize>]>,
    analyses: &mut AnalysisCache,
) -> Result<RoutedCircuit, CaqrError> {
    if opts.preplace && circuit.num_qubits() > device.num_qubits() {
        return Err(CaqrError::OutOfQubits {
            logical: circuit.num_qubits(),
            physical: device.num_qubits(),
            qubit: None,
            gate_index: None,
        });
    }
    Router::new(circuit, device, opts, analyses).run(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Topology;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv5() -> Circuit {
        let mut c = Circuit::new(5, 4);
        for i in 0..4 {
            c.h(q(i));
        }
        c.x(q(4));
        c.h(q(4));
        for i in 0..4 {
            c.cx(q(i), q(4));
            c.h(q(i));
        }
        for i in 0..4 {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    fn device5() -> Device {
        Device::with_synthetic_calibration(Topology::five_qubit_t(), 3)
    }

    #[test]
    fn baseline_routes_bv5_compliantly() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::baseline())?;
        assert!(r.is_hardware_compliant(&device5()));
        // Star of degree 4 cannot embed in a degree-3 device: SWAPs needed
        // (the paper's Fig. 5 argument).
        assert!(r.swap_count >= 1, "expected SWAPs, got {}", r.swap_count);
        assert_eq!(r.physical_qubits_used, 5);
        Ok(())
    }

    #[test]
    fn sr_uses_fewer_qubits_on_bv() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::sr())?;
        assert!(r.is_hardware_compliant(&device5()));
        // Reclaiming lets data qubits share wires.
        assert!(
            r.physical_qubits_used < 5,
            "SR should reuse wires, used {}",
            r.physical_qubits_used
        );
        Ok(())
    }

    #[test]
    fn sr_semantics_preserved() -> TestResult {
        use caqr_sim::Executor;
        let c = bv5();
        let dev = device5();
        for opts in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, opts)?;
            let counts = Executor::ideal().run_shots(&r.circuit, 80, 2);
            assert_eq!(
                counts.get(0b1111),
                80,
                "opts {opts:?} corrupted the circuit: {counts}"
            );
        }
        Ok(())
    }

    #[test]
    fn routed_gates_all_coupled_on_mumbai() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(5);
        let mut c = Circuit::new(8, 8);
        // A ring of CXs — needs routing on heavy-hex.
        for i in 0..8 {
            c.h(q(i));
        }
        for i in 0..8 {
            c.cx(q(i), q((i + 3) % 8));
        }
        c.measure_all();
        for opts in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, opts)?;
            assert!(r.is_hardware_compliant(&dev), "{opts:?}");
            // Still runs (no structural corruption).
            let (compact, _) = r.circuit.compact_qubits();
            let counts = Executor::ideal().run_shots(&compact, 10, 3);
            assert_eq!(counts.total(), 10);
        }
        Ok(())
    }

    #[test]
    fn reclaimed_wire_gets_reset() -> TestResult {
        // Two disjoint sequential stages that can share wires under SR.
        let dev = Device::with_synthetic_calibration(Topology::line(3), 1);
        let mut c = Circuit::new(4, 4);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.measure(q(0), Clbit::new(0));
        c.measure(q(1), Clbit::new(1));
        c.h(q(2));
        c.cx(q(2), q(3));
        c.measure(q(2), Clbit::new(2));
        c.measure(q(3), Clbit::new(3));
        let r = route(&c, &dev, RouterOptions::sr())?;
        assert!(r.physical_qubits_used <= 3);
        // Conditional resets appear where wires were handed over.
        let resets = r.circuit.iter().filter(|i| i.condition.is_some()).count();
        assert!(resets >= 1, "expected reuse resets");
        // And the result still samples a valid Bell-pair pattern on both
        // stages (00/11 on clbits {0,1} and {2,3}).
        use caqr_sim::Executor;
        let counts = Executor::ideal().run_shots(&r.circuit, 400, 7);
        for (v, n) in counts.iter() {
            let first = v & 0b11;
            let second = v >> 2 & 0b11;
            assert!(first == 0 || first == 3, "{v:04b} x{n}");
            assert!(second == 0 || second == 3, "{v:04b} x{n}");
        }
        Ok(())
    }

    #[test]
    fn baseline_rejects_oversized_circuit() -> TestResult {
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.h(q(1));
        c.h(q(2));
        let Err(err) = route(&c, &dev, RouterOptions::baseline()) else {
            return Err("oversized circuit must not route".into());
        };
        assert!(matches!(err, CaqrError::OutOfQubits { .. }));
        assert!(format!("{err}").contains("cannot place"));
        Ok(())
    }

    #[test]
    fn on_demand_placement_failure_names_qubit_and_gate() -> TestResult {
        // SR (no preplace, no up-front width check) runs out of physical
        // qubits mid-routing: the error must say which logical qubit and
        // which instruction hit the wall.
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(3, 0);
        // All three logical qubits concurrently live.
        c.cx(q(0), q(1));
        c.cx(q(1), q(2));
        c.cx(q(0), q(2));
        let Err(err) = route(&c, &dev, RouterOptions::sr()) else {
            return Err("3 live qubits cannot fit on 2".into());
        };
        assert!(matches!(err, CaqrError::OutOfQubits { .. }), "{err:?}");
        assert!(err.qubit().is_some(), "error must name the logical qubit");
        assert!(err.gate_index().is_some(), "error must name the gate index");
        Ok(())
    }

    #[test]
    fn sr_fits_oversized_circuit_with_disjoint_lifetimes() -> TestResult {
        // 4 logical qubits, 2 physical — but lifetimes are sequential, so
        // reclamation makes it fit. This is the paper's capacity argument.
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(4, 4);
        for pair in [(0usize, 1usize), (2, 3)] {
            c.h(q(pair.0));
            c.cx(q(pair.0), q(pair.1));
            c.measure(q(pair.0), Clbit::new(pair.0));
            c.measure(q(pair.1), Clbit::new(pair.1));
        }
        let r = route(&c, &dev, RouterOptions::sr())?;
        assert_eq!(r.physical_qubits_used, 2);
        assert!(r.is_hardware_compliant(&dev));
        Ok(())
    }

    #[test]
    fn layouts_recorded() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::baseline())?;
        for l in 0..5 {
            assert!(r.initial_layout[l].is_some());
            assert!(r.final_layout[l].is_some());
        }
        // Initial layout is injective.
        let mut seen = std::collections::BTreeSet::new();
        for p in r.initial_layout.iter().flatten() {
            assert!(seen.insert(p));
        }
        Ok(())
    }

    #[test]
    fn already_compliant_circuit_needs_no_swaps() -> TestResult {
        let dev = Device::with_synthetic_calibration(Topology::line(3), 1);
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        let r = route(&c, &dev, RouterOptions::baseline())?;
        assert_eq!(r.swap_count, 0);
        Ok(())
    }

    #[test]
    fn cached_route_matches_fresh_route() -> TestResult {
        let c = bv5();
        let dev = device5();
        let fresh = route(&c, &dev, RouterOptions::sr())?;
        let mut cache = AnalysisCache::new();
        // Route twice through the same cache: both must match the fresh
        // result exactly (the cache only saves rebuilds, never changes
        // results).
        for _ in 0..2 {
            let cached = route_cached(&c, &dev, RouterOptions::sr(), None, &mut cache)?;
            assert_eq!(
                cached.circuit.fingerprint(),
                fresh.circuit.fingerprint(),
                "cached analyses must not change routing output"
            );
            assert_eq!(cached.swap_count, fresh.swap_count);
        }
        assert!(cache.cached_count() > 0, "route_cached must fill the cache");
        Ok(())
    }
}
