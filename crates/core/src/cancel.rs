//! Cooperative cancellation for long-running compilations.
//!
//! A [`CancelToken`] is a cheap, clonable handle combining an explicit
//! stop flag with an optional deadline. Work that honours it —
//! [`crate::manager::PassManager::run_observed_cancellable`] checks
//! between passes, the simulator's executor checks between shot chunks —
//! stops at the next checkpoint and reports
//! [`crate::CaqrError::DeadlineExceeded`], which `caqr-serve` maps to an
//! HTTP 504 without killing the worker thread.
//!
//! Cancellation is *cooperative*: a token never interrupts a pass
//! mid-flight, so a slow individual pass overruns its deadline by at most
//! its own duration. That bound is what makes per-request deadlines safe
//! to enforce from a fixed worker pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation handle: an explicit stop flag plus an optional
/// wall-clock deadline.
///
/// Clones share state — cancelling any clone cancels them all.
///
/// # Examples
///
/// ```
/// use caqr::cancel::CancelToken;
/// use std::time::Duration;
///
/// let token = CancelToken::with_timeout(Duration::from_secs(30));
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires on its own; only [`CancelToken::cancel`]
    /// trips it.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that fires when `deadline` passes (or on explicit cancel,
    /// whichever comes first).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// [`CancelToken::with_deadline`] at `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Trips the stop flag on this token and every clone sharing it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once the flag is tripped or the deadline has
    /// passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Checkpoint helper: `Err(DeadlineExceeded)` once cancelled.
    ///
    /// # Errors
    ///
    /// [`crate::CaqrError::DeadlineExceeded`] tagged with `phase` when the
    /// token has fired.
    pub fn check(&self, phase: &'static str) -> Result<(), crate::CaqrError> {
        if self.is_cancelled() {
            Err(crate::CaqrError::DeadlineExceeded { phase })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CaqrError;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check("test").is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(
            t.check("pass"),
            Err(CaqrError::DeadlineExceeded { phase: "pass" })
        );
    }

    #[test]
    fn expired_deadline_fires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let live = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!live.is_cancelled());
        assert!(live.deadline().is_some());
    }
}
