//! The DPQA greedy movement-scheduling backend.
//!
//! On a dynamically field-programmable qubit array there is no fixed
//! coupling graph to SWAP across: atoms sit in a grid of SLM traps and
//! are *physically moved* into Rydberg blockade range by AOD row/column
//! passes (see [`caqr_arch::GridGeometry`]). Routing therefore becomes a
//! movement-scheduling problem, and this module is the open greedy
//! contribution: a frontier walk structurally parallel to the SWAP
//! router's (pass A emit / pass B make progress / pass C map operands),
//! where "progress" is a conflict-free parallel AOD shift instead of one
//! SWAP.
//!
//! The three passes per DAG layer:
//!
//! * **Pass A (pulse)** — every frontier gate whose operands are mapped
//!   and (for two-qubit gates) within blockade range executes. All the
//!   layer's in-range pairs are folded into one [`MoveStage::Rydberg`]
//!   stage — frontier gates are qubit-disjoint, so the pairs are too.
//! * **Pass B (shift)** — for the mapped-but-distant gates, one batched
//!   [`MoveStage::Shift`] moves each gate's cheaper operand (fewer
//!   remaining gates; ties to the smaller atom id) next to its partner.
//!   Moves join the batch only if their destination is free and the AOD
//!   order-preservation constraint holds against every move already
//!   planned (AOD traps cannot cross). When the first pending gate has
//!   no free adjacent site at all, the stage degrades to a single
//!   *eviction* move that relocates one blocking atom to the nearest
//!   free site — the next round then finds a free neighbor, so every
//!   pending gate needs at most two shift stages before it pulses.
//! * **Pass C (map)** — unmapped operands are placed exactly like the
//!   SWAP router's Step-2 rules (critical-path-first under
//!   `delay_off_critical`), except "place" means loading a fresh or
//!   reclaimed atom into a free SLM site near its partner (or near the
//!   grid center when it has none).
//!
//! Qubit reuse is priced in movement: under `reclaim`, a retiring
//! logical qubit's atom leaves the grid through a
//! [`MoveStage::MeasureTransit`] (freeing its SLM site), and handing its
//! wire to a new logical qubit costs a fresh [`MoveStage::Load`] plus
//! the usual Fig. 2 measure + conditional-X reset. Reuse decisions made
//! upstream (QS/SR) therefore carry a real movement cost downstream.
//!
//! The scheduler never reads calibration data, so its output is
//! identical across device calibration seeds, and it ignores the SWAP
//! cost model entirely. Determinism: every choice (atom, site, mover,
//! batch membership) breaks ties by ascending index.

use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use crate::router::backend::{DpqaBackend, RoutingBackend, RoutingBackendSpec};
use crate::router::{RoutedProgram, RouterOptions};
use caqr_arch::{
    manhattan, AtomMove, Device, GridGeometry, Layout, MoveStage, MovementSchedule, WireState,
};
use caqr_circuit::{Circuit, CircuitDag, Clbit, Gate, Instruction, Qubit};
use caqr_graph::Graph;
use std::rc::Rc;

impl RoutingBackend for DpqaBackend {
    fn spec(&self) -> RoutingBackendSpec {
        RoutingBackendSpec::Dpqa
    }

    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        opts: RouterOptions,
        seed_layout: Option<&[Option<usize>]>,
        analyses: &mut AnalysisCache,
    ) -> Result<RoutedProgram, CaqrError> {
        let Some(geom) = device.dpqa_geometry() else {
            return Err(CaqrError::BackendDeviceMismatch {
                backend: RoutingBackendSpec::Dpqa.name(),
                device: device.to_string(),
            });
        };
        if opts.preplace && circuit.num_qubits() > device.num_qubits() {
            return Err(CaqrError::OutOfQubits {
                logical: circuit.num_qubits(),
                physical: device.num_qubits(),
                qubit: None,
                gate_index: None,
            });
        }
        MovementRouter::new(circuit, device, *geom, opts, analyses).run(seed_layout)
    }
}

struct MovementRouter<'a> {
    device: &'a Device,
    geom: GridGeometry,
    opts: RouterOptions,
    circuit: &'a Circuit,
    interaction: Rc<Graph>,
    // DAG state (mirrors the SWAP router).
    dag: Rc<CircuitDag>,
    indeg: Vec<usize>,
    scheduled: Vec<bool>,
    critical: Rc<Vec<bool>>,
    // Mapping state: logical qubit -> atom id (the layout's "physical"
    // space is atom ids), plus where each live atom currently sits.
    layout: Layout,
    remaining: Vec<usize>,
    final_layout: Vec<Option<usize>>,
    atom_site: Vec<Option<(usize, usize)>>,
    site_atom: Vec<Option<usize>>,
    // Output.
    schedule: MovementSchedule,
    out: Vec<Instruction>,
    next_clbit: usize,
}

impl<'a> MovementRouter<'a> {
    fn new(
        circuit: &'a Circuit,
        device: &'a Device,
        geom: GridGeometry,
        opts: RouterOptions,
        analyses: &mut AnalysisCache,
    ) -> Self {
        let dag = analyses.dag(circuit);
        let critical = analyses.critical_path(circuit, device);
        let interaction = analyses.interaction(circuit);
        let indeg = (0..circuit.len())
            .map(|v| dag.graph().in_degree(v))
            .collect();
        let mut remaining = vec![0usize; circuit.num_qubits()];
        for instr in circuit {
            for q in &instr.qubits {
                remaining[q.index()] += 1;
            }
        }
        let num_atoms = device.num_qubits();
        MovementRouter {
            device,
            geom,
            opts,
            circuit,
            interaction,
            dag,
            indeg,
            scheduled: vec![false; circuit.len()],
            critical,
            layout: Layout::new(circuit.num_qubits(), num_atoms),
            remaining,
            final_layout: vec![None; circuit.num_qubits()],
            atom_site: vec![None; num_atoms],
            site_atom: vec![None; geom.num_sites()],
            schedule: MovementSchedule::new(),
            out: Vec::new(),
            next_clbit: circuit.num_clbits(),
        }
    }

    /// The grid's center site — the placement target for atoms with no
    /// mapped interaction partner, so early placements cluster where
    /// later partners have the most room around them.
    fn center(&self) -> (usize, usize) {
        ((self.geom.rows() - 1) / 2, (self.geom.cols() - 1) / 2)
    }

    fn site_of(&self, atom: usize) -> Result<(usize, usize), CaqrError> {
        self.atom_site[atom]
            .ok_or_else(|| CaqrError::internal(format!("atom {atom} is mapped but off-grid")))
    }

    /// The next atom id to hand out: the smallest *reclaimed* free atom
    /// if any (reuse-first — this is where width savings come from),
    /// else the smallest fresh one.
    fn pick_atom(&self) -> Option<usize> {
        let mut first_free = None;
        for p in self.layout.free_wires() {
            if first_free.is_none() {
                first_free = Some(p);
            }
            if self.layout.was_used(p) {
                return Some(p);
            }
        }
        first_free
    }

    /// The free SLM site nearest `target` (ties to the smaller flat
    /// index).
    fn pick_site_near(&self, target: (usize, usize)) -> Option<(usize, usize)> {
        (0..self.geom.num_sites())
            .filter(|&s| self.site_atom[s].is_none())
            .min_by_key(|&s| (manhattan(self.geom.coords(s), target), s))
            .map(|s| self.geom.coords(s))
    }

    /// Assigns logical `l` to a new atom loaded into a free site near
    /// `anchor` (or near the center), inserting the Fig. 2 reuse reset
    /// when the atom's wire is dirty.
    fn assign(
        &mut self,
        l: usize,
        atom: usize,
        anchor: Option<(usize, usize)>,
    ) -> Result<(), CaqrError> {
        let at = self
            .pick_site_near(anchor.unwrap_or_else(|| self.center()))
            .ok_or_else(|| CaqrError::internal("free atom id without a free SLM site"))?;
        if let WireState::Dirty { measured } = self.layout.assign(l, atom) {
            let clbit = match measured {
                Some(c) => Clbit::new(c),
                None => {
                    let c = Clbit::new(self.next_clbit);
                    self.next_clbit += 1;
                    self.out.push(Instruction {
                        gate: Gate::Measure,
                        qubits: vec![Qubit::new(atom)],
                        clbit: Some(c),
                        condition: None,
                    });
                    c
                }
            };
            self.out.push(Instruction {
                gate: Gate::X,
                qubits: vec![Qubit::new(atom)],
                clbit: None,
                condition: Some(clbit),
            });
        }
        self.schedule.push(MoveStage::Load { atom, at });
        self.atom_site[atom] = Some(at);
        self.site_atom[self.geom.site(at.0, at.1)] = Some(atom);
        Ok(())
    }

    fn out_of_qubits(&self, qubit: usize, gate_index: Option<usize>) -> CaqrError {
        CaqrError::OutOfQubits {
            logical: self.circuit.num_qubits(),
            physical: self.device.num_qubits(),
            qubit: Some(qubit),
            gate_index,
        }
    }

    /// Maps any unmapped operands of `node` — the SWAP router's Step-2
    /// shape, with "pick a physical qubit" replaced by "pick an atom and
    /// load it near its partner".
    fn map_operands(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let unmapped: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| q.index())
            .filter(|&l| self.layout.phys_of(l).is_none())
            .collect();
        match (unmapped.len(), instr.qubits.len()) {
            (0, _) => Ok(()),
            (1, 1) => {
                let l = unmapped[0];
                let atom = self
                    .pick_atom()
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, atom, None)
            }
            (1, 2) => {
                let l = unmapped[0];
                let partner = instr
                    .qubits
                    .iter()
                    .map(|q| q.index())
                    .find(|&x| x != l)
                    .ok_or_else(|| CaqrError::internal("two-qubit gate has no second operand"))?;
                let partner_atom = self
                    .layout
                    .phys_of(partner)
                    .ok_or_else(|| CaqrError::internal("gate partner is unmapped"))?;
                let anchor = self.site_of(partner_atom)?;
                let atom = self
                    .pick_atom()
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, atom, Some(anchor))
            }
            (2, 2) => {
                // Map the busier qubit first, near the center; anchor the
                // second on it.
                let (a, b) = (unmapped[0], unmapped[1]);
                let (first, second) = if self.remaining[a] >= self.remaining[b] {
                    (a, b)
                } else {
                    (b, a)
                };
                let atom1 = self
                    .pick_atom()
                    .ok_or_else(|| self.out_of_qubits(first, Some(node)))?;
                self.assign(first, atom1, None)?;
                let anchor = self.site_of(atom1)?;
                let atom2 = self
                    .pick_atom()
                    .ok_or_else(|| self.out_of_qubits(second, Some(node)))?;
                self.assign(second, atom2, Some(anchor))
            }
            _ => Err(CaqrError::internal(format!(
                "gate with {} operands (1 or 2 expected)",
                instr.qubits.len()
            ))),
        }
    }

    /// Emits `node` on atom wires and updates DAG/mapping state; under
    /// `reclaim`, a retiring operand's atom leaves for the measurement
    /// zone (a priced movement stage) and its site and wire free up.
    fn complete(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let mut ni = instr.clone();
        let mut qubits = Vec::with_capacity(instr.qubits.len());
        for q in &instr.qubits {
            let atom = self
                .layout
                .phys_of(q.index())
                .ok_or_else(|| CaqrError::internal("emitting a gate with an unmapped operand"))?;
            qubits.push(Qubit::new(atom));
        }
        ni.qubits = qubits;
        self.out.push(ni);
        self.scheduled[node] = true;
        let dag = Rc::clone(&self.dag);
        for s in dag.graph().successors(node) {
            self.indeg[s] -= 1;
        }
        for q in &instr.qubits {
            let l = q.index();
            self.remaining[l] -= 1;
            if self.remaining[l] == 0 {
                let atom = self
                    .layout
                    .phys_of(l)
                    .ok_or_else(|| CaqrError::internal("retiring an unmapped logical qubit"))?;
                self.final_layout[l] = Some(atom);
                if self.opts.reclaim {
                    let measured = if instr.gate == Gate::Measure && instr.qubits[0].index() == l {
                        let clbit = instr.clbit.ok_or_else(|| {
                            CaqrError::internal("measure instruction has no clbit")
                        })?;
                        Some(clbit.index())
                    } else {
                        None
                    };
                    self.layout.release(l, measured);
                    let at = self.site_of(atom)?;
                    self.schedule.push(MoveStage::MeasureTransit { atom });
                    self.atom_site[atom] = None;
                    self.site_atom[self.geom.site(at.0, at.1)] = None;
                }
            }
        }
        Ok(())
    }

    /// Whether adding `m` to a shift already containing `planned` keeps
    /// the AOD row/column order constraint (traps cannot cross).
    fn preserves_order(planned: &[AtomMove], m: &AtomMove) -> bool {
        planned.iter().all(|p| {
            p.from.0.cmp(&m.from.0) == p.to.0.cmp(&m.to.0)
                && p.from.1.cmp(&m.from.1) == p.to.1.cmp(&m.to.1)
        })
    }

    /// The four grid neighbors of `at`, in ascending flat-index order.
    fn neighbors(&self, at: (usize, usize)) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(4);
        if at.0 > 0 {
            out.push((at.0 - 1, at.1));
        }
        if at.1 > 0 {
            out.push((at.0, at.1 - 1));
        }
        if at.1 + 1 < self.geom.cols() {
            out.push((at.0, at.1 + 1));
        }
        if at.0 + 1 < self.geom.rows() {
            out.push((at.0 + 1, at.1));
        }
        out
    }

    /// Pass B: one AOD shift stage that moves each pending gate's
    /// cheaper operand next to its partner, batching as many
    /// order-compatible moves as possible; degrades to a single eviction
    /// move when the first gate is completely walled in.
    fn shift_toward_frontier(&mut self, pending: &[usize]) -> Result<(), CaqrError> {
        let mut planned: Vec<AtomMove> = Vec::new();
        for (gi, &node) in pending.iter().enumerate() {
            let instr = &self.circuit.instructions()[node];
            let (la, lb) = (instr.qubits[0].index(), instr.qubits[1].index());
            let pa = self
                .layout
                .phys_of(la)
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            let pb = self
                .layout
                .phys_of(lb)
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            let (sa, sb) = (self.site_of(pa)?, self.site_of(pb)?);
            // Move the operand with less future work (ties: smaller atom
            // id) toward the busier one, so hot atoms stay put.
            let (mover, mover_site, partner_site) =
                if (self.remaining[la], pa) <= (self.remaining[lb], pb) {
                    (pa, sa, sb)
                } else {
                    (pb, sb, sa)
                };
            // Destination: a free partner-adjacent site. "Free" accounts
            // for the batch — sources vacated by already-planned moves
            // open up (all AOD pick-ups happen before any drop-off), and
            // planned destinations are taken.
            let dest = self
                .neighbors(partner_site)
                .into_iter()
                .filter(|&d| {
                    let occupied_now = self.site_atom[self.geom.site(d.0, d.1)].is_some();
                    let vacated = planned.iter().any(|p| p.from == d);
                    let claimed = planned.iter().any(|p| p.to == d);
                    (!occupied_now || vacated) && !claimed
                })
                .min_by_key(|&d| (manhattan(mover_site, d), self.geom.site(d.0, d.1)));
            if let Some(to) = dest {
                let m = AtomMove {
                    atom: mover,
                    from: mover_site,
                    to,
                };
                if Self::preserves_order(&planned, &m) {
                    planned.push(m);
                }
                continue;
            }
            // The first gate is walled in: spend this stage evicting one
            // blocking neighbor to the nearest free site, then stop — the
            // next round finds the vacated site free. Later gates never
            // evict (their turn comes when they are first).
            if gi == 0 {
                debug_assert!(planned.is_empty());
                let blocker_site = self
                    .neighbors(partner_site)
                    .into_iter()
                    .find(|&d| self.site_atom[self.geom.site(d.0, d.1)].is_some())
                    .ok_or_else(|| CaqrError::internal("walled-in gate with no neighbors"))?;
                let blocker = self.site_atom[self.geom.site(blocker_site.0, blocker_site.1)]
                    .ok_or_else(|| CaqrError::internal("blocker site is empty"))?;
                let refuge = (0..self.geom.num_sites())
                    .filter(|&s| self.site_atom[s].is_none())
                    .min_by_key(|&s| (manhattan(self.geom.coords(s), blocker_site), s))
                    .map(|s| self.geom.coords(s))
                    .ok_or_else(|| self.out_of_qubits(la.min(lb), Some(node)))?;
                planned.push(AtomMove {
                    atom: blocker,
                    from: blocker_site,
                    to: refuge,
                });
                break;
            }
        }
        if planned.is_empty() {
            return Err(CaqrError::internal("shift stage planned no moves"));
        }
        for m in &planned {
            self.site_atom[self.geom.site(m.from.0, m.from.1)] = None;
        }
        for m in &planned {
            self.site_atom[self.geom.site(m.to.0, m.to.1)] = Some(m.atom);
            self.atom_site[m.atom] = Some(m.to);
        }
        self.schedule.push(MoveStage::Shift { moves: planned });
        Ok(())
    }

    /// Eager placement for `preplace`: logical qubits by interaction
    /// degree, loaded outward from the grid center.
    fn preplace_all(&mut self) -> Result<(), CaqrError> {
        let mut order: Vec<usize> = (0..self.circuit.num_qubits()).collect();
        order.sort_by(|&a, &b| {
            self.interaction
                .degree(b)
                .cmp(&self.interaction.degree(a))
                .then(a.cmp(&b))
        });
        for l in order {
            let atom = self
                .pick_atom()
                .ok_or_else(|| self.out_of_qubits(l, None))?;
            self.assign(l, atom, None)?;
        }
        Ok(())
    }

    /// Seeded placement: honor the seed's logical-to-atom assignments
    /// where the atom is free, fall back to the heuristic elsewhere.
    fn preplace_seeded(&mut self, layout: &[Option<usize>]) -> Result<(), CaqrError> {
        for (l, &atom) in layout.iter().enumerate().take(self.circuit.num_qubits()) {
            if let Some(atom) = atom {
                if atom < self.device.num_qubits() && self.layout.is_free(atom) {
                    self.assign(l, atom, None)?;
                }
            }
        }
        for l in 0..self.circuit.num_qubits() {
            if self.layout.phys_of(l).is_none() {
                let atom = self
                    .pick_atom()
                    .ok_or_else(|| self.out_of_qubits(l, None))?;
                self.assign(l, atom, None)?;
            }
        }
        Ok(())
    }

    fn run(mut self, seed_layout: Option<&[Option<usize>]>) -> Result<RoutedProgram, CaqrError> {
        if self.opts.preplace {
            match seed_layout {
                Some(layout) => self.preplace_seeded(layout)?,
                None => self.preplace_all()?,
            }
        }
        let total = self.circuit.len();
        let mut done = 0usize;
        while done < total {
            let frontier: Vec<usize> = (0..total)
                .filter(|&v| !self.scheduled[v] && self.indeg[v] == 0)
                .collect();
            debug_assert!(!frontier.is_empty(), "acyclic DAG always has a frontier");

            // Pass A: pulse. Collect every frontier gate that can run
            // where its atoms sit; the layer's two-qubit pairs share one
            // global Rydberg stage (frontier gates are qubit-disjoint).
            let mut ready: Vec<usize> = Vec::new();
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for &node in &frontier {
                let instr = &self.circuit.instructions()[node];
                let atoms: Vec<Option<usize>> = instr
                    .qubits
                    .iter()
                    .map(|q| self.layout.phys_of(q.index()))
                    .collect();
                if atoms.iter().any(|a| a.is_none()) {
                    continue;
                }
                if instr.is_two_qubit() {
                    let (Some(a), Some(b)) = (atoms[0], atoms[1]) else {
                        continue;
                    };
                    let (sa, sb) = (self.site_of(a)?, self.site_of(b)?);
                    if self.geom.in_rydberg_range(sa, sb) {
                        ready.push(node);
                        pairs.push((a, b));
                    }
                } else {
                    ready.push(node);
                }
            }
            if !ready.is_empty() {
                if !pairs.is_empty() {
                    self.schedule.push(MoveStage::Rydberg { pairs });
                }
                for node in ready {
                    self.complete(node)?;
                    done += 1;
                }
                continue;
            }

            // Pass B: shift the mapped-but-distant frontier closer with
            // one batched AOD stage.
            let pending: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    let instr = &self.circuit.instructions()[v];
                    instr.is_two_qubit()
                        && instr
                            .qubits
                            .iter()
                            .all(|q| self.layout.phys_of(q.index()).is_some())
                })
                .collect();
            if !pending.is_empty() {
                self.shift_toward_frontier(&pending)?;
                continue;
            }

            // Pass C: map operands — critical-path gates first; delay the
            // rest unless nothing else can move (forced progress).
            let needs_mapping: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    self.circuit.instructions()[v]
                        .qubits
                        .iter()
                        .any(|q| self.layout.phys_of(q.index()).is_none())
                })
                .collect();
            debug_assert!(
                !needs_mapping.is_empty(),
                "otherwise pass A or B progressed"
            );
            let chosen = if self.opts.delay_off_critical {
                needs_mapping
                    .iter()
                    .copied()
                    .find(|&v| self.critical[v])
                    .unwrap_or(needs_mapping[0])
            } else {
                needs_mapping[0]
            };
            self.map_operands(chosen)?;
        }

        debug_assert!(
            self.schedule.verify(&self.geom).is_ok(),
            "scheduler emitted a physically invalid movement program: {:?}",
            self.schedule.verify(&self.geom)
        );
        let mut circuit = Circuit::new(self.device.num_qubits(), self.next_clbit);
        for instr in self.out {
            circuit.push(instr);
        }
        Ok(RoutedProgram {
            circuit,
            swap_count: 0,
            physical_qubits_used: self.layout.used_count(),
            initial_layout: self.layout.initial_layout().to_vec(),
            final_layout: self.final_layout,
            movement_stages: self.schedule.len(),
            schedule: Some(self.schedule),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, CostModelSpec};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn grid_device() -> Device {
        Device::dpqa_grid(4, 4, 3)
    }

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n, n);
        c.h(q(0));
        for i in 1..n {
            c.cx(q(i - 1), q(i));
        }
        c.measure_all();
        c
    }

    fn dpqa_opts(base: RouterOptions) -> RouterOptions {
        base.with_backend(RoutingBackendSpec::Dpqa)
    }

    #[test]
    fn dpqa_rejects_fixed_coupling_devices() -> TestResult {
        let dev = Device::mumbai(3);
        let Err(err) = route(&ghz(3), &dev, dpqa_opts(RouterOptions::baseline())) else {
            return Err("dpqa must reject a heavy-hex device".into());
        };
        assert!(
            matches!(
                err,
                CaqrError::BackendDeviceMismatch {
                    backend: "dpqa",
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("grid"), "{err}");
        Ok(())
    }

    #[test]
    fn dpqa_routes_ghz_with_verified_schedule() -> TestResult {
        let dev = grid_device();
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&ghz(5), &dev, dpqa_opts(base))?;
            assert_eq!(r.swap_count, 0, "movement backend never SWAPs");
            let schedule = r.schedule.as_ref().expect("dpqa output carries a schedule");
            schedule
                .verify(dev.dpqa_geometry().unwrap())
                .map_err(|e| format!("invalid schedule ({base:?}): {e}"))?;
            assert_eq!(r.movement_stages, schedule.len());
            assert!(schedule.rydberg_stages() >= 1, "CXs need Rydberg stages");
            assert!(r.is_valid_for(&dev));
            // Gate content is preserved: same multiset of gates as input
            // plus any reuse resets.
            let in_2q = ghz(5).iter().filter(|i| i.is_two_qubit()).count();
            let out_2q = r.circuit.iter().filter(|i| i.is_two_qubit()).count();
            assert_eq!(in_2q, out_2q, "{base:?}");
        }
        Ok(())
    }

    #[test]
    fn dpqa_semantics_preserved() -> TestResult {
        use caqr_sim::Executor;
        let dev = grid_device();
        let c = ghz(4);
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, dpqa_opts(base))?;
            let (compact, _) = r.circuit.compact_qubits();
            let counts = Executor::ideal().run_shots(&compact, 200, 7);
            for (v, n) in counts.iter() {
                assert!(v == 0 || v == 0b1111, "{base:?}: GHZ broken: {v:04b} x{n}");
            }
        }
        Ok(())
    }

    #[test]
    fn dpqa_reuse_prices_movement_and_saves_atoms() -> TestResult {
        // Two disjoint sequential Bell stages: SR reclaims atoms through
        // the measurement zone, so it uses fewer atoms and schedules
        // measure transits.
        let dev = Device::dpqa_grid(3, 3, 1);
        let mut c = Circuit::new(4, 4);
        for pair in [(0usize, 1usize), (2, 3)] {
            c.h(q(pair.0));
            c.cx(q(pair.0), q(pair.1));
            c.measure(q(pair.0), Clbit::new(pair.0));
            c.measure(q(pair.1), Clbit::new(pair.1));
        }
        let sr = route(&c, &dev, dpqa_opts(RouterOptions::sr()))?;
        let base = route(&c, &dev, dpqa_opts(RouterOptions::baseline()))?;
        assert!(sr.physical_qubits_used < base.physical_qubits_used);
        let transits = sr
            .schedule
            .as_ref()
            .unwrap()
            .stages()
            .iter()
            .filter(|s| matches!(s, MoveStage::MeasureTransit { .. }))
            .count();
        assert!(
            transits >= 1,
            "reclaim must route atoms through measurement"
        );
        Ok(())
    }

    #[test]
    fn dpqa_is_deterministic_and_calibration_blind() -> TestResult {
        let c = ghz(6);
        let a = route(
            &c,
            &Device::dpqa_grid(4, 4, 3),
            dpqa_opts(RouterOptions::sr()),
        )?;
        // Different calibration seed, same geometry: identical output.
        let b = route(
            &c,
            &Device::dpqa_grid(4, 4, 99),
            dpqa_opts(RouterOptions::sr()),
        )?;
        assert_eq!(a.circuit.fingerprint(), b.circuit.fingerprint());
        assert_eq!(a.schedule, b.schedule);
        // And the cost model is ignored entirely.
        let nw = route(
            &c,
            &Device::dpqa_grid(4, 4, 3),
            dpqa_opts(RouterOptions::sr()).with_cost_model(CostModelSpec::NoiseAware),
        )?;
        assert_eq!(a.circuit.fingerprint(), nw.circuit.fingerprint());
        assert_eq!(a.schedule, nw.schedule);
        Ok(())
    }

    #[test]
    fn dpqa_handles_dense_interaction_on_tight_grid() -> TestResult {
        // Every pair interacts: forces repeated shifts (and evictions on
        // a tight grid) — the termination stress case.
        let dev = Device::dpqa_grid(3, 3, 5);
        let n = 6;
        let mut c = Circuit::new(n, n);
        for i in 0..n {
            c.h(q(i));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                c.cx(q(i), q(j));
            }
        }
        c.measure_all();
        for base in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, dpqa_opts(base))?;
            let schedule = r.schedule.as_ref().unwrap();
            schedule
                .verify(dev.dpqa_geometry().unwrap())
                .map_err(|e| format!("{base:?}: {e}"))?;
            let in_2q = c.iter().filter(|i| i.is_two_qubit()).count();
            let out_2q = r.circuit.iter().filter(|i| i.is_two_qubit()).count();
            assert_eq!(in_2q, out_2q);
        }
        Ok(())
    }

    #[test]
    fn dpqa_oversized_circuit_errors() -> TestResult {
        let dev = Device::dpqa_grid(2, 2, 1);
        let mut c = Circuit::new(5, 0);
        for i in 0..5 {
            c.h(q(i));
        }
        for i in 0..4 {
            c.cx(q(i), q(i + 1));
        }
        let Err(err) = route(&c, &dev, dpqa_opts(RouterOptions::baseline())) else {
            return Err("5 qubits cannot fit 4 sites".into());
        };
        assert!(matches!(err, CaqrError::OutOfQubits { .. }), "{err:?}");
        Ok(())
    }

    #[test]
    fn dpqa_movement_dt_is_positive_and_stable() -> TestResult {
        let dev = grid_device();
        let r = route(&ghz(5), &dev, dpqa_opts(RouterOptions::sr()))?;
        let geom = dev.dpqa_geometry().unwrap();
        let dt = r.schedule.as_ref().unwrap().movement_dt(geom.times());
        assert!(dt > 0);
        let again = route(&ghz(5), &dev, dpqa_opts(RouterOptions::sr()))?;
        assert_eq!(
            again.schedule.as_ref().unwrap().movement_dt(geom.times()),
            dt
        );
        Ok(())
    }
}
