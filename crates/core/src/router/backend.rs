//! The pluggable routing-backend layer.
//!
//! PR 5 split SWAP routing into a fixed admission rule plus pluggable
//! [`CostModel`](crate::router::CostModel)s. This module generalizes one
//! level further: *how a circuit becomes hardware-compliant at all* is a
//! [`RoutingBackend`] —
//!
//! * [`SwapBackend`] — the historical fixed-coupling router: eager or
//!   on-demand placement plus SWAP insertion, byte-identical to the
//!   pre-trait output (pinned by the golden corpus).
//! * [`DpqaBackend`] — the neutral-atom movement scheduler: atoms are
//!   physically moved into Rydberg range by parallel AOD shifts instead
//!   of SWAPped, producing a [`caqr_arch::MovementSchedule`] alongside
//!   the routed circuit (see [`crate::router::dpqa`]).
//!
//! [`RoutingBackendSpec`] is the plain-data selector that rides CLI
//! flags, wire requests, and cache keys; [`RouterConfig`] bundles it with
//! the swap-scoring [`CostModelSpec`] so the whole routing policy travels
//! as one `Copy` value through `CompileCtx`, the pass manager, and the
//! engine. Every `_with` entry point takes `impl Into<RouterConfig>`, so
//! existing call sites that pass a bare `CostModelSpec` keep compiling
//! (the backend defaults to SWAP).

use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use crate::router::cost::CostModelSpec;
use crate::router::{RoutedProgram, RouterOptions};
use caqr_arch::Device;
use caqr_circuit::Circuit;
use std::fmt;

/// Human-readable grammar for [`RoutingBackendSpec::parse`].
pub const ROUTING_BACKEND_GRAMMAR: &str = "swap | dpqa";

/// Which routing backend compiles the circuit onto hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingBackendSpec {
    /// Fixed-coupling SWAP insertion (the historical router).
    #[default]
    Swap,
    /// DPQA movement scheduling: AOD atom moves instead of SWAPs.
    Dpqa,
}

impl RoutingBackendSpec {
    /// Every backend, in stable report order.
    pub const ALL: [RoutingBackendSpec; 2] = [RoutingBackendSpec::Swap, RoutingBackendSpec::Dpqa];

    /// Parses the `--routing-backend` / wire `routing_backend` grammar:
    /// `swap | dpqa`.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown backend name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "swap" => Ok(RoutingBackendSpec::Swap),
            "dpqa" => Ok(RoutingBackendSpec::Dpqa),
            _ => Err(format!(
                "unknown routing backend '{s}' (expected {ROUTING_BACKEND_GRAMMAR})"
            )),
        }
    }

    /// The stable backend name (also the cache-key domain tag, so SWAP
    /// and movement compilations of the same job never share a cache
    /// entry).
    pub fn name(self) -> &'static str {
        match self {
            RoutingBackendSpec::Swap => "swap",
            RoutingBackendSpec::Dpqa => "dpqa",
        }
    }

    /// The backend implementation (backends are stateless).
    pub fn build(self) -> &'static dyn RoutingBackend {
        match self {
            RoutingBackendSpec::Swap => &SwapBackend,
            RoutingBackendSpec::Dpqa => &DpqaBackend,
        }
    }
}

impl fmt::Display for RoutingBackendSpec {
    /// Round-trips through [`RoutingBackendSpec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The complete routing policy one compilation uses: which backend maps
/// the circuit, and how that backend's SWAP candidates are scored (the
/// cost model is ignored by backends that insert no SWAPs).
///
/// Plain `Copy` data so it can ride inside
/// [`CompileCtx`](crate::pass::CompileCtx), engine jobs, and cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouterConfig {
    /// The routing backend.
    pub backend: RoutingBackendSpec,
    /// The swap-scoring model (SWAP backend only).
    pub cost_model: CostModelSpec,
}

impl RouterConfig {
    /// The default config: SWAP backend, hop cost model.
    pub fn new() -> Self {
        RouterConfig::default()
    }

    /// The same config under a different backend.
    pub fn with_backend(mut self, backend: RoutingBackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// The same config under a different swap-scoring model.
    pub fn with_cost_model(mut self, cost_model: CostModelSpec) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// A stable cache-key component covering the backend domain and every
    /// cost-model parameter bit-exactly. Two configs that could route
    /// differently never share a tag.
    pub fn cache_tag(&self) -> String {
        format!("{}/{}", self.backend.name(), self.cost_model.cache_tag())
    }
}

impl From<CostModelSpec> for RouterConfig {
    /// A bare cost model means the SWAP backend — exactly the pre-trait
    /// behaviour, so old call sites keep their output.
    fn from(cost_model: CostModelSpec) -> Self {
        RouterConfig {
            backend: RoutingBackendSpec::Swap,
            cost_model,
        }
    }
}

impl From<RoutingBackendSpec> for RouterConfig {
    fn from(backend: RoutingBackendSpec) -> Self {
        RouterConfig {
            backend,
            cost_model: CostModelSpec::Hop,
        }
    }
}

/// One way of making a circuit hardware-compliant. Implementations must
/// be deterministic: the same inputs always produce the same
/// [`RoutedProgram`].
pub trait RoutingBackend {
    /// The spec this backend answers to.
    fn spec(&self) -> RoutingBackendSpec;

    /// Routes `circuit` onto `device` under `opts`, optionally seeded
    /// with an explicit initial layout, sharing `analyses` across calls
    /// on the same circuit.
    ///
    /// # Errors
    ///
    /// [`CaqrError::OutOfQubits`] when the circuit cannot fit, or
    /// [`CaqrError::BackendDeviceMismatch`] when the device lacks what the
    /// backend needs (e.g. DPQA grid geometry).
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        opts: RouterOptions,
        seed_layout: Option<&[Option<usize>]>,
        analyses: &mut AnalysisCache,
    ) -> Result<RoutedProgram, CaqrError>;
}

/// The fixed-coupling SWAP-insertion backend; see the
/// [`crate::router`] module docs. Its `route` lives next to the frontier
/// walk in `router/mod.rs`.
pub struct SwapBackend;

/// The DPQA greedy movement-scheduling backend; see
/// [`crate::router::dpqa`].
pub struct DpqaBackend;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        for s in ["swap", "dpqa"] {
            let spec = RoutingBackendSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
        }
        assert!(RoutingBackendSpec::parse("teleport").is_err());
        assert!(RoutingBackendSpec::parse("").is_err());
    }

    #[test]
    fn default_config_is_historic_behaviour() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.backend, RoutingBackendSpec::Swap);
        assert_eq!(cfg.cost_model, CostModelSpec::Hop);
        let from_cost: RouterConfig = CostModelSpec::NoiseAware.into();
        assert_eq!(from_cost.backend, RoutingBackendSpec::Swap);
    }

    #[test]
    fn cache_tags_separate_backend_domains() {
        let swap: RouterConfig = CostModelSpec::Hop.into();
        let dpqa = swap.with_backend(RoutingBackendSpec::Dpqa);
        assert_ne!(swap.cache_tag(), dpqa.cache_tag());
        assert!(swap.cache_tag().starts_with("swap/"));
        assert!(dpqa.cache_tag().starts_with("dpqa/"));
    }

    #[test]
    fn specs_build_their_backends() {
        for spec in RoutingBackendSpec::ALL {
            assert_eq!(spec.build().spec(), spec);
        }
    }
}
