//! The shared layout-and-routing engine.
//!
//! Both SR-CaQR (§3.3) and the Qiskit-O3 stand-in baseline compile a
//! logical circuit onto a device by walking the dependence DAG layer by
//! layer, mapping logical qubits to physical ones and inserting SWAPs when
//! a two-qubit gate spans non-adjacent qubits. They differ only in policy,
//! captured by [`RouterOptions`]:
//!
//! * `delay_off_critical` — SR-CaQR delays frontier gates off the critical
//!   path so their qubits map later, onto better (or reclaimed) physical
//!   qubits (§3.3.1 Step 2).
//! * `reclaim` — SR-CaQR returns a physical qubit to the free list once its
//!   logical qubit retires, inserting the measure + conditional-reset
//!   sequence when the wire is handed to a new logical qubit (Step 4).
//! * `preplace` — the baseline maps every logical qubit up front
//!   (interaction-degree placement); SR-CaQR maps on demand.
//! * `cost_model` — how admitted SWAP candidates are ranked
//!   ([`CostModelSpec`]): plain hop distance (the pinned default), a
//!   SABRE-style lookahead over upcoming gates, or calibration-weighted
//!   noise-aware edge costs.
//!
//! The module splits by concern: [`backend`] defines the pluggable
//! [`RoutingBackend`] layer (SWAP insertion vs. [`dpqa`]'s movement
//! scheduling), [`cost`] the pluggable scoring models, `swap` the
//! admission/ranking/fallback search, `policy` the free-qubit placement
//! heuristic, and this file the frontier walk that ties them to a
//! [`caqr_arch::Layout`] — the typed logical↔physical map whose
//! invariants are re-checked after every mutation in debug builds.
//!
//! Physical-qubit choices and SWAP insertion are error-variability aware:
//! ties break toward smaller readout error and more reliable CNOT links,
//! per the paper's Step 2/3 heuristics.
//!
//! The DAG, interaction graph, and critical-path marks the router consumes
//! come from an [`AnalysisCache`]: callers that route the same circuit
//! more than once (SR's policy comparison, the bidirectional refinement)
//! pass a shared cache via [`route_cached`] so the analyses are built once.

pub mod backend;
pub mod cost;
pub mod dpqa;
mod policy;
mod swap;

pub use backend::{
    DpqaBackend, RouterConfig, RoutingBackend, RoutingBackendSpec, SwapBackend,
    ROUTING_BACKEND_GRAMMAR,
};
pub use cost::{CostModel, CostModelSpec, SwapScoreCtx, COST_MODEL_GRAMMAR};

use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use caqr_arch::{Device, Layout, MovementSchedule, WireState};
use caqr_circuit::{Circuit, CircuitDag, Clbit, Gate, Instruction, Qubit};
use caqr_graph::Graph;
use std::collections::VecDeque;
use std::rc::Rc;

/// Routing policy knobs; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct RouterOptions {
    /// Delay mapping for frontier gates off the critical path.
    pub delay_off_critical: bool,
    /// Reclaim physical qubits whose logical qubit has retired.
    pub reclaim: bool,
    /// Map every logical qubit before routing (baseline behaviour).
    pub preplace: bool,
    /// How admitted SWAP candidates are ranked; see [`CostModelSpec`].
    /// Ignored by backends that insert no SWAPs.
    pub cost_model: CostModelSpec,
    /// Which [`RoutingBackend`] maps the circuit; see
    /// [`RoutingBackendSpec`].
    pub backend: RoutingBackendSpec,
}

impl RouterOptions {
    /// SR-CaQR policy: delay + reclaim, on-demand mapping.
    pub fn sr() -> Self {
        RouterOptions {
            delay_off_critical: true,
            reclaim: true,
            preplace: false,
            cost_model: CostModelSpec::Hop,
            backend: RoutingBackendSpec::Swap,
        }
    }

    /// Baseline (no-reuse) policy: eager placement, no reclamation.
    pub fn baseline() -> Self {
        RouterOptions {
            delay_off_critical: false,
            reclaim: false,
            preplace: true,
            cost_model: CostModelSpec::Hop,
            backend: RoutingBackendSpec::Swap,
        }
    }

    /// The same policy under a different swap-scoring model.
    pub fn with_cost_model(mut self, cost_model: CostModelSpec) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The same policy under a different routing backend.
    pub fn with_backend(mut self, backend: RoutingBackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// The same policy under a complete [`RouterConfig`] (backend + cost
    /// model together).
    pub fn with_router(self, config: impl Into<RouterConfig>) -> Self {
        let config = config.into();
        self.with_cost_model(config.cost_model)
            .with_backend(config.backend)
    }
}

/// A hardware-compliant compiled program: the routed circuit plus the
/// backend-specific artifacts describing *how* the hardware executes it
/// (SWAP counts for fixed coupling, a [`MovementSchedule`] for DPQA).
#[derive(Debug, Clone)]
pub struct RoutedProgram {
    /// The physical circuit. SWAP backend: wires are device qubits. DPQA
    /// backend: wires are atom ids (stable across moves — the schedule
    /// carries the site trajectories).
    pub circuit: Circuit,
    /// SWAPs inserted (always 0 for the movement backend).
    pub swap_count: usize,
    /// Distinct physical qubits (or atoms) touched — the paper's "qubit
    /// usage" for compiled circuits.
    pub physical_qubits_used: usize,
    /// First physical qubit assigned to each logical qubit.
    pub initial_layout: Vec<Option<usize>>,
    /// Physical qubit holding each logical qubit after its last gate.
    pub final_layout: Vec<Option<usize>>,
    /// Movement stages scheduled (always 0 for the SWAP backend) — the
    /// DPQA analogue of `swap_count` in version-selection ranking.
    pub movement_stages: usize,
    /// The DPQA movement program, `None` for the SWAP backend.
    pub schedule: Option<MovementSchedule>,
}

/// The historical name for [`RoutedProgram`], kept so downstream code and
/// docs that predate the backend split keep compiling.
pub type RoutedCircuit = RoutedProgram;

impl RoutedProgram {
    /// Checks fixed-coupling hardware compliance: every two-qubit gate on
    /// a coupling edge. Only meaningful for SWAP-backend output — DPQA
    /// wires are atom ids, and validity there is
    /// [`MovementSchedule::verify`] on [`RoutedProgram::schedule`].
    pub fn is_hardware_compliant(&self, device: &Device) -> bool {
        self.circuit.iter().all(|i| {
            !i.is_two_qubit()
                || device
                    .topology()
                    .are_coupled(i.qubits[0].index(), i.qubits[1].index())
        })
    }

    /// Backend-aware validity: SWAP output must be coupling-compliant,
    /// movement output must carry a schedule that replays cleanly against
    /// the device's grid geometry.
    pub fn is_valid_for(&self, device: &Device) -> bool {
        match (&self.schedule, device.dpqa_geometry()) {
            (Some(schedule), Some(geom)) => schedule.verify(geom).is_ok(),
            (Some(_), None) => false,
            (None, _) => self.is_hardware_compliant(device),
        }
    }
}

struct Router<'a> {
    device: &'a Device,
    opts: RouterOptions,
    cost: Box<dyn CostModel>,
    circuit: &'a Circuit,
    interaction: Rc<Graph>,
    // DAG state.
    dag: Rc<CircuitDag>,
    indeg: Vec<usize>,
    scheduled: Vec<bool>,
    critical: Rc<Vec<bool>>,
    // Mapping state: the typed logical<->physical map with free-list and
    // dirty/reset tracking (invariant-checked in debug builds).
    layout: Layout,
    remaining: Vec<usize>,
    final_layout: Vec<Option<usize>>,
    // Output.
    out: Vec<Instruction>,
    next_clbit: usize,
    swap_count: usize,
}

impl<'a> Router<'a> {
    fn new(
        circuit: &'a Circuit,
        device: &'a Device,
        opts: RouterOptions,
        analyses: &mut AnalysisCache,
    ) -> Self {
        let dag = analyses.dag(circuit);
        let critical = analyses.critical_path(circuit, device);
        let interaction = analyses.interaction(circuit);
        let indeg = (0..circuit.len())
            .map(|v| dag.graph().in_degree(v))
            .collect();
        let mut remaining = vec![0usize; circuit.num_qubits()];
        for instr in circuit {
            for q in &instr.qubits {
                remaining[q.index()] += 1;
            }
        }
        Router {
            device,
            opts,
            cost: opts.cost_model.build(device),
            circuit,
            interaction,
            dag,
            indeg,
            scheduled: vec![false; circuit.len()],
            critical,
            layout: Layout::new(circuit.num_qubits(), device.num_qubits()),
            remaining,
            final_layout: vec![None; circuit.num_qubits()],
            out: Vec::new(),
            next_clbit: circuit.num_clbits(),
            swap_count: 0,
        }
    }

    /// Assigns logical `l` to physical `p`, inserting the reuse reset when
    /// the wire is dirty.
    fn assign(&mut self, l: usize, p: usize) {
        if let WireState::Dirty { measured } = self.layout.assign(l, p) {
            let clbit = match measured {
                Some(c) => Clbit::new(c),
                None => {
                    let c = Clbit::new(self.next_clbit);
                    self.next_clbit += 1;
                    self.out.push(Instruction {
                        gate: Gate::Measure,
                        qubits: vec![Qubit::new(p)],
                        clbit: Some(c),
                        condition: None,
                    });
                    c
                }
            };
            self.out.push(Instruction {
                gate: Gate::X,
                qubits: vec![Qubit::new(p)],
                clbit: None,
                condition: Some(clbit),
            });
        }
    }

    /// Maps any unmapped operands of `node` per the paper's Step 2 rules.
    fn map_operands(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let unmapped: Vec<usize> = instr
            .qubits
            .iter()
            .map(|q| q.index())
            .filter(|&l| self.layout.phys_of(l).is_none())
            .collect();
        match (unmapped.len(), instr.qubits.len()) {
            (0, _) => Ok(()),
            (1, 1) => {
                let l = unmapped[0];
                let p = self
                    .pick_for(l, None)
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, p);
                Ok(())
            }
            (1, 2) => {
                let l = unmapped[0];
                let partner = instr
                    .qubits
                    .iter()
                    .map(|q| q.index())
                    .find(|&x| x != l)
                    .ok_or_else(|| CaqrError::internal("two-qubit gate has no second operand"))?;
                let anchor = self
                    .layout
                    .phys_of(partner)
                    .ok_or_else(|| CaqrError::internal("gate partner is unmapped"))?;
                let p = self
                    .pick_for(l, Some(anchor))
                    .ok_or_else(|| self.out_of_qubits(l, Some(node)))?;
                self.assign(l, p);
                Ok(())
            }
            (2, 2) => {
                // Map the busier qubit first, to a well-connected spot.
                let (a, b) = (unmapped[0], unmapped[1]);
                let (first, second) = if self.remaining[a] >= self.remaining[b] {
                    (a, b)
                } else {
                    (b, a)
                };
                let p1 = self
                    .pick_for(first, None)
                    .ok_or_else(|| self.out_of_qubits(first, Some(node)))?;
                self.assign(first, p1);
                let p2 = self
                    .pick_for(second, Some(p1))
                    .ok_or_else(|| self.out_of_qubits(second, Some(node)))?;
                self.assign(second, p2);
                Ok(())
            }
            _ => Err(CaqrError::internal(format!(
                "gate with {} operands (1 or 2 expected)",
                instr.qubits.len()
            ))),
        }
    }

    /// See [`policy::pick_free_qubit`].
    fn pick_for(&self, l: usize, anchor: Option<usize>) -> Option<usize> {
        policy::pick_free_qubit(self.device, &self.layout, &self.interaction, l, anchor)
    }

    /// The out-of-capacity error, pinpointing the logical qubit whose
    /// placement failed and (when routing, not preplacing) the
    /// instruction that needed it.
    fn out_of_qubits(&self, qubit: usize, gate_index: Option<usize>) -> CaqrError {
        CaqrError::OutOfQubits {
            logical: self.circuit.num_qubits(),
            physical: self.device.num_qubits(),
            qubit: Some(qubit),
            gate_index,
        }
    }

    /// Emits `node` remapped to physical wires and updates DAG/mapping
    /// state.
    fn complete(&mut self, node: usize) -> Result<(), CaqrError> {
        let instr = &self.circuit.instructions()[node];
        let mut ni = instr.clone();
        let mut qubits = Vec::with_capacity(instr.qubits.len());
        for q in &instr.qubits {
            let p = self
                .layout
                .phys_of(q.index())
                .ok_or_else(|| CaqrError::internal("emitting a gate with an unmapped operand"))?;
            qubits.push(Qubit::new(p));
        }
        ni.qubits = qubits;
        self.out.push(ni);
        self.scheduled[node] = true;
        let dag = Rc::clone(&self.dag);
        for s in dag.graph().successors(node) {
            self.indeg[s] -= 1;
        }
        for q in &instr.qubits {
            let l = q.index();
            self.remaining[l] -= 1;
            if self.remaining[l] == 0 {
                let p = self
                    .layout
                    .phys_of(l)
                    .ok_or_else(|| CaqrError::internal("retiring an unmapped logical qubit"))?;
                self.final_layout[l] = Some(p);
                if self.opts.reclaim {
                    let measured = if instr.gate == Gate::Measure && instr.qubits[0].index() == l {
                        let clbit = instr.clbit.ok_or_else(|| {
                            CaqrError::internal("measure instruction has no clbit")
                        })?;
                        Some(clbit.index())
                    } else {
                        None
                    };
                    self.layout.release(l, measured);
                }
            }
        }
        Ok(())
    }

    /// Physical endpoints of upcoming two-qubit gates — DAG successors of
    /// the pending frontier in breadth-first order, both operands mapped,
    /// at most `window` of them. This is SABRE's *extended set*, consumed
    /// by [`CostModel::score`] via [`SwapScoreCtx::lookahead`].
    fn lookahead_pairs(&self, pending: &[usize], window: usize) -> Vec<(usize, usize)> {
        let mut seen = vec![false; self.circuit.len()];
        let mut queue = VecDeque::new();
        for &node in pending {
            for s in self.dag.graph().successors(node) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        let mut pairs = Vec::new();
        while let Some(v) = queue.pop_front() {
            if pairs.len() >= window {
                break;
            }
            let instr = &self.circuit.instructions()[v];
            if !self.scheduled[v] && instr.is_two_qubit() {
                if let (Some(a), Some(b)) = (
                    self.layout.phys_of(instr.qubits[0].index()),
                    self.layout.phys_of(instr.qubits[1].index()),
                ) {
                    pairs.push((a, b));
                }
            }
            for s in self.dag.graph().successors(v) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        pairs
    }

    /// Chooses and applies the best single SWAP for the set of
    /// routing-pending two-qubit gates (all operands mapped, none
    /// adjacent); see [`swap::select_swap`] for admission, ranking, and
    /// the guaranteed-progress fallback.
    fn insert_swap_for_frontier(&mut self, pending: &[usize]) -> Result<(), CaqrError> {
        let mut gate_phys: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        for &node in pending {
            let instr = &self.circuit.instructions()[node];
            let a = self
                .layout
                .phys_of(instr.qubits[0].index())
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            let b = self
                .layout
                .phys_of(instr.qubits[1].index())
                .ok_or_else(|| CaqrError::internal("pending gate has an unmapped operand"))?;
            gate_phys.push((a, b));
        }
        let window = self.cost.lookahead_window();
        let lookahead = if window > 0 {
            self.lookahead_pairs(pending, window)
        } else {
            Vec::new()
        };
        let layout = &self.layout;
        let (from, to) = swap::select_swap(
            self.device,
            self.cost.as_ref(),
            &gate_phys,
            &lookahead,
            &|p| layout.was_used(p),
        )?;
        self.out.push(Instruction::gate(
            Gate::Swap,
            vec![Qubit::new(from), Qubit::new(to)],
        ));
        self.swap_count += 1;
        // Whatever sits on `from` and `to` trades places; the layout moves
        // occupants, wire states, and free-list membership together.
        self.layout.swap_phys(from, to);
        Ok(())
    }

    /// Places logical qubits per an explicit seed layout (used by the
    /// bidirectional layout refinement).
    fn preplace_seeded(&mut self, layout: &[Option<usize>]) -> Result<(), CaqrError> {
        for (l, &p) in layout.iter().enumerate().take(self.circuit.num_qubits()) {
            if let Some(p) = p {
                if self.layout.is_free(p) {
                    self.assign(l, p);
                }
            }
        }
        // Any logical qubit the seed missed falls back to the heuristic.
        for l in 0..self.circuit.num_qubits() {
            if self.layout.phys_of(l).is_none() {
                let p = self
                    .pick_for(l, None)
                    .ok_or_else(|| self.out_of_qubits(l, None))?;
                self.assign(l, p);
            }
        }
        Ok(())
    }

    /// The baseline's eager placement: logical qubits by interaction
    /// degree, each placed to minimize distance to already-placed partners.
    fn preplace_all(&mut self) -> Result<(), CaqrError> {
        let mut order: Vec<usize> = (0..self.circuit.num_qubits()).collect();
        order.sort_by(|&a, &b| {
            self.interaction
                .degree(b)
                .cmp(&self.interaction.degree(a))
                .then(a.cmp(&b))
        });
        for l in order {
            let p = self
                .pick_for(l, None)
                .ok_or_else(|| self.out_of_qubits(l, None))?;
            self.assign(l, p);
        }
        Ok(())
    }

    fn run(mut self, seed_layout: Option<&[Option<usize>]>) -> Result<RoutedCircuit, CaqrError> {
        if self.opts.preplace {
            match seed_layout {
                Some(layout) => self.preplace_seeded(layout)?,
                None => self.preplace_all()?,
            }
        }
        let total = self.circuit.len();
        let mut done = 0usize;
        while done < total {
            let frontier: Vec<usize> = (0..total)
                .filter(|&v| !self.scheduled[v] && self.indeg[v] == 0)
                .collect();
            debug_assert!(!frontier.is_empty(), "acyclic DAG always has a frontier");

            // Pass A: emit every frontier gate that is ready as-is.
            let mut progressed = false;
            for &node in &frontier {
                let instr = &self.circuit.instructions()[node];
                let phys: Vec<Option<usize>> = instr
                    .qubits
                    .iter()
                    .map(|q| self.layout.phys_of(q.index()))
                    .collect();
                if phys.iter().any(|p| p.is_none()) {
                    continue;
                }
                let ready = !instr.is_two_qubit()
                    || match (phys[0], phys[1]) {
                        (Some(a), Some(b)) => self.device.topology().are_coupled(a, b),
                        _ => false,
                    };
                if ready {
                    self.complete(node)?;
                    done += 1;
                    progressed = true;
                }
            }
            if progressed {
                continue;
            }

            // Pass B: route the mapped-but-distant frontier a step closer
            // with one frontier-scored SWAP.
            let pending: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    let instr = &self.circuit.instructions()[v];
                    instr.is_two_qubit()
                        && instr
                            .qubits
                            .iter()
                            .all(|q| self.layout.phys_of(q.index()).is_some())
                })
                .collect();
            if !pending.is_empty() {
                self.insert_swap_for_frontier(&pending)?;
                continue;
            }

            // Pass C: map operands — critical-path gates first; delay the
            // rest unless nothing else can move (forced progress).
            let needs_mapping: Vec<usize> = frontier
                .iter()
                .copied()
                .filter(|&v| {
                    self.circuit.instructions()[v]
                        .qubits
                        .iter()
                        .any(|q| self.layout.phys_of(q.index()).is_none())
                })
                .collect();
            debug_assert!(
                !needs_mapping.is_empty(),
                "otherwise pass A or B progressed"
            );
            let chosen = if self.opts.delay_off_critical {
                needs_mapping
                    .iter()
                    .copied()
                    .find(|&v| self.critical[v])
                    .unwrap_or(needs_mapping[0])
            } else {
                needs_mapping[0]
            };
            self.map_operands(chosen)?;
        }

        let mut circuit = Circuit::new(self.device.num_qubits(), self.next_clbit);
        for instr in self.out {
            circuit.push(instr);
        }
        Ok(RoutedProgram {
            circuit,
            swap_count: self.swap_count,
            physical_qubits_used: self.layout.used_count(),
            initial_layout: self.layout.initial_layout().to_vec(),
            final_layout: self.final_layout,
            movement_stages: 0,
            schedule: None,
        })
    }
}

impl RoutingBackend for SwapBackend {
    fn spec(&self) -> RoutingBackendSpec {
        RoutingBackendSpec::Swap
    }

    /// The pre-trait router, verbatim: up-front width check under eager
    /// placement, then the frontier walk. Byte-identical to the
    /// historical output (pinned by the golden corpus).
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        opts: RouterOptions,
        seed_layout: Option<&[Option<usize>]>,
        analyses: &mut AnalysisCache,
    ) -> Result<RoutedProgram, CaqrError> {
        if opts.preplace && circuit.num_qubits() > device.num_qubits() {
            return Err(CaqrError::OutOfQubits {
                logical: circuit.num_qubits(),
                physical: device.num_qubits(),
                qubit: None,
                gate_index: None,
            });
        }
        Router::new(circuit, device, opts, analyses).run(seed_layout)
    }
}

/// Routes `circuit` onto `device` under the given policy.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the live logical qubits cannot
/// fit on the device.
pub fn route(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
) -> Result<RoutedCircuit, CaqrError> {
    route_seeded(circuit, device, opts, None)
}

/// Routes with an explicit initial layout (`layout[l]` = physical qubit
/// for logical `l`; `None` entries fall back to the heuristic). Used by
/// the bidirectional (SABRE-style) layout refinement in
/// [`crate::baseline`].
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit.
pub fn route_seeded(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
    layout: Option<&[Option<usize>]>,
) -> Result<RoutedCircuit, CaqrError> {
    let mut analyses = AnalysisCache::new();
    route_cached(circuit, device, opts, layout, &mut analyses)
}

/// [`route_seeded`] against a shared [`AnalysisCache`] describing
/// `circuit`: the DAG, interaction graph, and critical-path marks are
/// taken from (or built into) the cache instead of recomputed, so routing
/// the same circuit under several policies pays for its analyses once.
///
/// The cache must describe `circuit` — pass a fresh cache (or one
/// invalidated since the last mutation) or the routing result is
/// undefined.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit.
pub fn route_cached(
    circuit: &Circuit,
    device: &Device,
    opts: RouterOptions,
    layout: Option<&[Option<usize>]>,
    analyses: &mut AnalysisCache,
) -> Result<RoutedCircuit, CaqrError> {
    opts.backend
        .build()
        .route(circuit, device, opts, layout, analyses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Topology;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv5() -> Circuit {
        let mut c = Circuit::new(5, 4);
        for i in 0..4 {
            c.h(q(i));
        }
        c.x(q(4));
        c.h(q(4));
        for i in 0..4 {
            c.cx(q(i), q(4));
            c.h(q(i));
        }
        for i in 0..4 {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    fn device5() -> Device {
        Device::with_synthetic_calibration(Topology::five_qubit_t(), 3)
    }

    #[test]
    fn baseline_routes_bv5_compliantly() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::baseline())?;
        assert!(r.is_hardware_compliant(&device5()));
        // Star of degree 4 cannot embed in a degree-3 device: SWAPs needed
        // (the paper's Fig. 5 argument).
        assert!(r.swap_count >= 1, "expected SWAPs, got {}", r.swap_count);
        assert_eq!(r.physical_qubits_used, 5);
        Ok(())
    }

    #[test]
    fn sr_uses_fewer_qubits_on_bv() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::sr())?;
        assert!(r.is_hardware_compliant(&device5()));
        // Reclaiming lets data qubits share wires.
        assert!(
            r.physical_qubits_used < 5,
            "SR should reuse wires, used {}",
            r.physical_qubits_used
        );
        Ok(())
    }

    #[test]
    fn sr_semantics_preserved() -> TestResult {
        use caqr_sim::Executor;
        let c = bv5();
        let dev = device5();
        for opts in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, opts)?;
            let counts = Executor::ideal().run_shots(&r.circuit, 80, 2);
            assert_eq!(
                counts.get(0b1111),
                80,
                "opts {opts:?} corrupted the circuit: {counts}"
            );
        }
        Ok(())
    }

    #[test]
    fn routed_gates_all_coupled_on_mumbai() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(5);
        let mut c = Circuit::new(8, 8);
        // A ring of CXs — needs routing on heavy-hex.
        for i in 0..8 {
            c.h(q(i));
        }
        for i in 0..8 {
            c.cx(q(i), q((i + 3) % 8));
        }
        c.measure_all();
        for opts in [RouterOptions::baseline(), RouterOptions::sr()] {
            let r = route(&c, &dev, opts)?;
            assert!(r.is_hardware_compliant(&dev), "{opts:?}");
            // Still runs (no structural corruption).
            let (compact, _) = r.circuit.compact_qubits();
            let counts = Executor::ideal().run_shots(&compact, 10, 3);
            assert_eq!(counts.total(), 10);
        }
        Ok(())
    }

    #[test]
    fn every_cost_model_routes_compliantly() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(5);
        let mut c = Circuit::new(8, 8);
        for i in 0..8 {
            c.h(q(i));
        }
        for i in 0..8 {
            c.cx(q(i), q((i + 3) % 8));
        }
        c.measure_all();
        for spec in [
            CostModelSpec::Hop,
            CostModelSpec::lookahead(),
            CostModelSpec::NoiseAware,
        ] {
            for base in [RouterOptions::baseline(), RouterOptions::sr()] {
                let opts = base.with_cost_model(spec);
                let r = route(&c, &dev, opts)?;
                assert!(r.is_hardware_compliant(&dev), "{spec} {base:?}");
                let (compact, _) = r.circuit.compact_qubits();
                let counts = Executor::ideal().run_shots(&compact, 10, 3);
                assert_eq!(counts.total(), 10, "{spec}");
            }
        }
        Ok(())
    }

    #[test]
    fn hop_is_default_cost_model() {
        assert_eq!(RouterOptions::sr().cost_model, CostModelSpec::Hop);
        assert_eq!(RouterOptions::baseline().cost_model, CostModelSpec::Hop);
        assert_eq!(CostModelSpec::default(), CostModelSpec::Hop);
    }

    #[test]
    fn reclaimed_wire_gets_reset() -> TestResult {
        // Two disjoint sequential stages that can share wires under SR.
        let dev = Device::with_synthetic_calibration(Topology::line(3), 1);
        let mut c = Circuit::new(4, 4);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.measure(q(0), Clbit::new(0));
        c.measure(q(1), Clbit::new(1));
        c.h(q(2));
        c.cx(q(2), q(3));
        c.measure(q(2), Clbit::new(2));
        c.measure(q(3), Clbit::new(3));
        let r = route(&c, &dev, RouterOptions::sr())?;
        assert!(r.physical_qubits_used <= 3);
        // Conditional resets appear where wires were handed over.
        let resets = r.circuit.iter().filter(|i| i.condition.is_some()).count();
        assert!(resets >= 1, "expected reuse resets");
        // And the result still samples a valid Bell-pair pattern on both
        // stages (00/11 on clbits {0,1} and {2,3}).
        use caqr_sim::Executor;
        let counts = Executor::ideal().run_shots(&r.circuit, 400, 7);
        for (v, n) in counts.iter() {
            let first = v & 0b11;
            let second = v >> 2 & 0b11;
            assert!(first == 0 || first == 3, "{v:04b} x{n}");
            assert!(second == 0 || second == 3, "{v:04b} x{n}");
        }
        Ok(())
    }

    #[test]
    fn baseline_rejects_oversized_circuit() -> TestResult {
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.h(q(1));
        c.h(q(2));
        let Err(err) = route(&c, &dev, RouterOptions::baseline()) else {
            return Err("oversized circuit must not route".into());
        };
        assert!(matches!(err, CaqrError::OutOfQubits { .. }));
        assert!(format!("{err}").contains("cannot place"));
        Ok(())
    }

    #[test]
    fn on_demand_placement_failure_names_qubit_and_gate() -> TestResult {
        // SR (no preplace, no up-front width check) runs out of physical
        // qubits mid-routing: the error must say which logical qubit and
        // which instruction hit the wall.
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(3, 0);
        // All three logical qubits concurrently live.
        c.cx(q(0), q(1));
        c.cx(q(1), q(2));
        c.cx(q(0), q(2));
        let Err(err) = route(&c, &dev, RouterOptions::sr()) else {
            return Err("3 live qubits cannot fit on 2".into());
        };
        assert!(matches!(err, CaqrError::OutOfQubits { .. }), "{err:?}");
        assert!(err.qubit().is_some(), "error must name the logical qubit");
        assert!(err.gate_index().is_some(), "error must name the gate index");
        Ok(())
    }

    #[test]
    fn sr_fits_oversized_circuit_with_disjoint_lifetimes() -> TestResult {
        // 4 logical qubits, 2 physical — but lifetimes are sequential, so
        // reclamation makes it fit. This is the paper's capacity argument.
        let dev = Device::with_synthetic_calibration(Topology::line(2), 1);
        let mut c = Circuit::new(4, 4);
        for pair in [(0usize, 1usize), (2, 3)] {
            c.h(q(pair.0));
            c.cx(q(pair.0), q(pair.1));
            c.measure(q(pair.0), Clbit::new(pair.0));
            c.measure(q(pair.1), Clbit::new(pair.1));
        }
        let r = route(&c, &dev, RouterOptions::sr())?;
        assert_eq!(r.physical_qubits_used, 2);
        assert!(r.is_hardware_compliant(&dev));
        Ok(())
    }

    #[test]
    fn layouts_recorded() -> TestResult {
        let c = bv5();
        let r = route(&c, &device5(), RouterOptions::baseline())?;
        for l in 0..5 {
            assert!(r.initial_layout[l].is_some());
            assert!(r.final_layout[l].is_some());
        }
        // Initial layout is injective.
        let mut seen = std::collections::BTreeSet::new();
        for p in r.initial_layout.iter().flatten() {
            assert!(seen.insert(p));
        }
        Ok(())
    }

    #[test]
    fn already_compliant_circuit_needs_no_swaps() -> TestResult {
        let dev = Device::with_synthetic_calibration(Topology::line(3), 1);
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        let r = route(&c, &dev, RouterOptions::baseline())?;
        assert_eq!(r.swap_count, 0);
        Ok(())
    }

    #[test]
    fn cached_route_matches_fresh_route() -> TestResult {
        let c = bv5();
        let dev = device5();
        let fresh = route(&c, &dev, RouterOptions::sr())?;
        let mut cache = AnalysisCache::new();
        // Route twice through the same cache: both must match the fresh
        // result exactly (the cache only saves rebuilds, never changes
        // results).
        for _ in 0..2 {
            let cached = route_cached(&c, &dev, RouterOptions::sr(), None, &mut cache)?;
            assert_eq!(
                cached.circuit.fingerprint(),
                fresh.circuit.fingerprint(),
                "cached analyses must not change routing output"
            );
            assert_eq!(cached.swap_count, fresh.swap_count);
        }
        assert!(cache.cached_count() > 0, "route_cached must fill the cache");
        Ok(())
    }

    #[test]
    fn route_is_deterministic_per_cost_model() -> TestResult {
        let dev = Device::mumbai(11);
        let mut c = Circuit::new(6, 6);
        for i in 0..6 {
            c.h(q(i));
        }
        for i in 0..6 {
            c.cx(q(i), q((i + 2) % 6));
        }
        c.measure_all();
        for spec in [
            CostModelSpec::Hop,
            CostModelSpec::lookahead(),
            CostModelSpec::NoiseAware,
        ] {
            let opts = RouterOptions::sr().with_cost_model(spec);
            let a = route(&c, &dev, opts)?;
            let b = route(&c, &dev, opts)?;
            assert_eq!(
                a.circuit.fingerprint(),
                b.circuit.fingerprint(),
                "{spec} must be deterministic"
            );
        }
        Ok(())
    }
}
