//! Pluggable swap-scoring cost models.
//!
//! The router's swap *admission* rule is fixed: a candidate SWAP is only
//! considered when it strictly reduces the summed hop distance of the
//! routing-pending frontier (`after < before`), which is what guarantees
//! termination. Cost models only *rank* the admitted candidates — a model
//! returns an `f64` score per candidate and the router picks the minimum
//! (ties break identically for every model: prefer already-used qubits,
//! then the more reliable link, then the smaller `(from, to)` pair).
//!
//! Three models ship:
//!
//! * [`CostModelSpec::Hop`] — score = frontier hop distance after the
//!   swap. Exactly the historical behaviour: `u32 → f64` is order-exact,
//!   so Hop routing is byte-identical to the pre-trait router (pinned by
//!   the golden corpus).
//! * [`CostModelSpec::Lookahead`] — SABRE-style: adds a decayed average
//!   hop distance over an *extended set* of upcoming two-qubit gates
//!   (DAG successors of the frontier), so a swap that also helps the next
//!   few gates beats one that only helps the frontier.
//! * [`CostModelSpec::NoiseAware`] — adds the calibration CX-error mass
//!   the candidate commits to (three CXs on the swap's own link, one on
//!   each landing link of frontier gates the swap makes executable, all
//!   normalized by the device's median CX error) plus a small duration
//!   term, steering traffic onto reliable, fast edges.

use caqr_arch::Device;
use std::fmt;

/// Human-readable grammar for [`CostModelSpec::parse`].
pub const COST_MODEL_GRAMMAR: &str = "hop | lookahead[:window[:decay]] | noise-aware";

/// Which swap-scoring cost model the router uses, with its parameters.
///
/// The spec is plain data (`Copy`, comparable, printable) so it can ride
/// inside [`RouterOptions`](crate::router::RouterOptions), CLI flags, wire
/// requests, and cache keys; [`CostModelSpec::build`] turns it into the
/// scoring object against a concrete device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CostModelSpec {
    /// Frontier hop distance only — the historical router behaviour.
    #[default]
    Hop,
    /// Frontier hop distance plus a decayed extended-set term.
    Lookahead {
        /// Maximum number of upcoming two-qubit gates in the extended set.
        window: usize,
        /// Weight of the extended-set average distance (0 disables it).
        decay: f64,
    },
    /// Frontier hop distance plus calibration-weighted link penalties.
    NoiseAware,
}

impl CostModelSpec {
    /// Default extended-set size for [`CostModelSpec::Lookahead`].
    pub const DEFAULT_LOOKAHEAD_WINDOW: usize = 8;
    /// Default extended-set weight for [`CostModelSpec::Lookahead`].
    pub const DEFAULT_LOOKAHEAD_DECAY: f64 = 0.5;

    /// The lookahead model with its default parameters.
    pub fn lookahead() -> Self {
        CostModelSpec::Lookahead {
            window: Self::DEFAULT_LOOKAHEAD_WINDOW,
            decay: Self::DEFAULT_LOOKAHEAD_DECAY,
        }
    }

    /// Every model with default parameters, in stable report order.
    pub const ALL_DEFAULT: [&'static str; 3] = ["hop", "lookahead", "noise-aware"];

    /// Parses the `--cost-model` / wire `router` grammar:
    /// `hop | lookahead[:window[:decay]] | noise-aware`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field (unknown model name,
    /// unparsable window/decay, non-finite or negative decay).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let spec = match head {
            "hop" => CostModelSpec::Hop,
            "noise-aware" | "noise" => CostModelSpec::NoiseAware,
            "lookahead" => {
                let window = match parts.next() {
                    None => Self::DEFAULT_LOOKAHEAD_WINDOW,
                    Some(w) => w
                        .parse::<usize>()
                        .map_err(|_| format!("bad lookahead window '{w}' in '{s}'"))?,
                };
                let decay = match parts.next() {
                    None => Self::DEFAULT_LOOKAHEAD_DECAY,
                    Some(d) => d
                        .parse::<f64>()
                        .map_err(|_| format!("bad lookahead decay '{d}' in '{s}'"))?,
                };
                if !decay.is_finite() || decay < 0.0 {
                    return Err(format!(
                        "lookahead decay must be finite and >= 0, got '{decay}'"
                    ));
                }
                CostModelSpec::Lookahead { window, decay }
            }
            _ => {
                return Err(format!(
                    "unknown cost model '{s}' (expected {COST_MODEL_GRAMMAR})"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("trailing parameters in cost model '{s}'"));
        }
        Ok(spec)
    }

    /// The bare model name, without parameters.
    pub fn name(self) -> &'static str {
        match self {
            CostModelSpec::Hop => "hop",
            CostModelSpec::Lookahead { .. } => "lookahead",
            CostModelSpec::NoiseAware => "noise-aware",
        }
    }

    /// A stable cache-key component covering every scoring parameter
    /// bit-exactly (the decay is rendered from its IEEE bits, so two specs
    /// that could route differently never share a tag).
    pub fn cache_tag(self) -> String {
        match self {
            CostModelSpec::Hop => "hop".into(),
            CostModelSpec::Lookahead { window, decay } => {
                format!("lookahead:{window}:{:016x}", decay.to_bits())
            }
            CostModelSpec::NoiseAware => "noise-aware".into(),
        }
    }

    /// Builds the scoring object for `device`. `NoiseAware` precomputes
    /// the device's median CX error/duration here so scoring is O(1).
    pub fn build(self, device: &Device) -> Box<dyn CostModel> {
        match self {
            CostModelSpec::Hop => Box::new(HopCost),
            CostModelSpec::Lookahead { window, decay } => Box::new(LookaheadCost { window, decay }),
            CostModelSpec::NoiseAware => Box::new(NoiseAwareCost::new(device)),
        }
    }
}

impl fmt::Display for CostModelSpec {
    /// Round-trips through [`CostModelSpec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CostModelSpec::Hop => f.write_str("hop"),
            CostModelSpec::Lookahead { window, decay } => {
                write!(f, "lookahead:{window}:{decay}")
            }
            CostModelSpec::NoiseAware => f.write_str("noise-aware"),
        }
    }
}

/// Per-candidate context handed to [`CostModel::score`].
pub struct SwapScoreCtx<'a> {
    /// The target device (topology + calibration).
    pub device: &'a Device,
    /// Physical endpoints of the routing-pending frontier gates — the
    /// pairs whose summed distance the admission rule shrinks.
    pub frontier: &'a [(usize, usize)],
    /// Physical endpoints of upcoming two-qubit gates (the extended set),
    /// in DAG breadth-first order. Empty unless the model requested a
    /// window via [`CostModel::lookahead_window`].
    pub lookahead: &'a [(usize, usize)],
}

/// Ranks admitted SWAP candidates. Implementations must be deterministic:
/// the same inputs always produce the same score.
pub trait CostModel {
    /// The spec this model was built from.
    fn spec(&self) -> CostModelSpec;

    /// How many upcoming two-qubit gates the router should collect into
    /// [`SwapScoreCtx::lookahead`]. Zero (the default) skips the DAG walk
    /// entirely.
    fn lookahead_window(&self) -> usize {
        0
    }

    /// Scores one admitted candidate; lower is better. `frontier_after`
    /// is the summed frontier hop distance after applying `swap` — the
    /// quantity the admission rule already proved smaller than the
    /// pre-swap distance.
    fn score(&self, ctx: &SwapScoreCtx<'_>, frontier_after: u32, swap: (usize, usize)) -> f64;
}

/// [`CostModelSpec::Hop`]: score is the frontier distance, nothing else.
#[derive(Debug)]
struct HopCost;

impl CostModel for HopCost {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::Hop
    }

    fn score(&self, _ctx: &SwapScoreCtx<'_>, frontier_after: u32, _swap: (usize, usize)) -> f64 {
        f64::from(frontier_after)
    }
}

/// [`CostModelSpec::Lookahead`]: frontier distance plus the decayed mean
/// distance of the extended set under the candidate remap.
#[derive(Debug)]
struct LookaheadCost {
    window: usize,
    decay: f64,
}

impl CostModel for LookaheadCost {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::Lookahead {
            window: self.window,
            decay: self.decay,
        }
    }

    fn lookahead_window(&self) -> usize {
        self.window
    }

    fn score(&self, ctx: &SwapScoreCtx<'_>, frontier_after: u32, swap: (usize, usize)) -> f64 {
        let base = f64::from(frontier_after);
        if ctx.lookahead.is_empty() {
            return base;
        }
        let topo = ctx.device.topology();
        let (x, y) = swap;
        let remap = |p: usize| {
            if p == x {
                y
            } else if p == y {
                x
            } else {
                p
            }
        };
        let sum: u32 = ctx
            .lookahead
            .iter()
            .map(|&(a, b)| topo.distance(remap(a), remap(b)))
            .sum();
        base + self.decay * f64::from(sum) / ctx.lookahead.len() as f64
    }
}

/// Weight of the swap's own CX-error mass in [`NoiseAwareCost`] — the
/// three CXs a SWAP decomposes into, in median-error units. At 0.2 the
/// best-to-worst-link gap (~0.9 after the x3) stays just under one hop of
/// frontier progress, so the swap-link penalty reorders equal-progress
/// candidates but almost never buys a cleaner link with an extra SWAP —
/// an extra SWAP costs three CXs of error, a trade that loses on real
/// calibrations.
const NOISE_ERROR_WEIGHT: f64 = 0.2;
/// Weight of the landing-link credit in [`NoiseAwareCost`]: each frontier
/// gate a candidate makes executable contributes its landing link's error
/// relative to the median (negative for reliable links). Worth double the
/// swap-link weight — the landing link is where the program's own CXs
/// execute, and steering *them* is what actually moves the circuit's
/// total error mass (swept on the golden corpus: the 2x ridge beats hop
/// on both SWAP count and CX error mass; heavier landing weights chase
/// clean links into 20+ extra SWAPs).
const NOISE_LANDING_WEIGHT: f64 = 0.4;
/// Weight of the normalized CX duration term in [`NoiseAwareCost`]. An
/// order of magnitude below the error weights: durations vary far less
/// across links and should only arbitrate between similarly reliable
/// candidates.
const NOISE_DURATION_WEIGHT: f64 = 0.02;

/// [`CostModelSpec::NoiseAware`]: frontier distance plus the CX-error
/// mass the candidate commits to — three CXs on the swap's own link, one
/// on the landing link of every frontier gate the swap makes executable —
/// normalized by the device's median CX error, plus a small duration term.
#[derive(Debug)]
struct NoiseAwareCost {
    median_cx_error: f64,
    median_cx_duration: f64,
}

impl NoiseAwareCost {
    fn new(device: &Device) -> Self {
        let topo = device.topology();
        let cal = device.calibration();
        let mut errs = Vec::new();
        let mut durs = Vec::new();
        for a in 0..topo.num_qubits() {
            for b in topo.neighbors(a) {
                if a < b {
                    errs.push(cal.cx_error(a, b));
                    durs.push(cal.cx_duration(a, b) as f64);
                }
            }
        }
        NoiseAwareCost {
            median_cx_error: median(&mut errs),
            median_cx_duration: median(&mut durs),
        }
    }
}

/// Median of `values` (upper median for even lengths), or 1.0 when the
/// slice is empty or the median is non-positive — the penalty terms then
/// degrade gracefully instead of dividing by zero.
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    values.sort_by(f64::total_cmp);
    let m = values[values.len() / 2];
    if m > 0.0 {
        m
    } else {
        1.0
    }
}

impl CostModel for NoiseAwareCost {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::NoiseAware
    }

    fn score(&self, ctx: &SwapScoreCtx<'_>, frontier_after: u32, swap: (usize, usize)) -> f64 {
        let topo = ctx.device.topology();
        let cal = ctx.device.calibration();
        let (from, to) = swap;
        let remap = |p: usize| {
            if p == from {
                to
            } else if p == to {
                from
            } else {
                p
            }
        };
        // Error mass in median units: the swap itself spends three CXs on
        // its link, and every frontier gate the swap makes executable will
        // spend one CX on whatever link it lands on — credit reliable
        // landing links (below-median error is a negative contribution).
        let mut error_mass =
            NOISE_ERROR_WEIGHT * 3.0 * cal.cx_error(from, to) / self.median_cx_error;
        for &(a, b) in ctx.frontier {
            let (pa, pb) = (remap(a), remap(b));
            if topo.distance(pa, pb) == 1 {
                error_mass +=
                    NOISE_LANDING_WEIGHT * (cal.cx_error(pa, pb) / self.median_cx_error - 1.0);
            }
        }
        f64::from(frontier_after)
            + error_mass
            + NOISE_DURATION_WEIGHT * cal.cx_duration(from, to) as f64 / self.median_cx_duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Topology;

    #[test]
    fn parse_round_trips_through_display() {
        for s in ["hop", "lookahead:8:0.5", "lookahead:4:0.25", "noise-aware"] {
            let spec = CostModelSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(CostModelSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_defaults_and_aliases() {
        assert_eq!(
            CostModelSpec::parse("lookahead").unwrap(),
            CostModelSpec::lookahead()
        );
        assert_eq!(
            CostModelSpec::parse("lookahead:4").unwrap(),
            CostModelSpec::Lookahead {
                window: 4,
                decay: CostModelSpec::DEFAULT_LOOKAHEAD_DECAY
            }
        );
        assert_eq!(
            CostModelSpec::parse("noise").unwrap(),
            CostModelSpec::NoiseAware
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for s in [
            "sabre",
            "hop:1",
            "noise-aware:2",
            "lookahead:x",
            "lookahead:4:nan",
            "lookahead:4:-1",
            "lookahead:4:0.5:9",
            "",
        ] {
            assert!(CostModelSpec::parse(s).is_err(), "'{s}' must not parse");
        }
    }

    #[test]
    fn cache_tags_distinguish_parameters() {
        let tags = [
            CostModelSpec::Hop.cache_tag(),
            CostModelSpec::lookahead().cache_tag(),
            CostModelSpec::Lookahead {
                window: 8,
                decay: 0.25,
            }
            .cache_tag(),
            CostModelSpec::Lookahead {
                window: 4,
                decay: 0.5,
            }
            .cache_tag(),
            CostModelSpec::NoiseAware.cache_tag(),
        ];
        let distinct: std::collections::BTreeSet<&String> = tags.iter().collect();
        assert_eq!(distinct.len(), tags.len(), "{tags:?}");
    }

    #[test]
    fn hop_score_preserves_u32_order() {
        let device = Device::with_synthetic_calibration(Topology::line(3), 1);
        let model = CostModelSpec::Hop.build(&device);
        let ctx = SwapScoreCtx {
            device: &device,
            frontier: &[],
            lookahead: &[],
        };
        let mut prev = f64::NEG_INFINITY;
        for after in [0u32, 1, 2, 1000, u32::MAX] {
            let s = model.score(&ctx, after, (0, 1));
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn lookahead_prefers_swaps_helping_future_gates() {
        let device = Device::with_synthetic_calibration(Topology::line(5), 1);
        let model = CostModelSpec::lookahead().build(&device);
        assert_eq!(model.lookahead_window(), 8);
        // Future gate (0, 3): swapping (1, 0) moves wire 0 to 1, cutting
        // its distance; swapping (1, 2) does not involve it usefully.
        let ctx = SwapScoreCtx {
            device: &device,
            frontier: &[],
            lookahead: &[(0, 3)],
        };
        let helps = model.score(&ctx, 1, (0, 1));
        let neutral = model.score(&ctx, 1, (3, 4));
        assert!(helps < neutral, "{helps} vs {neutral}");
    }

    #[test]
    fn noise_aware_prefers_reliable_links() {
        let device = Device::mumbai(2023);
        let model = CostModelSpec::NoiseAware.build(&device);
        let ctx = SwapScoreCtx {
            device: &device,
            frontier: &[],
            lookahead: &[],
        };
        let topo = device.topology();
        let cal = device.calibration();
        // Any two edges with different error rates must score differently
        // at equal frontier distance, ordered by total penalty.
        let mut edges = Vec::new();
        for a in 0..topo.num_qubits() {
            for b in topo.neighbors(a) {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        // The best and worst edge by raw error must keep that order under
        // the model (durations are drawn from the same distribution, so
        // the 10x-smaller duration weight cannot overturn an error-rate
        // extreme), and every penalty is strictly additive.
        let by_err = |&(a, b): &(usize, usize)| cal.cx_error(a, b);
        let best = *edges
            .iter()
            .min_by(|x, y| by_err(x).total_cmp(&by_err(y)))
            .unwrap();
        let worst = *edges
            .iter()
            .max_by(|x, y| by_err(x).total_cmp(&by_err(y)))
            .unwrap();
        let s_best = model.score(&ctx, 2, best);
        let s_worst = model.score(&ctx, 2, worst);
        assert!(s_best < s_worst, "{s_best} vs {s_worst}");
        for &e in &edges {
            assert!(model.score(&ctx, 2, e) > 2.0, "penalties are additive");
        }
    }
}
