//! Free-qubit selection policy (the paper's Step 2).

use caqr_arch::{Device, Layout};
use caqr_graph::Graph;

/// Chooses a free physical qubit for logical `l`: distance to `anchor`
/// (the gate partner, when mapped) dominates, then lookahead — summed
/// distance to `l`'s already-mapped future partners from the interaction
/// graph — then room (free neighbors), then readout / link error, then
/// the smallest index.
///
/// Identical for every cost model: placement quality is orthogonal to
/// swap scoring, and keeping it fixed preserves the golden corpus for the
/// default model.
pub(crate) fn pick_free_qubit(
    device: &Device,
    layout: &Layout,
    interaction: &Graph,
    l: usize,
    anchor: Option<usize>,
) -> Option<usize> {
    let topo = device.topology();
    let cal = device.calibration();
    let partners: Vec<usize> = interaction
        .neighbors(l)
        .filter_map(|m| layout.phys_of(m))
        .collect();
    let score = |p: usize| {
        let d_anchor = anchor.map_or(0, |x| topo.distance(x, p));
        let d_partners: u32 = partners.iter().map(|&q| topo.distance(p, q)).sum();
        let free_neighbors = topo.neighbors(p).filter(|&n| layout.is_free(n)).count();
        let err = match anchor {
            Some(x) if topo.distance(x, p) == 1 => cal.cx_error(x, p),
            _ => cal.readout_error(p),
        };
        (
            d_anchor,
            d_partners,
            std::cmp::Reverse(free_neighbors),
            err,
            p,
        )
    };
    layout.free_wires().min_by(|&a, &b| {
        let (a0, a1, a2, a3, a4) = score(a);
        let (b0, b1, b2, b3, b4) = score(b);
        (a0, a1, a2)
            .cmp(&(b0, b1, b2))
            .then(a3.total_cmp(&b3))
            .then(a4.cmp(&b4))
    })
}
