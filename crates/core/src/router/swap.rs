//! Frontier-scored SWAP selection.
//!
//! Given the physical endpoints of every routing-pending two-qubit gate,
//! [`select_swap`] picks one SWAP, SABRE-style:
//!
//! 1. **Admission** (model-independent): a candidate must strictly shrink
//!    the summed hop distance of the pending frontier. This is the
//!    termination argument — every admitted swap makes measurable
//!    progress, whatever the cost model prefers among them.
//! 2. **Ranking**: the active [`CostModel`] scores each admitted
//!    candidate; the minimum wins. Ties break deterministically: prefer
//!    already-used physical qubits, then the lower-error link, then the
//!    numerically smallest `(from, to)` pair.
//! 3. **Fallback** (no admitted candidate): shrink the *first* pending
//!    gate's distance directly — candidates are neighbor swaps of either
//!    endpoint that reduce that single gate's distance, tie-broken by new
//!    distance, then link error, then `(anchor, neighbor)`. On a
//!    connected topology such a swap always exists, so routing cannot
//!    stall.

use super::cost::{CostModel, SwapScoreCtx};
use crate::error::CaqrError;
use caqr_arch::Device;

/// Chooses the best SWAP for the pending frontier. `gate_phys` holds the
/// current physical endpoints of each pending two-qubit gate, `lookahead`
/// the endpoints of upcoming gates (empty unless the model asked for a
/// window), and `used_ever(p)` reports whether wire `p` has been touched.
///
/// # Errors
///
/// Returns an internal error when no distance-reducing swap exists even
/// for a single gate — i.e. the device topology is disconnected.
pub(crate) fn select_swap(
    device: &Device,
    cost: &dyn CostModel,
    gate_phys: &[(usize, usize)],
    lookahead: &[(usize, usize)],
    used_ever: &dyn Fn(usize) -> bool,
) -> Result<(usize, usize), CaqrError> {
    let topo = device.topology();
    let cal = device.calibration();
    let total = |swap: Option<(usize, usize)>| -> u32 {
        let remap = |p: usize| match swap {
            Some((x, y)) if p == x => y,
            Some((x, y)) if p == y => x,
            _ => p,
        };
        gate_phys
            .iter()
            .map(|&(a, b)| topo.distance(remap(a), remap(b)))
            .sum()
    };
    let before = total(None);
    let ctx = SwapScoreCtx {
        device,
        frontier: gate_phys,
        lookahead,
    };

    type Cand = (f64, bool, f64, usize, usize); // (score, fresh, err, from, to)
    let mut best: Option<Cand> = None;
    let mut endpoints: Vec<usize> = gate_phys.iter().flat_map(|&(a, b)| [a, b]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    for &from in &endpoints {
        for to in topo.neighbors(from) {
            let after = total(Some((from, to)));
            if after >= before {
                continue;
            }
            let score = cost.score(&ctx, after, (from, to));
            let fresh = !used_ever(to);
            let err = cal.cx_error(from, to);
            let cand = (score, fresh, err, from, to);
            let better = match &best {
                None => true,
                Some(b) => cand
                    .0
                    .total_cmp(&b.0)
                    .then(cand.1.cmp(&b.1))
                    .then(cand.2.total_cmp(&b.2))
                    .then((cand.3, cand.4).cmp(&(b.3, b.4)))
                    .is_lt(),
            };
            if better {
                best = Some(cand);
            }
        }
    }
    match best {
        Some((_, _, _, from, to)) => Ok((from, to)),
        None => fallback_swap(device, gate_phys[0]),
    }
}

/// The guaranteed-progress fallback: the best neighbor swap that shrinks
/// one gate's distance, independent of any cost model.
fn fallback_swap(device: &Device, gate: (usize, usize)) -> Result<(usize, usize), CaqrError> {
    let topo = device.topology();
    let cal = device.calibration();
    let (pa, pb) = gate;
    let cur = topo.distance(pa, pb);
    let mut fallback: Option<(u32, f64, usize, usize)> = None;
    for (anchor, other) in [(pa, pb), (pb, pa)] {
        for n in topo.neighbors(anchor) {
            let nd = topo.distance(n, other);
            if nd >= cur {
                continue;
            }
            let err = cal.cx_error(anchor, n);
            let cand = (nd, err, anchor, n);
            let better = match &fallback {
                None => true,
                Some(b) => cand
                    .0
                    .cmp(&b.0)
                    .then(cand.1.total_cmp(&b.1))
                    .then((cand.2, cand.3).cmp(&(b.2, b.3)))
                    .is_lt(),
            };
            if better {
                fallback = Some(cand);
            }
        }
    }
    let (_, _, from, to) = fallback.ok_or_else(|| {
        CaqrError::internal("no distance-reducing swap exists; device topology is disconnected")
    })?;
    Ok((from, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::CostModelSpec;
    use caqr_arch::Topology;

    fn device(topo: Topology, seed: u64) -> Device {
        Device::with_synthetic_calibration(topo, seed)
    }

    /// Two crossing gates on a line force the frontier search into a
    /// stalemate — every neighbor swap leaves the summed distance at or
    /// above the status quo — so selection must take the fallback path,
    /// and the fallback must be deterministic.
    #[test]
    fn stalemated_frontier_takes_deterministic_fallback() {
        let dev = device(Topology::line(5), 11);
        let cal = dev.calibration();
        let model = CostModelSpec::Hop.build(&dev);
        // Gates (0,3) and (1,2): before = 3 + 1 = 4. Every neighbor swap
        // of {0,1,2,3} re-totals to >= 4 (checked by the select itself:
        // admission finds no candidate), so the fallback routes gate
        // (0,3) directly: candidates (0->1) and (3->2) both reach
        // distance 2, leaving the link error as the tie-breaker.
        let gates = [(0, 3), (1, 2)];
        let picked = select_swap(&dev, model.as_ref(), &gates, &[], &|_| true).unwrap();
        let expected = if cal.cx_error(0, 1).total_cmp(&cal.cx_error(3, 2)).is_le() {
            (0, 1)
        } else {
            (3, 2)
        };
        assert_eq!(picked, expected);
        // Stable across repeated calls and across cost models: the
        // fallback ignores the model by construction.
        for spec in [
            CostModelSpec::Hop,
            CostModelSpec::lookahead(),
            CostModelSpec::NoiseAware,
        ] {
            let m = spec.build(&dev);
            assert_eq!(
                select_swap(&dev, m.as_ref(), &gates, &[], &|_| true).unwrap(),
                expected,
                "{spec}"
            );
        }
    }

    /// On a 4-ring with one pending gate across the diagonal, all four
    /// admitted swaps shrink the distance equally; the tie must resolve
    /// by (fresh, link error, (from, to)) — deterministically.
    #[test]
    fn symmetric_tie_breaks_by_error_then_pair() {
        let dev = device(Topology::ring(4), 7);
        let cal = dev.calibration();
        let model = CostModelSpec::Hop.build(&dev);
        let gates = [(0, 2)]; // distance 2 on the 4-ring
                              // Candidates: (0,1), (0,3), (2,1), (2,3) — all reach distance 1.
        let candidates = [(0, 1), (0, 3), (2, 1), (2, 3)];
        // All wires already used: freshness cannot discriminate.
        let picked = select_swap(&dev, model.as_ref(), &gates, &[], &|_| true).unwrap();
        let expected = candidates
            .iter()
            .copied()
            .min_by(|&a, &b| {
                cal.cx_error(a.0, a.1)
                    .total_cmp(&cal.cx_error(b.0, b.1))
                    .then(a.cmp(&b))
            })
            .unwrap();
        assert_eq!(picked, expected);
        // Repeat for good measure: the search is pure.
        for _ in 0..3 {
            assert_eq!(
                select_swap(&dev, model.as_ref(), &gates, &[], &|_| true).unwrap(),
                picked
            );
        }
    }

    /// Freshness outranks link error: with every wire unused except the
    /// one a candidate would touch, the used candidate wins even when its
    /// link is noisier.
    #[test]
    fn used_wires_preferred_over_fresh_ones() {
        let dev = device(Topology::ring(4), 7);
        let model = CostModelSpec::Hop.build(&dev);
        let gates = [(0, 2)];
        // Only wires 0, 2, and 1 have been used: candidates swapping onto
        // wire 3 are "fresh" and must lose to those staying on {1}.
        let used = |p: usize| p != 3;
        let picked = select_swap(&dev, model.as_ref(), &gates, &[], &used).unwrap();
        assert!(picked.1 != 3, "fresh wire chosen over used: {picked:?}");
    }

    #[test]
    fn disconnected_topology_reports_internal_error() {
        // A 2-qubit "line" has qubits 0-1 coupled; gate endpoints on the
        // same pair are adjacent, so craft disconnection via a star where
        // the gate spans two leaves... simplest: two isolated qubits via
        // grid(1, 2) has them coupled, so use distance-0 self pair on a
        // single-qubit topology instead.
        let dev = device(Topology::line(1), 1);
        let model = CostModelSpec::Hop.build(&dev);
        // A gate whose endpoints coincide: distance 0, no swap can shrink
        // it, and the fallback finds no candidates.
        let err = select_swap(&dev, model.as_ref(), &[(0, 0)], &[], &|_| true).unwrap_err();
        assert!(format!("{err}").contains("disconnected"), "{err}");
    }
}
