//! Reuse-opportunity analysis: the paper's Conditions 1 and 2 (§3.1).
//!
//! A reuse pair `(q_i -> q_j)` (read: *`q_j` reuses `q_i`'s wire*) is valid
//! when
//!
//! 1. **Condition 1** — `q_i` and `q_j` never share a gate, and
//! 2. **Condition 2** — no gate on `q_i` (transitively) depends on a gate
//!    on `q_j`; otherwise forcing all of `q_i`'s gates before all of
//!    `q_j`'s creates a dependency cycle (Fig. 7).

use caqr_circuit::{Circuit, CircuitDag, Qubit};
use caqr_graph::closure::TransitiveClosure;
use caqr_graph::Graph;

/// A candidate reuse pair: `donor`'s wire is handed to `receiver` after a
/// measure-and-reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReusePair {
    /// The qubit that finishes and is measured (`q_i`).
    pub donor: Qubit,
    /// The qubit that takes over the wire (`q_j`).
    pub receiver: Qubit,
}

impl ReusePair {
    /// Builds a pair.
    ///
    /// # Panics
    ///
    /// Panics if donor and receiver are the same qubit.
    pub fn new(donor: Qubit, receiver: Qubit) -> Self {
        assert_ne!(donor, receiver, "a qubit cannot reuse itself");
        ReusePair { donor, receiver }
    }
}

impl std::fmt::Display for ReusePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -> {})", self.donor, self.receiver)
    }
}

/// Precomputed per-circuit analysis state shared by all candidate queries.
#[derive(Debug)]
pub struct ReuseAnalysis {
    interaction: Graph,
    dag: CircuitDag,
    closure: TransitiveClosure,
    gates_on: Vec<Vec<usize>>,
    active: Vec<bool>,
}

impl ReuseAnalysis {
    /// Analyzes `circuit` (builds the DAG, its transitive closure, and the
    /// interaction graph).
    pub fn of(circuit: &Circuit) -> Self {
        let dag = CircuitDag::of(circuit);
        let closure = dag.closure();
        let interaction = caqr_circuit::interaction::interaction_graph(circuit);
        let n = circuit.num_qubits();
        let mut gates_on = vec![Vec::new(); n];
        let mut active = vec![false; n];
        for (idx, instr) in circuit.iter().enumerate() {
            for q in &instr.qubits {
                gates_on[q.index()].push(idx);
                active[q.index()] = true;
            }
        }
        ReuseAnalysis {
            interaction,
            dag,
            closure,
            gates_on,
            active,
        }
    }

    /// The dependence DAG.
    pub fn dag(&self) -> &CircuitDag {
        &self.dag
    }

    /// The qubit interaction graph.
    pub fn interaction(&self) -> &Graph {
        &self.interaction
    }

    /// Condition 1: donor and receiver share no gate.
    pub fn condition1(&self, pair: ReusePair) -> bool {
        !self
            .interaction
            .has_edge(pair.donor.index(), pair.receiver.index())
    }

    /// Condition 2: no gate on the donor depends (transitively) on a gate
    /// on the receiver.
    pub fn condition2(&self, pair: ReusePair) -> bool {
        !self.closure.any_reaches(
            &self.gates_on[pair.receiver.index()],
            &self.gates_on[pair.donor.index()],
        )
    }

    /// Returns `true` when both conditions hold and both qubits are active
    /// (reusing an idle wire is pointless — it is already free).
    pub fn is_valid(&self, pair: ReusePair) -> bool {
        self.active[pair.donor.index()]
            && self.active[pair.receiver.index()]
            && self.condition1(pair)
            && self.condition2(pair)
    }

    /// Enumerates every valid reuse pair of the circuit, ascending by
    /// (donor, receiver).
    pub fn candidate_pairs(&self) -> Vec<ReusePair> {
        let n = self.gates_on.len();
        let mut out = Vec::new();
        for donor in 0..n {
            for receiver in 0..n {
                if donor == receiver {
                    continue;
                }
                let pair = ReusePair::new(Qubit::new(donor), Qubit::new(receiver));
                if self.is_valid(pair) {
                    out.push(pair);
                }
            }
        }
        out
    }

    /// The instruction indices touching qubit `q`, in program order.
    pub fn gates_on(&self, q: Qubit) -> &[usize] {
        &self.gates_on[q.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn pair(d: usize, r: usize) -> ReusePair {
        ReusePair::new(q(d), q(r))
    }

    /// The 5-qubit BV circuit from Fig. 1(a).
    fn bv5() -> Circuit {
        let mut c = Circuit::new(5, 4);
        for i in 0..4 {
            c.h(q(i));
        }
        c.x(q(4));
        c.h(q(4));
        for i in 0..4 {
            c.cx(q(i), q(4));
            c.h(q(i));
        }
        for i in 0..4 {
            c.measure(q(i), caqr_circuit::Clbit::new(i));
        }
        c
    }

    #[test]
    fn bv_pairs_follow_cx_order() {
        let a = ReuseAnalysis::of(&bv5());
        // Data qubit 0 finishes first; 1, 2, 3 may reuse it.
        assert!(a.is_valid(pair(0, 1)));
        assert!(a.is_valid(pair(0, 2)));
        assert!(a.is_valid(pair(1, 3)));
        // Reverse direction violates Condition 2 (CX order on the target).
        assert!(!a.is_valid(pair(1, 0)));
        assert!(!a.is_valid(pair(3, 2)));
        // The target shares gates with everyone: Condition 1 fails.
        assert!(!a.is_valid(pair(4, 0)));
        assert!(!a.is_valid(pair(0, 4)));
    }

    #[test]
    fn candidate_enumeration_counts() {
        let a = ReuseAnalysis::of(&bv5());
        // Valid pairs are exactly (i -> j) for data qubits i < j: 6 pairs.
        let pairs = a.candidate_pairs();
        assert_eq!(pairs.len(), 6);
        for p in pairs {
            assert!(p.donor < p.receiver);
            assert!(p.receiver.index() < 4);
        }
    }

    #[test]
    fn fig7_counter_example_rejected() {
        // Fig. 7: g(q4,q2), g(q2,q3), g(q3,q1); reusing q1 for q4 invalid.
        let mut c = Circuit::new(4, 0); // q1=0, q2=1, q3=2, q4=3
        c.cx(q(3), q(1));
        c.cx(q(1), q(2));
        c.cx(q(2), q(0));
        let a = ReuseAnalysis::of(&c);
        assert!(a.condition1(pair(0, 3)));
        assert!(!a.condition2(pair(0, 3)));
        assert!(!a.is_valid(pair(0, 3)));
        // The opposite orientation is fine.
        assert!(a.is_valid(pair(3, 0)));
    }

    #[test]
    fn idle_qubits_excluded() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)); // q1, q2 idle
        let a = ReuseAnalysis::of(&c);
        assert!(!a.is_valid(pair(0, 1)));
        assert!(!a.is_valid(pair(1, 0)));
        assert!(a.candidate_pairs().is_empty());
    }

    #[test]
    fn disconnected_halves_allow_both_directions() {
        let mut c = Circuit::new(4, 0);
        c.cx(q(0), q(1));
        c.cx(q(2), q(3));
        let a = ReuseAnalysis::of(&c);
        assert!(a.is_valid(pair(0, 2)));
        assert!(a.is_valid(pair(2, 0)));
        assert!(a.is_valid(pair(1, 3)));
        assert!(a.is_valid(pair(3, 1)));
    }

    #[test]
    #[should_panic(expected = "cannot reuse itself")]
    fn self_pair_rejected() {
        pair(1, 1);
    }

    #[test]
    fn display_pair() {
        assert_eq!(format!("{}", pair(0, 3)), "(q0 -> q3)");
    }
}
