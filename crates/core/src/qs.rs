//! QS-CaQR: qubit-saving circuit transformation (§3.2).
//!
//! The pass reduces qubit usage one wire at a time: enumerate valid reuse
//! pairs, score each by the critical path of the circuit it would produce,
//! apply the best, repeat until the user's qubit budget is met (or no pair
//! remains). [`regular`] handles fixed-order circuits; [`commuting`]
//! handles QAOA-style circuits, where a graph coloring bounds the minimum
//! qubit count and the matching scheduler evaluates each candidate.

use crate::analysis::{ReuseAnalysis, ReusePair};
use crate::transform::{self, ReusePlan};
use caqr_circuit::depth::{DurationModel, Schedule};
use caqr_circuit::Circuit;

/// One point on the qubit-count/depth trade-off curve.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Qubits used by this version.
    pub qubits: usize,
    /// The transformed logical circuit.
    pub circuit: Circuit,
    /// Total reuse pairs applied so far.
    pub reuses: usize,
}

impl SweepPoint {
    /// Logical depth of this version.
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// Duration under a duration model.
    pub fn duration(&self, durations: &impl DurationModel) -> u64 {
        caqr_circuit::depth::duration_dt(&self.circuit, durations)
    }
}

/// QS-CaQR for regular (fixed-order) applications (§3.2.1).
pub mod regular {
    use super::*;

    /// How many search states the backtracking sweep may visit per pass.
    /// Greedy succeeds on the first path for well-behaved circuits; the
    /// budget only matters when a locally-optimal merge blocks further
    /// reuse, and the feasibility-ordered second pass usually resolves
    /// those on its first descent.
    const SEARCH_BUDGET: usize = 600;

    /// A lower bound on reachable qubit count: two wires whenever any
    /// two-qubit gate exists, else one. Reaching it ends the search early.
    fn floor(circuit: &Circuit) -> usize {
        if circuit.two_qubit_gate_count() > 0 {
            2
        } else {
            1
        }
    }

    /// How candidate reductions are ordered during the search.
    #[derive(Clone, Copy, PartialEq)]
    enum PairOrder {
        /// Minimum resulting makespan first (the paper's ranking).
        Quality,
        /// Maximum surviving reuse opportunities first — used as a
        /// fallback when quality-first search cannot reach the target
        /// (a cheap merge can wall off the remaining pairs).
        Feasibility,
    }

    /// All single-pair reductions of `circuit`, ordered per `order`.
    fn reductions(
        circuit: &Circuit,
        durations: &impl DurationModel,
        order: PairOrder,
    ) -> Vec<(u64, Circuit)> {
        let analysis = ReuseAnalysis::of(circuit);
        let mut out: Vec<(u64, usize, Circuit)> = analysis
            .candidate_pairs()
            .into_iter()
            .filter_map(|pair| {
                let t = transform::apply(circuit, &ReusePlan::from_pairs([pair])).ok()?;
                let makespan = Schedule::asap(&t.circuit, durations).makespan();
                let surviving = match order {
                    PairOrder::Quality => 0,
                    PairOrder::Feasibility => ReuseAnalysis::of(&t.circuit).candidate_pairs().len(),
                };
                Some((makespan, surviving, t.circuit))
            })
            .collect();
        match order {
            PairOrder::Quality => out.sort_by_key(|a| a.0),
            PairOrder::Feasibility => out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0))),
        }
        out.into_iter().map(|(m, _, c)| (m, c)).collect()
    }

    /// Applies the single best reuse pair (minimum resulting makespan under
    /// `durations`). Returns `None` when no valid pair exists.
    pub fn reduce_by_one(circuit: &Circuit, durations: &impl DurationModel) -> Option<Circuit> {
        reductions(circuit, durations, PairOrder::Quality)
            .into_iter()
            .next()
            .map(|(_, c)| c)
    }

    /// A canonical signature of a circuit, used to prune search states:
    /// distinct pair orders that merge the same wires produce the same
    /// instruction sequence.
    fn signature(circuit: &Circuit) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        circuit.num_qubits().hash(&mut h);
        for instr in circuit {
            instr.gate.name().hash(&mut h);
            instr.gate.angle().map(f64::to_bits).hash(&mut h);
            for q in &instr.qubits {
                q.index().hash(&mut h);
            }
            instr.clbit.map(|c| c.index()).hash(&mut h);
            instr.condition.map(|c| c.index()).hash(&mut h);
        }
        h.finish()
    }

    /// Depth-first descent, trying minimum-makespan pairs first and
    /// backtracking when a choice blocks further reuse. Visited wire
    /// partitions are memoized so permuted pair orders are not re-explored.
    /// Returns the deepest chain of circuits found (the greedy path when
    /// greedy works).
    fn descend(
        circuit: &Circuit,
        target: usize,
        durations: &impl DurationModel,
        order: PairOrder,
        budget: &mut usize,
        seen: &mut std::collections::HashSet<u64>,
    ) -> Vec<Circuit> {
        if circuit.num_qubits() <= target || *budget == 0 {
            return Vec::new();
        }
        *budget -= 1;
        let mut best: Vec<Circuit> = Vec::new();
        for (_, next) in reductions(circuit, durations, order) {
            if !seen.insert(signature(&next)) {
                continue;
            }
            let mut tail = descend(&next, target, durations, order, budget, seen);
            tail.insert(0, next);
            if tail.len() > best.len() {
                let done = tail
                    .last()
                    .map(|c| c.num_qubits() <= target)
                    .unwrap_or(false);
                best = tail;
                if done {
                    break;
                }
            }
            if *budget == 0 {
                break;
            }
        }
        best
    }

    /// Two-phase search: quality-first (minimum makespan) with
    /// backtracking; if that cannot reach `target`, a feasibility-first
    /// pass (keep the most reuse opportunities alive) retries, and the
    /// deeper chain wins.
    fn search(circuit: &Circuit, target: usize, durations: &impl DurationModel) -> Vec<Circuit> {
        let mut budget = SEARCH_BUDGET;
        let mut seen = std::collections::HashSet::new();
        let quality = descend(
            circuit,
            target,
            durations,
            PairOrder::Quality,
            &mut budget,
            &mut seen,
        );
        if quality.last().is_some_and(|c| c.num_qubits() <= target) {
            return quality;
        }
        let mut budget = SEARCH_BUDGET;
        let mut seen = std::collections::HashSet::new();
        let feasibility = descend(
            circuit,
            target,
            durations,
            PairOrder::Feasibility,
            &mut budget,
            &mut seen,
        );
        if feasibility.len() > quality.len() {
            feasibility
        } else {
            quality
        }
    }

    /// The full qubit-count sweep: index 0 is the original circuit; each
    /// subsequent point saves one more qubit, down to the smallest count
    /// the backtracking search reaches. This is the curve behind Figs. 3,
    /// 13 and 14.
    pub fn sweep(circuit: &Circuit, durations: &impl DurationModel) -> Vec<SweepPoint> {
        let mut points = vec![SweepPoint {
            qubits: circuit.active_qubits().len(),
            circuit: circuit.clone(),
            reuses: 0,
        }];
        let chain = search(circuit, floor(circuit), durations);
        for (i, c) in chain.into_iter().enumerate() {
            points.push(SweepPoint {
                qubits: c.num_qubits(),
                circuit: c,
                reuses: i + 1,
            });
        }
        points
    }

    /// Transforms the circuit to use at most `target` qubits, or `None`
    /// when that budget is unreachable — the paper's yes/no compiler
    /// interface.
    pub fn to_target(
        circuit: &Circuit,
        target: usize,
        durations: &impl DurationModel,
    ) -> Option<Circuit> {
        if circuit.active_qubits().len() <= target {
            return Some(circuit.clone());
        }
        let chain = search(circuit, target, durations);
        let last = chain.into_iter().last()?;
        (last.num_qubits() <= target).then_some(last)
    }

    /// The smallest qubit count reachable by the backtracking search.
    pub fn min_qubits(circuit: &Circuit, durations: &impl DurationModel) -> usize {
        sweep(circuit, durations)
            .last()
            .map(|p| p.qubits)
            .unwrap_or(0)
    }
}

/// QS-CaQR for commuting-gate applications such as QAOA (§3.2.2).
pub mod commuting {
    use super::*;
    use crate::commuting::{emit, schedule, CommutingSpec, Matcher};
    use caqr_circuit::Qubit;
    use caqr_graph::coloring;

    /// The minimum qubit count for a commuting circuit: the chromatic
    /// number of its interaction graph (approximated by DSATUR, an upper
    /// bound that is exact on most structured instances).
    pub fn min_qubits(spec: &CommutingSpec) -> usize {
        coloring::dsatur(&spec.interaction_graph()).num_colors()
    }

    /// Greedily picks the next reuse pair: candidates pass Condition 1 and
    /// structural checks, are ranked by the merged-wire load (the paper's
    /// observation that the largest-degree wire lower-bounds depth), and
    /// the best one that survives the full Condition-2 cycle test wins.
    fn next_pair(spec: &CommutingSpec, chosen: &[ReusePair]) -> Option<ReusePair> {
        let n = spec.num_qubits();
        let int = spec.interaction_graph();
        let mut donates = vec![false; n];
        let mut receives = vec![false; n];
        // Load per wire-root under the current chain.
        let mut donor_of: Vec<Option<usize>> = vec![None; n];
        for p in chosen {
            donates[p.donor.index()] = true;
            receives[p.receiver.index()] = true;
            donor_of[p.receiver.index()] = Some(p.donor.index());
        }
        let root = |mut q: usize| -> usize {
            while let Some(d) = donor_of[q] {
                q = d;
            }
            q
        };
        let mut load = vec![0usize; n];
        for q in 0..n {
            load[root(q)] += int.degree(q);
        }

        let mut candidates: Vec<(usize, usize, ReusePair)> = Vec::new();
        for d in 0..n {
            if donates[d] {
                continue;
            }
            for r in 0..n {
                if d == r || receives[r] || int.has_edge(d, r) {
                    continue;
                }
                // Merging r's chain-load onto d's wire.
                let merged = load[root(d)] + load[root(r)];
                let sum = int.degree(d) + int.degree(r);
                candidates.push((merged, sum, ReusePair::new(Qubit::new(d), Qubit::new(r))));
            }
        }
        candidates.sort_by_key(|&(merged, sum, p)| (merged, sum, p));
        for (_, _, pair) in candidates {
            let mut pairs = chosen.to_vec();
            pairs.push(pair);
            if spec.pairs_valid(&pairs) {
                return Some(pair);
            }
        }
        None
    }

    /// Chains derived from the DSATUR coloring: qubits sharing a color
    /// never interact, so they can share a wire (§3.2.2, Fig. 10). Within
    /// each class, qubits are chained in ascending order of the round in
    /// which their last gate executes (donors should finish early), and
    /// each link is validated against Condition 2 — an invalid link simply
    /// starts a new chain, degrading gracefully instead of failing.
    fn coloring_chain_pairs(spec: &CommutingSpec, matcher: Matcher) -> Vec<ReusePair> {
        let Some(rounds) = schedule(spec, &[], matcher) else {
            return Vec::new();
        };
        let n = spec.num_qubits();
        let mut last_round = vec![0usize; n];
        for (r, round) in rounds.iter().enumerate() {
            for &ei in round {
                let (a, b, _) = spec.edges()[ei];
                last_round[a] = last_round[a].max(r + 1);
                last_round[b] = last_round[b].max(r + 1);
            }
        }
        let col = coloring::dsatur(&spec.interaction_graph());
        let mut pairs: Vec<ReusePair> = Vec::new();
        for class in col.groups() {
            let mut members = class;
            members.sort_by_key(|&q| (last_round[q], q));
            let mut head: Option<usize> = None;
            for q in members {
                if let Some(prev) = head {
                    let candidate = ReusePair::new(Qubit::new(prev), Qubit::new(q));
                    pairs.push(candidate);
                    if !spec.pairs_valid(&pairs) {
                        pairs.pop();
                    }
                }
                head = Some(q);
            }
        }
        pairs
    }

    /// Every candidate pair-set the pass considers: prefixes of the greedy
    /// pairwise selection and prefixes of the coloring-derived chains.
    /// Each entry carries the schedule-emitted circuit.
    fn candidates(spec: &CommutingSpec, matcher: Matcher) -> Vec<(Vec<ReusePair>, Circuit)> {
        let mut out = Vec::new();
        // Greedy pairwise prefixes (good depth at small savings).
        let mut pairs: Vec<ReusePair> = Vec::new();
        loop {
            if let Some(rounds) = schedule(spec, &pairs, matcher) {
                let (circuit, _) = emit(spec, &pairs, &rounds);
                out.push((pairs.clone(), circuit));
            }
            match next_pair(spec, &pairs) {
                Some(p) => pairs.push(p),
                None => break,
            }
        }
        // Coloring-chain prefixes and live-width-greedy prefixes (these
        // push toward the chromatic / pathwidth floors).
        let chain = coloring_chain_pairs(spec, matcher);
        let live = crate::commuting::live_greedy_pairs(spec);
        let finish = crate::commuting::finish_greedy_pairs(spec);
        for source in [chain, live, finish] {
            for k in 1..=source.len() {
                let prefix = source[..k].to_vec();
                if let Some(rounds) = schedule(spec, &prefix, matcher) {
                    let (circuit, _) = emit(spec, &prefix, &rounds);
                    out.push((prefix, circuit));
                }
            }
        }
        out
    }

    /// The full sweep for a commuting circuit: point 0 is the scheduler's
    /// no-reuse compilation; each further point saves one more qubit, with
    /// the best (minimum-depth) candidate kept per qubit count. Produces
    /// the Figs. 3/14 curves and reaches the coloring bound.
    pub fn sweep(spec: &CommutingSpec, matcher: Matcher) -> Vec<SweepPoint> {
        let mut best: std::collections::BTreeMap<usize, SweepPoint> = Default::default();
        for (pairs, circuit) in candidates(spec, matcher) {
            let point = SweepPoint {
                qubits: circuit.num_qubits(),
                reuses: pairs.len(),
                circuit,
            };
            match best.get(&point.qubits) {
                Some(existing) if existing.depth() <= point.depth() => {}
                _ => {
                    best.insert(point.qubits, point);
                }
            }
        }
        best.into_values().rev().collect()
    }

    /// Transforms to at most `target` qubits, or `None` if unreachable.
    pub fn to_target(spec: &CommutingSpec, target: usize, matcher: Matcher) -> Option<Circuit> {
        sweep(spec, matcher)
            .into_iter()
            .find(|p| p.qubits <= target)
            .map(|p| p.circuit)
    }

    /// The reuse pairs at the sweep's "sweet spot": the largest saving
    /// whose circuit depth stays within `slack` (e.g. 0.1 = 10%) of the
    /// minimum-depth candidate. SR-CaQR's commuting path seeds its
    /// dependence graph with these (§3.3.2, Step 1).
    pub fn sweet_spot_pairs(spec: &CommutingSpec, matcher: Matcher, slack: f64) -> Vec<ReusePair> {
        let all = candidates(spec, matcher);
        let Some(min_depth) = all.iter().map(|(_, c)| c.depth()).min() else {
            return Vec::new();
        };
        let limit = (min_depth as f64 * (1.0 + slack)).ceil() as usize;
        all.into_iter()
            .filter(|(_, c)| c.depth() <= limit)
            .max_by_key(|(pairs, c)| (pairs.len(), std::cmp::Reverse(c.depth())))
            .map(|(pairs, _)| pairs)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commuting::{CommutingSpec, Matcher, NotCommutingError};
    use caqr_circuit::depth::UnitDurations;
    use caqr_circuit::{Clbit, Qubit};
    use caqr_graph::{gen, Graph};
    use caqr_sim::Executor;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize, hidden: u64) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            if hidden >> i & 1 == 1 {
                c.cx(q(i), q(data));
            }
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn bv_sweeps_to_two_qubits() -> TestResult {
        let c = bv(5, 0b1111);
        let points = regular::sweep(&c, &UnitDurations);
        assert_eq!(points.first().ok_or("sweep is non-empty")?.qubits, 5);
        assert_eq!(points.last().ok_or("sweep is non-empty")?.qubits, 2);
        assert_eq!(points.len(), 4);
        // Qubit counts strictly decrease; depth never decreases.
        for w in points.windows(2) {
            assert_eq!(w[1].qubits + 1, w[0].qubits);
            assert!(w[1].depth() >= w[0].depth());
        }
        Ok(())
    }

    #[test]
    fn every_sweep_point_is_correct() {
        let hidden = 0b1101;
        let c = bv(5, hidden);
        for point in regular::sweep(&c, &UnitDurations) {
            let counts = Executor::ideal().run_shots(&point.circuit, 60, 9);
            assert_eq!(counts.get(hidden), 60, "{} qubits: {counts}", point.qubits);
        }
    }

    #[test]
    fn to_target_budget() -> TestResult {
        let c = bv(6, 0b11111);
        let three = regular::to_target(&c, 3, &UnitDurations).ok_or("3 qubits reachable")?;
        assert_eq!(three.num_qubits(), 3);
        // Impossible budget: BV floor is 2 qubits.
        assert!(regular::to_target(&c, 1, &UnitDurations).is_none());
        // Trivial budget returns the circuit unchanged.
        let same = regular::to_target(&c, 10, &UnitDurations).ok_or("trivial budget")?;
        assert_eq!(same.num_qubits(), 6);
        Ok(())
    }

    #[test]
    fn min_qubits_regular() {
        assert_eq!(regular::min_qubits(&bv(8, u64::MAX), &UnitDurations), 2);
    }

    #[test]
    fn reduce_prefers_less_harmful_pair() -> TestResult {
        // Two independent CX chains of different length; donating from the
        // short chain should beat extending the long one. Just verify the
        // choice made is makespan-minimal vs all alternatives.
        let mut c = Circuit::new(5, 0);
        for _ in 0..4 {
            c.cx(q(0), q(1)); // long busy pair
        }
        c.cx(q(2), q(3)); // short
        c.h(q(4));
        let best = regular::reduce_by_one(&c, &UnitDurations).ok_or("a reduction exists")?;
        let best_makespan = caqr_circuit::depth::Schedule::asap(&best, &UnitDurations).makespan();
        // Exhaustive check.
        let analysis = crate::analysis::ReuseAnalysis::of(&c);
        for pair in analysis.candidate_pairs() {
            if let Ok(t) = crate::transform::apply(&c, &ReusePlan::from_pairs([pair])) {
                let m = caqr_circuit::depth::Schedule::asap(&t.circuit, &UnitDurations).makespan();
                assert!(best_makespan <= m, "pair {pair} beats chosen one");
            }
        }
        Ok(())
    }

    fn qaoa(graph: &Graph) -> Result<CommutingSpec, NotCommutingError> {
        let n = graph.num_vertices();
        let mut c = Circuit::new(n, n);
        for v in 0..n {
            c.h(q(v));
        }
        for (u, v) in graph.edges() {
            c.rzz(0.5, q(u), q(v));
        }
        for v in 0..n {
            c.rx(0.4, q(v));
        }
        c.measure_all();
        CommutingSpec::from_circuit(&c)
    }

    #[test]
    fn commuting_min_qubits_is_coloring() -> TestResult {
        // 5-cycle: chromatic number 3.
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(commuting::min_qubits(&qaoa(&g)?), 3);
        Ok(())
    }

    #[test]
    fn commuting_sweep_reaches_coloring_bound() -> TestResult {
        let g = gen::random_graph(8, 0.3, 4);
        let spec = qaoa(&g)?;
        let points = commuting::sweep(&spec, Matcher::Blossom);
        assert_eq!(points.first().ok_or("sweep is non-empty")?.qubits, 8);
        let last = points.last().ok_or("sweep is non-empty")?;
        // Greedy pair selection may not hit chi exactly, but must get close
        // and always respects the coloring lower bound.
        assert!(last.qubits >= commuting::min_qubits(&spec).min(last.qubits));
        assert!(
            last.qubits <= commuting::min_qubits(&spec) + 1,
            "sweep stopped at {} vs coloring {}",
            last.qubits,
            commuting::min_qubits(&spec)
        );
        Ok(())
    }

    #[test]
    fn commuting_sweep_points_simulate_correctly() -> TestResult {
        use caqr_sim::exact;
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let spec = qaoa(&g)?;
        let reference: std::collections::BTreeMap<u64, f64> = {
            let points = commuting::sweep(&spec, Matcher::Blossom);
            exact::distribution(&points[0].circuit)?
                .into_iter()
                .collect()
        };
        for point in commuting::sweep(&spec, Matcher::Blossom) {
            let d = exact::distribution(&point.circuit)?;
            let mask = (1u64 << 5) - 1;
            let mut merged: std::collections::BTreeMap<u64, f64> = Default::default();
            for (v, p) in d {
                *merged.entry(v & mask).or_insert(0.0) += p;
            }
            for (v, p) in &reference {
                let got = merged.get(v).copied().unwrap_or(0.0);
                assert!(
                    (got - p).abs() < 1e-9,
                    "{} qubits, value {v:05b}: want {p}, got {got}",
                    point.qubits
                );
            }
        }
        Ok(())
    }

    #[test]
    fn commuting_to_target() -> TestResult {
        let g = gen::random_graph(8, 0.3, 7);
        let spec = qaoa(&g)?;
        let min = commuting::sweep(&spec, Matcher::Greedy)
            .last()
            .ok_or("sweep is non-empty")?
            .qubits;
        let c = commuting::to_target(&spec, min, Matcher::Greedy).ok_or("min is reachable")?;
        assert_eq!(c.num_qubits(), min);
        assert!(
            commuting::to_target(&spec, min.saturating_sub(1).max(1), Matcher::Greedy).is_none()
                || min == 1
        );
        Ok(())
    }

    #[test]
    fn sweet_spot_within_slack() -> TestResult {
        let g = gen::random_graph(8, 0.3, 11);
        let spec = qaoa(&g)?;
        let pairs = commuting::sweet_spot_pairs(&spec, Matcher::Greedy, 0.15);
        assert!(spec.pairs_valid(&pairs));
        Ok(())
    }

    #[test]
    fn matchers_agree_on_coverage() -> TestResult {
        let g = gen::random_graph(10, 0.3, 5);
        let spec = qaoa(&g)?;
        let a = commuting::sweep(&spec, Matcher::Blossom);
        let b = commuting::sweep(&spec, Matcher::Greedy);
        // Same saving reach (pair selection identical), similar depths.
        assert_eq!(
            a.last().ok_or("sweep is non-empty")?.qubits,
            b.last().ok_or("sweep is non-empty")?.qubits
        );
        Ok(())
    }
}
