//! The unified error hierarchy for every fallible compilation entry point.
//!
//! Every public function in `caqr-core` that can fail returns
//! [`CaqrError`]; the panicking paths the pre-pass-manager pipeline had
//! (placement `expect`s, `unreachable!` arms, empty-sweep selection) are
//! surfaced here instead so a batch engine can report them per job rather
//! than aborting the process.

use crate::transform::ReuseError;
use std::fmt;

/// Any failure the CaQR compilation pipeline can report.
///
/// Hand-rolled `thiserror`-style: every variant carries the context needed
/// to act on it (the offending qubits, the gate index, the pass name), and
/// the `Display` form is what the CLI prints before exiting non-zero.
#[derive(Debug, Clone, PartialEq)]
pub enum CaqrError {
    /// More concurrently-live logical qubits than physical qubits.
    ///
    /// Where the router knows them, `qubit` is the logical qubit whose
    /// placement failed and `gate_index` the instruction (input-circuit
    /// index) that needed it mapped. The up-front width check reports
    /// `None` for both: no specific gate was at fault, the circuit is
    /// simply wider than the device.
    OutOfQubits {
        /// Logical qubits in the input circuit.
        logical: usize,
        /// Physical qubits on the device.
        physical: usize,
        /// The logical qubit that could not be placed, when known.
        qubit: Option<usize>,
        /// The instruction index that required the placement, when known.
        gate_index: Option<usize>,
    },
    /// A reuse plan was structurally invalid.
    Reuse(ReuseError),
    /// A sweep/selection pass found no candidate to select from.
    EmptySweep {
        /// The pass that expected candidates.
        pass: &'static str,
    },
    /// A pass-sequence recipe referenced a pass that is not registered.
    UnknownPass {
        /// The name that failed to resolve.
        name: String,
    },
    /// A pass ran before the pass that produces its input artifact.
    MissingArtifact {
        /// The pass that needed the artifact.
        pass: &'static str,
        /// What was missing (e.g. `"routed circuit"`).
        artifact: &'static str,
    },
    /// A routing backend was asked to target a device it cannot drive
    /// (e.g. the DPQA movement backend on a device without grid
    /// geometry). `caqr-serve` maps this to HTTP 422.
    BackendDeviceMismatch {
        /// The routing backend's stable name.
        backend: &'static str,
        /// The device's display form.
        device: String,
    },
    /// An internal invariant was violated. Reported instead of panicking
    /// so one bad job cannot take down a batch.
    Internal {
        /// What went wrong, in invariant terms.
        detail: String,
    },
    /// Work was cancelled at a cooperative checkpoint — either its
    /// deadline passed or the caller cancelled the
    /// [`crate::cancel::CancelToken`] explicitly. `caqr-serve` maps this
    /// to HTTP 504.
    DeadlineExceeded {
        /// The checkpoint that observed the cancellation (e.g. a pass
        /// name, or `"simulate"`).
        phase: &'static str,
    },
}

impl CaqrError {
    /// Shorthand for an [`CaqrError::Internal`] invariant violation.
    pub fn internal(detail: impl Into<String>) -> Self {
        CaqrError::Internal {
            detail: detail.into(),
        }
    }

    /// The logical qubit at fault, when the error pinpoints one.
    pub fn qubit(&self) -> Option<usize> {
        match self {
            CaqrError::OutOfQubits { qubit, .. } => *qubit,
            _ => None,
        }
    }

    /// The instruction index at fault, when the error pinpoints one.
    pub fn gate_index(&self) -> Option<usize> {
        match self {
            CaqrError::OutOfQubits { gate_index, .. } => *gate_index,
            _ => None,
        }
    }
}

impl fmt::Display for CaqrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaqrError::OutOfQubits {
                logical,
                physical,
                qubit,
                gate_index,
            } => {
                write!(
                    f,
                    "cannot place {logical} live logical qubits on {physical} physical qubits"
                )?;
                if let Some(q) = qubit {
                    write!(f, " (logical qubit {q}")?;
                    if let Some(g) = gate_index {
                        write!(f, " at gate {g}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            CaqrError::Reuse(e) => write!(f, "invalid reuse plan: {e}"),
            CaqrError::EmptySweep { pass } => {
                write!(f, "pass '{pass}' had no sweep candidates to select from")
            }
            CaqrError::UnknownPass { name } => write!(f, "unknown pass '{name}'"),
            CaqrError::MissingArtifact { pass, artifact } => {
                write!(
                    f,
                    "pass '{pass}' needs a {artifact} produced by an earlier pass"
                )
            }
            CaqrError::BackendDeviceMismatch { backend, device } => {
                write!(
                    f,
                    "routing backend '{backend}' cannot target {device}: \
                     it requires a DPQA grid device (grid:<rows>x<cols>)"
                )
            }
            CaqrError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
            CaqrError::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded (cancelled at '{phase}')")
            }
        }
    }
}

impl std::error::Error for CaqrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaqrError::Reuse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReuseError> for CaqrError {
    fn from(e: ReuseError) -> Self {
        CaqrError::Reuse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_qubits_display_includes_context() {
        let bare = CaqrError::OutOfQubits {
            logical: 9,
            physical: 3,
            qubit: None,
            gate_index: None,
        };
        assert_eq!(
            bare.to_string(),
            "cannot place 9 live logical qubits on 3 physical qubits"
        );
        let full = CaqrError::OutOfQubits {
            logical: 9,
            physical: 3,
            qubit: Some(7),
            gate_index: Some(12),
        };
        let s = full.to_string();
        assert!(s.contains("logical qubit 7"), "{s}");
        assert!(s.contains("at gate 12"), "{s}");
        assert_eq!(full.qubit(), Some(7));
        assert_eq!(full.gate_index(), Some(12));
    }

    #[test]
    fn other_variants_display() {
        assert!(CaqrError::EmptySweep { pass: "select" }
            .to_string()
            .contains("select"));
        assert!(CaqrError::UnknownPass {
            name: "nope".into()
        }
        .to_string()
        .contains("nope"));
        assert!(CaqrError::MissingArtifact {
            pass: "report",
            artifact: "routed circuit"
        }
        .to_string()
        .contains("routed circuit"));
        assert!(CaqrError::internal("broken").to_string().contains("broken"));
        assert!(CaqrError::DeadlineExceeded { phase: "qs-sweep" }
            .to_string()
            .contains("qs-sweep"));
        assert_eq!(CaqrError::internal("x").qubit(), None);
        assert_eq!(CaqrError::internal("x").gate_index(), None);
    }
}
