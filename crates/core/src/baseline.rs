//! The no-reuse baseline compiler (the paper's "IBM Qiskit, optimization
//! level 3" stand-in, §4.1).
//!
//! Qiskit O3's routing core is SABRE-style heuristic SWAP insertion over an
//! eager initial layout. The baseline here shares CaQR's routing engine
//! with [`RouterOptions::baseline`]: every logical qubit placed up front
//! (interaction-degree placement) and no qubit reclamation — so deltas
//! against QS/SR-CaQR measure exactly the value of qubit reuse.

use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use crate::router::{self, RoutedCircuit, RouterConfig, RouterOptions};
use caqr_arch::Device;
use caqr_circuit::Circuit;

/// Compiles `circuit` onto `device` without qubit reuse.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit is wider than the
/// device.
pub fn compile(circuit: &Circuit, device: &Device) -> Result<RoutedCircuit, CaqrError> {
    router::route(circuit, device, RouterOptions::baseline())
}

/// [`compile`] under an explicit routing policy — a bare swap-scoring
/// [`crate::router::CostModelSpec`] or a full [`RouterConfig`] (backend +
/// cost model).
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit is wider than the
/// device.
pub fn compile_with(
    circuit: &Circuit,
    device: &Device,
    router_config: impl Into<RouterConfig>,
) -> Result<RoutedCircuit, CaqrError> {
    router::route(
        circuit,
        device,
        RouterOptions::baseline().with_router(router_config),
    )
}

/// SABRE-style bidirectional layout refinement: route forward, route the
/// *reversed* circuit seeded with the forward pass's final layout, then
/// route forward again from where the reverse pass ended. The best of the
/// first and final forward passes (by SWAPs, then depth) wins. The forward
/// and refined passes route the same circuit, so they share one
/// [`AnalysisCache`].
///
/// Exposed alongside [`compile`] so the routing-quality ablation can
/// quantify what the extra passes buy.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit is wider than the
/// device.
pub fn compile_bidirectional(
    circuit: &Circuit,
    device: &Device,
) -> Result<RoutedCircuit, CaqrError> {
    let opts = RouterOptions::baseline();
    let mut analyses = AnalysisCache::new();
    let forward = router::route_cached(circuit, device, opts, None, &mut analyses)?;

    // Reverse the instruction list; only the two-qubit structure matters
    // for layout search, so measures and conditionals ride along.
    let mut reversed = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit.instructions().iter().rev() {
        reversed.push(instr.clone());
    }
    let backward = router::route_seeded(&reversed, device, opts, Some(&forward.final_layout))?;
    let refined = router::route_cached(
        circuit,
        device,
        opts,
        Some(&backward.final_layout),
        &mut analyses,
    )?;

    let key = |r: &RoutedCircuit| (r.swap_count, r.circuit.depth());
    Ok(if key(&refined) <= key(&forward) {
        refined
    } else {
        forward
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_arch::Topology;
    use caqr_circuit::{Clbit, Qubit};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn compiles_and_is_compliant() -> TestResult {
        let dev = Device::mumbai(1);
        let mut c = Circuit::new(6, 6);
        for i in 0..6 {
            c.h(Qubit::new(i));
        }
        for i in 0..5 {
            c.cx(Qubit::new(i), Qubit::new(i + 1));
        }
        c.measure_all();
        let r = compile(&c, &dev)?;
        assert!(r.is_hardware_compliant(&dev));
        assert_eq!(r.physical_qubits_used, 6);
        // No reuse: no conditional resets.
        assert_eq!(
            r.circuit.iter().filter(|i| i.condition.is_some()).count(),
            0
        );
        Ok(())
    }

    #[test]
    fn line_circuit_on_line_device_is_swap_free() -> TestResult {
        let dev = Device::with_synthetic_calibration(Topology::line(4), 2);
        let mut c = Circuit::new(4, 0);
        for i in 0..3 {
            c.cx(Qubit::new(i), Qubit::new(i + 1));
        }
        let r = compile(&c, &dev)?;
        assert_eq!(r.swap_count, 0);
        Ok(())
    }

    #[test]
    fn bidirectional_never_worse_and_still_correct() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(9);
        let bench = caqr_benchmarks::bv::bv_all_ones(8);
        let single = compile(&bench.circuit, &dev)?;
        let refined = compile_bidirectional(&bench.circuit, &dev)?;
        assert!(refined.is_hardware_compliant(&dev));
        assert!(
            refined.swap_count <= single.swap_count,
            "refined {} vs single {}",
            refined.swap_count,
            single.swap_count
        );
        let (compact, _) = refined.circuit.compact_qubits();
        let counts = Executor::ideal().run_shots(&compact, 40, 5).marginal(7);
        let correct = bench.correct_output.ok_or("bv has a correct output")?;
        assert_eq!(counts.get(correct), 40);
        Ok(())
    }

    #[test]
    fn preserves_deterministic_output() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(4);
        let mut c = Circuit::new(4, 4);
        c.x(Qubit::new(1));
        c.cx(Qubit::new(1), Qubit::new(3));
        c.cx(Qubit::new(3), Qubit::new(0));
        for i in 0..4 {
            c.measure(Qubit::new(i), Clbit::new(i));
        }
        let r = compile(&c, &dev)?;
        let (compact, _) = r.circuit.compact_qubits();
        let counts = Executor::ideal().run_shots(&compact, 60, 5);
        assert_eq!(counts.get(0b1011), 60, "{counts}");
        Ok(())
    }
}
