//! Applying a reuse plan: wire merging + measure-and-reset insertion.
//!
//! Given reuse pairs `(donor -> receiver)`, the transform emits a new
//! circuit in which each receiver's gates run on its donor's wire, after a
//! mid-circuit measurement and the paper's fast conditional reset
//! (`measure; if (c) x`, Fig. 2b). The dummy node `D` of Fig. 9 appears
//! here as real dependence edges `gates(donor) -> D -> gates(receiver)`;
//! any violation of Condition 1 or 2 manifests as a cycle and is rejected.
//!
//! Classical bits are preserved: each original measurement keeps its
//! clbit, so the transformed circuit's output distribution over the
//! classical register is identical to the original's — which is how the
//! test suite verifies semantic preservation end to end.

use crate::analysis::ReusePair;
use caqr_circuit::{Circuit, Clbit, Gate, Qubit};
use caqr_graph::DiGraph;
use std::fmt;

/// An ordered list of reuse pairs to apply to one circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReusePlan {
    pairs: Vec<ReusePair>,
}

impl ReusePlan {
    /// An empty plan (identity transform).
    pub fn new() -> Self {
        ReusePlan { pairs: Vec::new() }
    }

    /// Builds a plan from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = ReusePair>) -> Self {
        ReusePlan {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Adds a pair.
    pub fn push(&mut self, pair: ReusePair) {
        self.pairs.push(pair);
    }

    /// The pairs in application order.
    pub fn pairs(&self) -> &[ReusePair] {
        &self.pairs
    }

    /// The number of pairs (each saves one qubit).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` for the identity plan.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl FromIterator<ReusePair> for ReusePlan {
    fn from_iter<I: IntoIterator<Item = ReusePair>>(iter: I) -> Self {
        ReusePlan::from_pairs(iter)
    }
}

/// Why a reuse plan could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReuseError {
    /// A qubit donates its wire twice.
    DuplicateDonor(Qubit),
    /// A qubit receives a wire twice.
    DuplicateReceiver(Qubit),
    /// A pair references a qubit outside the circuit.
    OutOfRange(Qubit),
    /// The plan violates Condition 1 or 2 (the imposed dependence cycles).
    CyclicDependence,
}

impl fmt::Display for ReuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseError::DuplicateDonor(q) => write!(f, "qubit {q} donates its wire twice"),
            ReuseError::DuplicateReceiver(q) => write!(f, "qubit {q} receives a wire twice"),
            ReuseError::OutOfRange(q) => write!(f, "qubit {q} is outside the circuit"),
            ReuseError::CyclicDependence => {
                f.write_str("reuse plan creates a dependence cycle (condition 1/2 violated)")
            }
        }
    }
}

impl std::error::Error for ReuseError {}

/// The result of applying a [`ReusePlan`].
#[derive(Debug, Clone)]
pub struct TransformedCircuit {
    /// The transformed circuit (fewer wires, mid-circuit measure + reset).
    pub circuit: Circuit,
    /// For each original logical qubit, the wire hosting it.
    pub wire_of: Vec<usize>,
    /// The plan that produced this circuit.
    pub plan: ReusePlan,
}

impl TransformedCircuit {
    /// Qubits saved relative to the original.
    pub fn qubits_saved(&self) -> usize {
        self.plan.len()
    }
}

/// Applies `plan` to `circuit`.
///
/// # Errors
///
/// Returns a [`ReuseError`] when the plan is structurally malformed or
/// violates the reuse conditions.
pub fn apply(circuit: &Circuit, plan: &ReusePlan) -> Result<TransformedCircuit, ReuseError> {
    let n = circuit.num_qubits();
    // Structural validation.
    let mut donor_of: Vec<Option<usize>> = vec![None; n]; // receiver -> donor
    let mut donates: Vec<bool> = vec![false; n];
    for pair in plan.pairs() {
        for q in [pair.donor, pair.receiver] {
            if q.index() >= n {
                return Err(ReuseError::OutOfRange(q));
            }
        }
        if donates[pair.donor.index()] {
            return Err(ReuseError::DuplicateDonor(pair.donor));
        }
        donates[pair.donor.index()] = true;
        if donor_of[pair.receiver.index()].is_some() {
            return Err(ReuseError::DuplicateReceiver(pair.receiver));
        }
        donor_of[pair.receiver.index()] = Some(pair.donor.index());
    }

    // Gate lists per qubit.
    let mut gates_on: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (idx, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            gates_on[q.index()].push(idx);
        }
    }

    // Extended dependence graph: instructions + one D node per pair.
    let base = caqr_circuit::CircuitDag::of(circuit);
    let mut graph: DiGraph = base.graph().clone();
    let mut d_nodes = Vec::with_capacity(plan.len());
    for pair in plan.pairs() {
        let d = graph.add_vertex();
        d_nodes.push(d);
        for &g in &gates_on[pair.donor.index()] {
            graph.add_edge(g, d);
        }
        for &g in &gates_on[pair.receiver.index()] {
            graph.add_edge(d, g);
        }
    }
    let order = graph
        .topological_order()
        .ok_or(ReuseError::CyclicDependence)?;

    // Wire roots: follow donor chains to a non-receiver qubit.
    let root = |mut q: usize| -> usize {
        let mut guard = 0;
        while let Some(d) = donor_of[q] {
            q = d;
            guard += 1;
            assert!(guard <= n, "chain cycles were rejected above");
        }
        q
    };
    // Compress roots of active qubits to wire indices.
    let mut wire_index: Vec<Option<usize>> = vec![None; n];
    let mut num_wires = 0;
    let mut wire_of = vec![usize::MAX; n];
    for q in 0..n {
        if gates_on[q].is_empty() {
            continue;
        }
        let r = root(q);
        let w = *wire_index[r].get_or_insert_with(|| {
            let w = num_wires;
            num_wires += 1;
            w
        });
        wire_of[q] = w;
    }
    // Idle qubits keep a sentinel; give them stable wires past the active
    // ones so the vector is total.
    for wire in &mut wire_of {
        if *wire == usize::MAX {
            *wire = num_wires;
        }
    }

    // Reuse points: pick the clbit for each donor's reset. A donor with
    // no gates never left |0>, so its handoff needs no measure or reset
    // at all (`None`).
    let mut num_clbits = circuit.num_clbits();
    // (needs_fresh_measure, clbit) per pair.
    let resets: Vec<Option<(bool, Clbit)>> = plan
        .pairs()
        .iter()
        .map(|pair| {
            let last = gates_on[pair.donor.index()].last().copied()?;
            let last_instr = &circuit.instructions()[last];
            Some(match (last_instr.gate, last_instr.clbit) {
                (Gate::Measure, Some(clbit)) => (false, clbit),
                _ => {
                    let c = Clbit::new(num_clbits);
                    num_clbits += 1;
                    (true, c)
                }
            })
        })
        .collect();

    // Emit in dependence order.
    let mut out = Circuit::new(num_wires.max(1), num_clbits);
    for node in order {
        if node < circuit.len() {
            let instr = &circuit.instructions()[node];
            let mut ni = instr.clone();
            ni.qubits = instr
                .qubits
                .iter()
                .map(|q| Qubit::new(wire_of[q.index()]))
                .collect();
            out.push(ni);
        } else {
            // D nodes were added to the graph in pair order, directly
            // after the circuit's own instruction nodes.
            let k = node - circuit.len();
            let pair = plan.pairs()[k];
            let wire = Qubit::new(wire_of[pair.donor.index()]);
            if let Some((fresh, clbit)) = resets[k] {
                if fresh {
                    out.measure(wire, clbit);
                }
                out.cond_x(wire, clbit);
            }
        }
    }

    Ok(TransformedCircuit {
        circuit: out,
        wire_of,
        plan: plan.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ReusePair;
    use caqr_sim::{exact, Executor};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn pair(d: usize, r: usize) -> ReusePair {
        ReusePair::new(q(d), q(r))
    }

    /// BV with hidden string (little endian over data qubits).
    fn bv(n: usize, hidden: u64) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            if hidden >> i & 1 == 1 {
                c.cx(q(i), q(data));
            }
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn bv5_full_chain_gives_two_wires() -> TestResult {
        let c = bv(5, 0b1111);
        let plan = ReusePlan::from_pairs([pair(0, 1), pair(1, 2), pair(2, 3)]);
        let t = apply(&c, &plan)?;
        assert_eq!(t.circuit.num_qubits(), 2);
        assert_eq!(t.qubits_saved(), 3);
        // All data qubits share wire 0; target on wire 1.
        assert_eq!(t.wire_of[0], t.wire_of[1]);
        assert_eq!(t.wire_of[1], t.wire_of[2]);
        assert_ne!(t.wire_of[0], t.wire_of[4]);
        // Three reuse points: three conditional resets, no fresh measures
        // (data qubits already measure terminally).
        let cond_x = t.circuit.iter().filter(|i| i.condition.is_some()).count();
        assert_eq!(cond_x, 3);
        assert_eq!(t.circuit.mid_circuit_measurement_count(), 3);
        Ok(())
    }

    #[test]
    fn bv_semantics_preserved() -> TestResult {
        for hidden in [0b1111u64, 0b1010, 0b0011] {
            let c = bv(5, hidden);
            let plan = ReusePlan::from_pairs([pair(0, 1), pair(1, 2), pair(2, 3)]);
            let t = apply(&c, &plan)?;
            let counts = Executor::ideal().run_shots(&t.circuit, 100, 3);
            assert_eq!(counts.get(hidden), 100, "hidden {hidden:04b}: {counts}");
        }
        Ok(())
    }

    #[test]
    fn single_pair_saves_one() -> TestResult {
        let c = bv(5, 0b1111);
        let t = apply(&c, &ReusePlan::from_pairs([pair(0, 3)]))?;
        assert_eq!(t.circuit.num_qubits(), 4);
        let counts = Executor::ideal().run_shots(&t.circuit, 50, 1);
        assert_eq!(counts.get(0b1111), 50);
        Ok(())
    }

    #[test]
    fn empty_plan_is_identity_up_to_compaction() -> TestResult {
        let c = bv(5, 0b0110);
        let t = apply(&c, &ReusePlan::new())?;
        assert_eq!(t.circuit.num_qubits(), 5);
        assert_eq!(t.circuit.len(), c.len());
        Ok(())
    }

    #[test]
    fn donor_without_measure_gets_fresh_one() -> TestResult {
        // q0 entangles with q1 but is never measured; reusing it for q2
        // must insert a fresh measure + conditional reset.
        let mut c = Circuit::new(3, 2);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.h(q(2));
        c.cx(q(2), q(1));
        c.measure(q(1), Clbit::new(0));
        c.measure(q(2), Clbit::new(1));
        let t = apply(&c, &ReusePlan::from_pairs([pair(0, 2)]))?;
        assert_eq!(t.circuit.num_qubits(), 2);
        // Fresh clbit allocated beyond the original two.
        assert_eq!(t.circuit.num_clbits(), 3);
        let measures = t.circuit.count_gates(|g| matches!(g, Gate::Measure));
        assert_eq!(measures, 3);
        // Distribution over the original clbits is preserved.
        let orig = exact::distribution(&c)?;
        let new = exact::distribution(&t.circuit)?;
        // Marginalize the fresh clbit (bit 2) out of the transformed dist.
        let mut marginal = std::collections::BTreeMap::new();
        for (v, p) in new {
            *marginal.entry(v & 0b11).or_insert(0.0) += p;
        }
        for (v, p) in orig {
            let got = marginal.get(&v).copied().unwrap_or(0.0);
            assert!((got - p).abs() < 1e-9, "value {v:02b}: {p} vs {got}");
        }
        Ok(())
    }

    /// Asserts that `apply` rejects `plan` with exactly `want`.
    fn assert_rejected(c: &Circuit, plan: ReusePlan, want: ReuseError) -> TestResult {
        match apply(c, &plan) {
            Err(err) => {
                assert_eq!(err, want);
                Ok(())
            }
            Ok(_) => Err(format!("plan accepted, expected {want}").into()),
        }
    }

    #[test]
    fn invalid_pair_rejected_as_cycle() -> TestResult {
        // Fig. 7 shape: reusing q0's wire for q3 is invalid.
        let mut c = Circuit::new(4, 0);
        c.cx(q(3), q(1));
        c.cx(q(1), q(2));
        c.cx(q(2), q(0));
        assert_rejected(
            &c,
            ReusePlan::from_pairs([pair(0, 3)]),
            ReuseError::CyclicDependence,
        )
    }

    #[test]
    fn condition1_violation_rejected() -> TestResult {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        assert_rejected(
            &c,
            ReusePlan::from_pairs([pair(0, 1)]),
            ReuseError::CyclicDependence,
        )
    }

    #[test]
    fn duplicate_donor_rejected() -> TestResult {
        let c = bv(5, 0b1111);
        assert_rejected(
            &c,
            ReusePlan::from_pairs([pair(0, 1), pair(0, 2)]),
            ReuseError::DuplicateDonor(q(0)),
        )
    }

    #[test]
    fn duplicate_receiver_rejected() -> TestResult {
        let c = bv(5, 0b1111);
        assert_rejected(
            &c,
            ReusePlan::from_pairs([pair(0, 3), pair(1, 3)]),
            ReuseError::DuplicateReceiver(q(3)),
        )
    }

    #[test]
    fn out_of_range_rejected() -> TestResult {
        let c = bv(3, 0b11);
        assert_rejected(
            &c,
            ReusePlan::from_pairs([pair(0, 9)]),
            ReuseError::OutOfRange(q(9)),
        )
    }

    #[test]
    fn depth_grows_with_reuse() -> TestResult {
        // The paper's core trade-off: fewer qubits, longer circuit.
        let c = bv(5, 0b1111);
        let d0 = c.depth();
        let t = apply(
            &c,
            &ReusePlan::from_pairs([pair(0, 1), pair(1, 2), pair(2, 3)]),
        )?;
        assert!(t.circuit.depth() > d0);
        Ok(())
    }

    #[test]
    fn gateless_donor_needs_no_reset() -> TestResult {
        // q0 has no gates at all; handing its wire to q1 must not emit a
        // measure or conditional reset (the wire never left |0>).
        let mut c = Circuit::new(2, 1);
        c.h(q(1));
        c.measure(q(1), Clbit::new(0));
        let t = apply(&c, &ReusePlan::from_pairs([pair(0, 1)]))?;
        assert_eq!(
            t.circuit.iter().filter(|i| i.condition.is_some()).count(),
            0
        );
        Ok(())
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", ReuseError::CyclicDependence).contains("cycle"));
        assert!(format!("{}", ReuseError::DuplicateDonor(q(2))).contains("q2"));
    }
}
