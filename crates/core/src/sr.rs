//! SR-CaQR: SWAP reduction and fidelity through dynamic-circuit-aware
//! mapping (§3.3).
//!
//! SR-CaQR assumes qubits are plentiful and instead optimizes the compiled
//! circuit: it delays off-critical gates so fresh logical qubits can map
//! onto *reclaimed* physical qubits close to their partners (avoiding
//! SWAPs), chooses physical qubits by error variability, and saves qubits
//! as a side effect. The commuting-gate variant first imposes a partial
//! gate order using QS-CaQR's sweet-spot reuse pairs (§3.3.2 Step 1), then
//! runs the same mapper.
//!
//! Every candidate version is routed under two policies; each candidate
//! circuit gets one shared [`AnalysisCache`] so its DAG, interaction
//! graph, and critical-path marks are built once, not once per policy.

use crate::commuting::{CommutingSpec, Matcher};
use crate::error::CaqrError;
use crate::pass::AnalysisCache;
use crate::qs;
use crate::router::{self, CostModelSpec, RoutedCircuit, RouterConfig, RouterOptions};
use caqr_arch::Device;
use caqr_circuit::parametric::{self, ParametricCircuit};
use caqr_circuit::Circuit;

/// Routes `circuit` under each policy in order, sharing one analysis
/// cache, feeding every result to `consider`.
fn route_versions(
    circuit: &Circuit,
    device: &Device,
    policies: [RouterOptions; 2],
    mut consider: impl FnMut(Result<RoutedCircuit, CaqrError>),
) {
    let mut analyses = AnalysisCache::new();
    for opts in policies {
        consider(router::route_cached(
            circuit,
            device,
            opts,
            None,
            &mut analyses,
        ));
    }
}

/// Compiles a regular circuit with SR-CaQR (§3.3.1): the delay/reclaim
/// mapper routes the original circuit *and* each QS-CaQR sweep point, the
/// eager-placement policy provides the no-reuse reference, and the best
/// compiled version wins — ranked by SWAPs, then qubit usage, then depth.
/// This is the paper's generate-versions-and-select flow; it guarantees
/// SR is never worse than either the baseline or the best QS sweep point
/// on SWAP count.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when no version fits the device.
pub fn compile(circuit: &Circuit, device: &Device) -> Result<RoutedCircuit, CaqrError> {
    compile_with(circuit, device, CostModelSpec::Hop)
}

/// [`compile`] under an explicit routing policy — a bare swap-scoring
/// [`CostModelSpec`] or a full [`RouterConfig`] (backend + cost model) —
/// applied to every candidate version under both policies.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when no version fits the device.
pub fn compile_with(
    circuit: &Circuit,
    device: &Device,
    router_config: impl Into<RouterConfig>,
) -> Result<RoutedCircuit, CaqrError> {
    let router_config = router_config.into();
    let policies = [
        RouterOptions::sr().with_router(router_config),
        RouterOptions::baseline().with_router(router_config),
    ];
    let mut best: Option<RoutedCircuit> = None;
    let mut last_err = None;
    let key = |r: &RoutedCircuit| {
        (
            r.swap_count + r.movement_stages,
            r.physical_qubits_used,
            r.circuit.depth(),
        )
    };
    let consider = |candidate: Result<RoutedCircuit, CaqrError>,
                    best: &mut Option<RoutedCircuit>,
                    last_err: &mut Option<CaqrError>| {
        match candidate {
            Ok(routed) => {
                if best.as_ref().is_none_or(|b| key(&routed) < key(b)) {
                    *best = Some(routed);
                }
            }
            Err(e) => *last_err = Some(e),
        }
    };
    route_versions(circuit, device, policies, |c| {
        consider(c, &mut best, &mut last_err)
    });
    for point in qs::regular::sweep(circuit, &device.logical_duration_model()) {
        if point.reuses == 0 {
            continue; // the original was handled above
        }
        route_versions(&point.circuit, device, policies, |c| {
            consider(c, &mut best, &mut last_err)
        });
    }
    finish(best, last_err)
}

/// Resolves the best candidate, or the last routing error when every
/// version failed.
fn finish(
    best: Option<RoutedCircuit>,
    last_err: Option<CaqrError>,
) -> Result<RoutedCircuit, CaqrError> {
    match best {
        Some(b) => Ok(b),
        None => {
            Err(last_err
                .unwrap_or_else(|| CaqrError::internal("version selection saw no candidates")))
        }
    }
}

/// Routes with the delay/reclaim mapper only — the raw §3.3.1 algorithm
/// without version selection, exposed for ablations.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit.
pub fn route_only(circuit: &Circuit, device: &Device) -> Result<RoutedCircuit, CaqrError> {
    router::route(circuit, device, RouterOptions::sr())
}

/// SR-CaQR with the *fidelity* objective: the same candidate versions as
/// [`compile`] / [`compile_commuting`], ranked by estimated success
/// probability instead of SWAP count. This is the selection the paper's
/// end-to-end fidelity experiments (Table 3, Figs. 15/16) exercise — the
/// reuse level that best balances SWAP savings against the added
/// measure-and-reset duration.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when no version fits the device.
pub fn compile_for_fidelity(
    circuit: &Circuit,
    device: &Device,
) -> Result<RoutedCircuit, CaqrError> {
    let mut best: Option<(f64, RoutedCircuit)> = None;
    let mut last_err = None;
    let mut consider = |candidate: Result<RoutedCircuit, CaqrError>| match candidate {
        Ok(routed) => {
            let esp = crate::esp::estimate(&routed.circuit, device);
            if best.as_ref().is_none_or(|(b, _)| esp > *b) {
                best = Some((esp, routed));
            }
        }
        Err(e) => last_err = Some(e),
    };
    route_versions(
        circuit,
        device,
        [RouterOptions::baseline(), RouterOptions::sr()],
        &mut consider,
    );
    let points = match CommutingSpec::from_circuit(circuit) {
        Ok(spec) => qs::commuting::sweep(&spec, default_matcher(&spec)),
        Err(_) => qs::regular::sweep(circuit, &device.logical_duration_model()),
    };
    for point in points {
        route_versions(
            &point.circuit,
            device,
            [RouterOptions::sr(), RouterOptions::baseline()],
            &mut consider,
        );
    }
    finish(best.map(|(_, r)| r), last_err)
}

/// [`compile_for_fidelity`] for a parametric template. Version selection
/// ranks by ESP, which reads gate types, durations, and calibration —
/// never rotation angles — so the chosen version and its routing are
/// valid for **every** binding of the template. The routed circuit still
/// carries the template's symbolic slots; stamp concrete angles in with
/// [`caqr_circuit::parametric::bind_circuit`] (an O(gates) walk).
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when no version fits the device.
pub fn compile_for_fidelity_template(
    template: &ParametricCircuit,
    device: &Device,
) -> Result<RoutedCircuit, CaqrError> {
    let routed = compile_for_fidelity(template.circuit(), device)?;
    debug_assert_eq!(
        parametric::slot_census(&routed.circuit),
        parametric::slot_census(template.circuit()),
        "fidelity version selection must preserve the template's slot multiset"
    );
    Ok(routed)
}

/// Compiles a commuting-gate circuit with SR-CaQR (§3.3.2): QS-CaQR finds
/// the sweet-spot reuse pairs, those impose the partial gate order, and
/// the dynamic-circuit-aware mapper routes the result. Several reuse
/// levels are compiled (none, half of the sweet spot, the sweet spot) and
/// the best compiled circuit wins — ranked by SWAPs, then qubit usage,
/// then duration — mirroring the paper's generate-versions-and-select
/// flow.
///
/// Falls back to the regular path when the circuit does not have the
/// commuting-layer shape.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] as for [`compile`].
pub fn compile_commuting(
    circuit: &Circuit,
    device: &Device,
    _slack: f64,
) -> Result<RoutedCircuit, CaqrError> {
    let Ok(spec) = CommutingSpec::from_circuit(circuit) else {
        return compile(circuit, device);
    };
    compile_commuting_with(circuit, device, &spec)
}

/// [`compile_commuting`] with a precomputed [`CommutingSpec`] — the entry
/// point the pass pipeline uses so the `commuting-analysis` artifact is
/// not recomputed.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] as for [`compile`].
pub fn compile_commuting_with(
    circuit: &Circuit,
    device: &Device,
    spec: &CommutingSpec,
) -> Result<RoutedCircuit, CaqrError> {
    compile_commuting_with_cost(circuit, device, spec, CostModelSpec::Hop)
}

/// [`compile_commuting_with`] under an explicit routing policy — a bare
/// swap-scoring [`CostModelSpec`] or a full [`RouterConfig`] — applied to
/// every candidate version under both policies.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] as for [`compile`].
pub fn compile_commuting_with_cost(
    circuit: &Circuit,
    device: &Device,
    spec: &CommutingSpec,
    router_config: impl Into<RouterConfig>,
) -> Result<RoutedCircuit, CaqrError> {
    let router_config = router_config.into();
    let matcher = default_matcher(spec);
    let mut best: Option<RoutedCircuit> = None;
    let mut last_err = None;
    let key = |r: &RoutedCircuit| {
        (
            r.swap_count + r.movement_stages,
            r.physical_qubits_used,
            r.circuit.depth(),
        )
    };
    let consider = |candidate: Result<RoutedCircuit, CaqrError>,
                    best: &mut Option<RoutedCircuit>,
                    last_err: &mut Option<CaqrError>| {
        match candidate {
            Ok(routed) => {
                if best.as_ref().is_none_or(|b| key(&routed) < key(b)) {
                    *best = Some(routed);
                }
            }
            Err(e) => *last_err = Some(e),
        }
    };
    // The untouched input (original gate order) under both policies.
    route_versions(
        circuit,
        device,
        [
            RouterOptions::baseline().with_router(router_config),
            RouterOptions::sr().with_router(router_config),
        ],
        |c| consider(c, &mut best, &mut last_err),
    );
    // Every QS sweep point (scheduler-ordered, 0..max reuse) under both
    // policies — a strict superset of the QS-min-SWAP candidate set, so
    // SR never loses Table 2's comparison by construction.
    for point in qs::commuting::sweep(spec, matcher) {
        route_versions(
            &point.circuit,
            device,
            [
                RouterOptions::sr().with_router(router_config),
                RouterOptions::baseline().with_router(router_config),
            ],
            |c| consider(c, &mut best, &mut last_err),
        );
    }
    finish(best, last_err)
}

/// Blossom matching for small instances; the §3.4 greedy alternative once
/// instances get large (the paper's own suggested cut-off strategy).
pub fn default_matcher(spec: &CommutingSpec) -> Matcher {
    if spec.num_qubits() <= 24 {
        Matcher::Blossom
    } else {
        Matcher::Greedy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use caqr_circuit::{Clbit, Qubit};
    use caqr_graph::gen;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            c.cx(q(i), q(data));
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    fn qaoa_circuit(n: usize, density: f64, seed: u64) -> Circuit {
        let g = gen::random_graph(n, density, seed);
        let mut c = Circuit::new(n, n);
        for v in 0..n {
            c.h(q(v));
        }
        for (u, v) in g.edges() {
            c.rzz(0.6, q(u), q(v));
        }
        for v in 0..n {
            c.rx(0.5, q(v));
        }
        c.measure_all();
        c
    }

    #[test]
    fn sr_beats_baseline_swaps_on_bv10() -> TestResult {
        // The Fig. 4/5 argument at scale: BV's star graph strains the
        // heavy-hex degree-3 coupling; reuse relieves it.
        let dev = Device::mumbai(2);
        let c = bv(10);
        let base = baseline::compile(&c, &dev)?;
        let sr = compile(&c, &dev)?;
        assert!(sr.is_hardware_compliant(&dev));
        assert!(
            sr.swap_count <= base.swap_count,
            "SR {} vs baseline {}",
            sr.swap_count,
            base.swap_count
        );
        assert!(sr.physical_qubits_used <= base.physical_qubits_used);
        Ok(())
    }

    #[test]
    fn sr_preserves_bv_semantics() -> TestResult {
        use caqr_sim::Executor;
        let dev = Device::mumbai(2);
        let r = compile(&bv(6), &dev)?;
        let (compact, _) = r.circuit.compact_qubits();
        let counts = Executor::ideal().run_shots(&compact, 60, 3).marginal(5);
        assert_eq!(counts.get(0b11111), 60, "{counts}");
        Ok(())
    }

    #[test]
    fn commuting_path_compiles_qaoa() -> TestResult {
        let dev = Device::mumbai(3);
        let c = qaoa_circuit(8, 0.3, 5);
        let r = compile_commuting(&c, &dev, 0.1)?;
        assert!(r.is_hardware_compliant(&dev));
        // Version selection guarantees SR is never worse than the no-reuse
        // compilation on SWAPs, and usage stays at or below the baseline
        // (swap-through qubits count as used, so compare compilations).
        let base = baseline::compile(&c, &dev)?;
        assert!(
            r.swap_count <= base.swap_count,
            "SR {} swaps vs baseline {}",
            r.swap_count,
            base.swap_count
        );
        assert!(
            r.physical_qubits_used <= base.physical_qubits_used,
            "SR {} vs baseline {}",
            r.physical_qubits_used,
            base.physical_qubits_used
        );
        Ok(())
    }

    #[test]
    fn commuting_with_spec_matches_recomputed_spec() -> TestResult {
        let dev = Device::mumbai(3);
        let c = qaoa_circuit(8, 0.3, 5);
        let spec = CommutingSpec::from_circuit(&c).map_err(|e| e.to_string())?;
        let with = compile_commuting_with(&c, &dev, &spec)?;
        let recomputed = compile_commuting(&c, &dev, 0.1)?;
        assert_eq!(
            with.circuit.fingerprint(),
            recomputed.circuit.fingerprint(),
            "precomputed spec must not change the result"
        );
        Ok(())
    }

    #[test]
    fn commuting_falls_back_for_regular_circuits() -> TestResult {
        let dev = Device::mumbai(3);
        let c = bv(5);
        let r = compile_commuting(&c, &dev, 0.1)?;
        assert!(r.is_hardware_compliant(&dev));
        Ok(())
    }

    #[test]
    fn matcher_cutoff() -> TestResult {
        let spec =
            CommutingSpec::from_circuit(&qaoa_circuit(8, 0.3, 1)).map_err(|e| e.to_string())?;
        assert_eq!(default_matcher(&spec), Matcher::Blossom);
        let spec =
            CommutingSpec::from_circuit(&qaoa_circuit(30, 0.2, 1)).map_err(|e| e.to_string())?;
        assert_eq!(default_matcher(&spec), Matcher::Greedy);
        Ok(())
    }

    #[test]
    fn fidelity_template_bind_matches_direct_fidelity_compile() -> TestResult {
        // The fig. 15/16 contract: routing the template once and binding
        // angles afterwards must give byte-identical artifacts to running
        // the full fidelity compile on the already-bound circuit.
        let dev = Device::mumbai(4);
        let concrete = qaoa_circuit(8, 0.3, 9);
        let (template, values) = ParametricCircuit::parametrize(&concrete);
        let routed = compile_for_fidelity_template(&template, &dev)?;
        let bound = parametric::bind_circuit(&routed.circuit, template.num_slots(), &values)
            .map_err(|e| e.to_string())?;
        let direct = compile_for_fidelity(&concrete, &dev)?;
        assert_eq!(
            bound.fingerprint(),
            direct.circuit.fingerprint(),
            "bound template artifact must equal the direct fidelity compile"
        );
        assert_eq!(routed.physical_qubits_used, direct.physical_qubits_used);
        assert!(!parametric::has_slots(&bound));
        Ok(())
    }
}
