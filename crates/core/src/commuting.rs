//! Commuting-gate circuit handling (the paper's QAOA path, §3.2.2).
//!
//! A QAOA-shaped circuit is: per-qubit prologue (H), a layer of mutually
//! commuting diagonal two-qubit gates (one per problem-graph edge), a
//! per-qubit epilogue (the RX mixer), and terminal measurements. Because
//! the two-qubit gates commute, their order is free — the compiler may
//! schedule them in any sequence that respects the dependencies *imposed by
//! reuse pairs*.
//!
//! [`CommutingSpec`] extracts that structure from a [`Circuit`];
//! [`schedule`] realizes the paper's three-step scheduler (dependence
//! update, temporary removal of blocked gates, priority maximum matching);
//! [`emit`] lowers a schedule + reuse pairs back to a concrete dynamic
//! circuit.

use crate::analysis::ReusePair;
use caqr_circuit::{Circuit, Clbit, Gate, Qubit};
use caqr_graph::{matching, Graph};
use std::fmt;

/// Why a circuit does not fit the commuting-layer shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCommutingError {
    reason: String,
}

impl NotCommutingError {
    fn new(reason: impl Into<String>) -> Self {
        NotCommutingError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NotCommutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not a commuting-layer circuit: {}", self.reason)
    }
}

impl std::error::Error for NotCommutingError {}

/// The extracted structure of a commuting-layer circuit.
#[derive(Debug, Clone)]
pub struct CommutingSpec {
    num_qubits: usize,
    edges: Vec<(usize, usize, Gate)>,
    prologue: Vec<Vec<Gate>>,
    epilogue: Vec<Vec<Gate>>,
    measure_clbit: Vec<Option<usize>>,
}

impl CommutingSpec {
    /// Parses `circuit` into the prologue / commuting-edge / epilogue /
    /// measure shape.
    ///
    /// # Errors
    ///
    /// Returns [`NotCommutingError`] if any two-qubit gate is not diagonal,
    /// any gate follows a measurement on the same qubit, a two-qubit gate
    /// follows a qubit's epilogue, or the circuit uses dynamic-circuit
    /// operations already.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, NotCommutingError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Phase {
            Prologue,
            Edges,
            Epilogue,
            Measured,
        }
        let n = circuit.num_qubits();
        let mut phase = vec![Phase::Prologue; n];
        let mut spec = CommutingSpec {
            num_qubits: n,
            edges: Vec::new(),
            prologue: vec![Vec::new(); n],
            epilogue: vec![Vec::new(); n],
            measure_clbit: vec![None; n],
        };
        for instr in circuit {
            if instr.condition.is_some() {
                return Err(NotCommutingError::new("conditional gate present"));
            }
            match instr.gate {
                Gate::Reset => return Err(NotCommutingError::new("reset present")),
                Gate::Measure => {
                    let q = instr.qubits[0].index();
                    if phase[q] == Phase::Measured {
                        return Err(NotCommutingError::new(format!("q{q} measured twice")));
                    }
                    phase[q] = Phase::Measured;
                    let clbit = instr
                        .clbit
                        .ok_or_else(|| NotCommutingError::new("measure without a clbit"))?;
                    spec.measure_clbit[q] = Some(clbit.index());
                }
                g if g.is_two_qubit() => {
                    if !g.is_diagonal() {
                        return Err(NotCommutingError::new(format!(
                            "two-qubit gate {g} is not diagonal"
                        )));
                    }
                    let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                    for q in [a, b] {
                        match phase[q] {
                            Phase::Prologue => phase[q] = Phase::Edges,
                            Phase::Edges => {}
                            _ => {
                                return Err(NotCommutingError::new(format!(
                                    "two-qubit gate on q{q} after its epilogue"
                                )))
                            }
                        }
                    }
                    spec.edges.push((a, b, g));
                }
                g => {
                    let q = instr.qubits[0].index();
                    match phase[q] {
                        Phase::Prologue => spec.prologue[q].push(g),
                        Phase::Edges | Phase::Epilogue => {
                            phase[q] = Phase::Epilogue;
                            spec.epilogue[q].push(g);
                        }
                        Phase::Measured => {
                            return Err(NotCommutingError::new(format!(
                                "gate on q{q} after measurement"
                            )))
                        }
                    }
                }
            }
        }
        Ok(spec)
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The commuting two-qubit gates as `(u, v, gate)` triples.
    pub fn edges(&self) -> &[(usize, usize, Gate)] {
        &self.edges
    }

    /// The simple interaction graph (`G_int`).
    pub fn interaction_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_qubits);
        for &(a, b, _) in &self.edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Validates a set of reuse pairs against this spec: Condition 1 (no
    /// shared edge), structural uniqueness, and Condition 2 (the imposed
    /// gate dependencies are acyclic). This is the paper's incremental
    /// cycle test, run on the gate-level dependence graph.
    pub fn pairs_valid(&self, pairs: &[ReusePair]) -> bool {
        let n = self.num_qubits;
        let mut donates = vec![false; n];
        let mut receives = vec![false; n];
        let int = self.interaction_graph();
        // Wire-level chains must form a forest: a donor-receiver cycle
        // (possible between gate-free qubits, which the gate-level test
        // below cannot see) would make the wire assignment circular.
        let mut chains = caqr_graph::DiGraph::new(n);
        for p in pairs {
            let (d, r) = (p.donor.index(), p.receiver.index());
            if d >= n || r >= n || d == r || int.has_edge(d, r) {
                return false;
            }
            if donates[d] || receives[r] {
                return false;
            }
            donates[d] = true;
            receives[r] = true;
            chains.add_edge(d, r);
        }
        if chains.has_cycle() {
            return false;
        }
        // Gate-level dependence graph: one node per edge-gate plus one D
        // node per pair; gates(donor) -> D -> gates(receiver). D nodes of
        // chained pairs (receiver of one = donor of the next) are linked
        // directly — otherwise a gate-free intermediate qubit would hide
        // the transitive constraint and a deadlocking pair set could pass.
        let mut g = caqr_graph::DiGraph::new(self.edges.len() + pairs.len());
        let mut gates_on: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(a, b, _)) in self.edges.iter().enumerate() {
            gates_on[a].push(i);
            gates_on[b].push(i);
        }
        for (k, p) in pairs.iter().enumerate() {
            let d_node = self.edges.len() + k;
            for &gi in &gates_on[p.donor.index()] {
                g.add_edge(gi, d_node);
            }
            for &gi in &gates_on[p.receiver.index()] {
                g.add_edge(d_node, gi);
            }
            for (m, q) in pairs.iter().enumerate() {
                if m != k && q.donor == p.receiver {
                    g.add_edge(d_node, self.edges.len() + m);
                }
            }
        }
        !g.has_cycle()
    }
}

/// Which maximum-matching engine the scheduler uses for each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Matcher {
    /// Edmonds' blossom with the priority phase (the paper's choice).
    #[default]
    Blossom,
    /// Greedy maximal matching sorted by priority weight (the cheaper
    /// alternative from §3.4, used for large instances and the ablation).
    Greedy,
}

/// Runs the three-step scheduler: returns rounds of edge indices (into
/// [`CommutingSpec::edges`]), or `None` if the pairs deadlock (cyclic).
///
/// Per round: gates blocked by unresolved reuse dependencies are removed
/// (Step 2), edges touching a pending donor get priority weight (`|E|`),
/// and a maximum matching selects the round's gates (Step 3).
pub fn schedule(
    spec: &CommutingSpec,
    pairs: &[ReusePair],
    matcher: Matcher,
) -> Option<Vec<Vec<usize>>> {
    let n = spec.num_qubits();
    let mut donor_of: Vec<Option<usize>> = vec![None; n];
    let mut is_donor = vec![false; n];
    for p in pairs {
        donor_of[p.receiver.index()] = Some(p.donor.index());
        is_donor[p.donor.index()] = true;
    }
    let mut remaining_edges: Vec<usize> = (0..spec.edges.len()).collect();
    let mut remaining_on: Vec<usize> = vec![0; n];
    for &(a, b, _) in spec.edges() {
        remaining_on[a] += 1;
        remaining_on[b] += 1;
    }

    // ready(q): every transitive donor has finished all of its gates.
    let ready = |remaining_on: &[usize], q: usize| -> bool {
        let mut cur = q;
        let mut guard = 0;
        while let Some(d) = donor_of[cur] {
            if remaining_on[d] > 0 {
                return false;
            }
            cur = d;
            guard += 1;
            if guard > n {
                return false; // cyclic chain
            }
        }
        true
    };

    let priority_weight = spec.edges.len().max(2) as u64;
    let mut rounds = Vec::new();
    while !remaining_edges.is_empty() {
        // Step 2: eligible edges are those whose endpoints are both ready.
        let eligible: Vec<usize> = remaining_edges
            .iter()
            .copied()
            .filter(|&ei| {
                let (a, b, _) = spec.edges[ei];
                ready(&remaining_on, a) && ready(&remaining_on, b)
            })
            .collect();
        if eligible.is_empty() {
            return None; // deadlock: invalid pair set
        }
        // Build the round's simple interaction subgraph; remember one edge
        // id per vertex pair (parallel edges go to later rounds).
        let mut g = Graph::new(n);
        let mut edge_id = std::collections::BTreeMap::new();
        for &ei in &eligible {
            let (a, b, _) = spec.edges[ei];
            let key = (a.min(b), a.max(b));
            if g.add_edge(a, b) {
                edge_id.insert(key, ei);
            }
        }
        // Step 3: priority maximum matching. Priority edges touch a donor
        // that still has gates (finishing them unblocks a reuse).
        let is_priority = |u: usize, v: usize| -> bool { is_donor[u] || is_donor[v] };
        let matched = match matcher {
            Matcher::Blossom => matching::priority_maximum(&g, is_priority),
            Matcher::Greedy => matching::greedy_maximal(&g, |u, v| {
                if is_priority(u, v) {
                    priority_weight
                } else {
                    1
                }
            }),
        };
        let mut round = Vec::new();
        for (u, v) in matched.edges() {
            let ei = edge_id[&(u, v)];
            round.push(ei);
            remaining_on[u] -= 1;
            remaining_on[v] -= 1;
        }
        round.sort_unstable();
        remaining_edges.retain(|ei| !round.contains(ei));
        rounds.push(round);
    }
    Some(rounds)
}

/// Derives reuse pairs from a live-width-greedy gate ordering: schedule
/// one commuting gate at a time, always choosing the gate that activates
/// the fewest new qubits (tie: retires the most; then fewest remaining
/// gates on its endpoints). Wires are managed as a LIFO pool: a retired
/// qubit's wire is handed to the next activation, which *is* a reuse pair.
///
/// Validity is by construction: a donor is fully finished before its
/// receiver starts (Condition 2), and an interacting pair can never share
/// a wire because their shared gate forces both alive at once
/// (Condition 1). This construction approaches the interaction graph's
/// pathwidth — the true floor — where pairwise greedy search stalls much
/// earlier.
pub fn live_greedy_pairs(spec: &CommutingSpec) -> Vec<ReusePair> {
    live_pairs_with(spec, false)
}

/// Like [`live_greedy_pairs`], but with a "finish what you started" bias:
/// when any live qubit still has gates, its cheapest gate is scheduled
/// first, draining qubits one at a time — often a tighter width on
/// tree-like (scale-free) graphs.
pub fn finish_greedy_pairs(spec: &CommutingSpec) -> Vec<ReusePair> {
    live_pairs_with(spec, true)
}

fn live_pairs_with(spec: &CommutingSpec, finish_bias: bool) -> Vec<ReusePair> {
    let n = spec.num_qubits();
    let mut remaining: Vec<usize> = vec![0; n];
    for &(a, b, _) in spec.edges() {
        remaining[a] += 1;
        remaining[b] += 1;
    }
    let mut alive = vec![false; n];
    let mut unscheduled: Vec<usize> = (0..spec.edges().len()).collect();
    let mut pool: Vec<usize> = Vec::new(); // retired qubits with reusable wires
    let mut pairs: Vec<ReusePair> = Vec::new();

    let activate =
        |q: usize, alive: &mut Vec<bool>, pool: &mut Vec<usize>, pairs: &mut Vec<ReusePair>| {
            if !alive[q] {
                alive[q] = true;
                if let Some(donor) = pool.pop() {
                    pairs.push(ReusePair::new(Qubit::new(donor), Qubit::new(q)));
                }
            }
        };

    while !unscheduled.is_empty() {
        // Pick the cheapest edge: fewest activations, most retirements,
        // then least remaining load, then index. With the finish bias,
        // edges draining the live qubit closest to retirement come first.
        let focus: Option<usize> = if finish_bias {
            (0..n)
                .filter(|&q| alive[q] && remaining[q] > 0)
                .min_by_key(|&q| (remaining[q], q))
        } else {
            None
        };
        let Some(best) = unscheduled.iter().copied().min_by_key(|&ei| {
            let (a, b, _) = spec.edges()[ei];
            let on_focus = focus.is_some_and(|f| a == f || b == f);
            let activations = usize::from(!alive[a]) + usize::from(!alive[b]);
            let retirements = usize::from(remaining[a] == 1) + usize::from(remaining[b] == 1);
            let load = remaining[a] + remaining[b];
            (
                std::cmp::Reverse(on_focus),
                activations,
                std::cmp::Reverse(retirements),
                load,
                ei,
            )
        }) else {
            break;
        };
        let (a, b, _) = spec.edges()[best];
        activate(a, &mut alive, &mut pool, &mut pairs);
        activate(b, &mut alive, &mut pool, &mut pairs);
        remaining[a] -= 1;
        remaining[b] -= 1;
        for q in [a, b] {
            if remaining[q] == 0 {
                alive[q] = false;
                pool.push(q);
            }
        }
        unscheduled.retain(|&ei| ei != best);
    }
    pairs
}

/// Lowers a schedule + reuse pairs into a concrete dynamic circuit.
///
/// Returns the circuit and `wire_of` (original qubit -> wire).
///
/// # Panics
///
/// Panics if `rounds` is not a permutation of the spec's edges or the
/// pairs are structurally invalid (use [`CommutingSpec::pairs_valid`]
/// first).
pub fn emit(
    spec: &CommutingSpec,
    pairs: &[ReusePair],
    rounds: &[Vec<usize>],
) -> (Circuit, Vec<usize>) {
    let n = spec.num_qubits();
    let mut donor_of: Vec<Option<usize>> = vec![None; n];
    let mut receiver_of: Vec<Option<usize>> = vec![None; n];
    for p in pairs {
        donor_of[p.receiver.index()] = Some(p.donor.index());
        receiver_of[p.donor.index()] = Some(p.receiver.index());
    }
    // Wire assignment by donor-chain roots.
    let root = |mut q: usize| -> usize {
        while let Some(d) = donor_of[q] {
            q = d;
        }
        q
    };
    let mut wire_index: Vec<Option<usize>> = vec![None; n];
    let mut num_wires = 0;
    let mut wire_of = vec![0usize; n];
    for (q, wire) in wire_of.iter_mut().enumerate() {
        let r = root(q);
        let w = *wire_index[r].get_or_insert_with(|| {
            let w = num_wires;
            num_wires += 1;
            w
        });
        *wire = w;
    }

    // Classical bits: measured qubits keep theirs; unmeasured donors get
    // fresh bits for the conditional reset.
    let mut num_clbits = spec
        .measure_clbit
        .iter()
        .flatten()
        .map(|&c| c + 1)
        .max()
        .unwrap_or(0);
    let reset_clbit: Vec<Option<usize>> = (0..n)
        .map(|q| {
            receiver_of[q]?;
            Some(match spec.measure_clbit[q] {
                Some(c) => c,
                None => {
                    let c = num_clbits;
                    num_clbits += 1;
                    c
                }
            })
        })
        .collect();

    let mut c = Circuit::new(num_wires, num_clbits);
    let mut started = vec![false; n];
    let mut finished = vec![false; n];
    let mut remaining_on = vec![0usize; n];
    for &(a, b, _) in spec.edges() {
        remaining_on[a] += 1;
        remaining_on[b] += 1;
    }

    // Recursively (iteratively) start a qubit: donors must finish first.
    #[allow(clippy::too_many_arguments)]
    fn start(
        q: usize,
        spec: &CommutingSpec,
        donor_of: &[Option<usize>],
        wire_of: &[usize],
        started: &mut [bool],
        finished: &mut [bool],
        remaining_on: &[usize],
        reset_clbit: &[Option<usize>],
        c: &mut Circuit,
    ) {
        if started[q] {
            return;
        }
        if let Some(d) = donor_of[q] {
            assert!(
                finished[d],
                "scheduler must finish donor q{d} before starting q{q}"
            );
        }
        started[q] = true;
        let w = Qubit::new(wire_of[q]);
        for g in &spec.prologue[q] {
            c.push_gate(*g, &[w]);
        }
        // A qubit with no edges finishes immediately.
        if remaining_on[q] == 0 {
            finish(q, spec, wire_of, finished, reset_clbit, c);
        }
    }

    fn finish(
        q: usize,
        spec: &CommutingSpec,
        wire_of: &[usize],
        finished: &mut [bool],
        reset_clbit: &[Option<usize>],
        c: &mut Circuit,
    ) {
        if finished[q] {
            return;
        }
        finished[q] = true;
        let w = Qubit::new(wire_of[q]);
        for g in &spec.epilogue[q] {
            c.push_gate(*g, &[w]);
        }
        if let Some(cl) = spec.measure_clbit[q] {
            c.measure(w, Clbit::new(cl));
        }
        // `reset_clbit[q]` is Some exactly when q is a donor (it was
        // built by mapping over `receiver_of`), so this single check
        // covers "is this qubit handed to a receiver".
        if let Some(cl) = reset_clbit[q] {
            if spec.measure_clbit[q].is_none() {
                c.measure(w, Clbit::new(cl));
            }
            c.cond_x(w, Clbit::new(cl));
        }
    }

    // Start root qubits with edges lazily; process rounds.
    let mut emitted = 0usize;
    for round in rounds {
        for &ei in round {
            let (a, b, gate) = spec.edges[ei];
            for q in [a, b] {
                // Start donors-first chains as needed.
                let mut chain = vec![q];
                while let Some(d) = donor_of[chain[chain.len() - 1]] {
                    if started[d] {
                        break;
                    }
                    chain.push(d);
                }
                for &s in chain.iter().rev() {
                    start(
                        s,
                        spec,
                        &donor_of,
                        &wire_of,
                        &mut started,
                        &mut finished,
                        &remaining_on,
                        &reset_clbit,
                        &mut c,
                    );
                }
            }
            c.push_gate(gate, &[Qubit::new(wire_of[a]), Qubit::new(wire_of[b])]);
            emitted += 1;
            for q in [a, b] {
                remaining_on[q] -= 1;
                if remaining_on[q] == 0 {
                    finish(q, spec, &wire_of, &mut finished, &reset_clbit, &mut c);
                }
            }
        }
    }
    assert_eq!(emitted, spec.edges.len(), "schedule must cover every edge");

    // Start-and-finish any untouched qubits (isolated vertices), donors
    // before receivers.
    let mut progress = true;
    while progress {
        progress = false;
        for q in 0..n {
            if !started[q] && donor_of[q].is_none_or(|d| finished[d]) {
                start(
                    q,
                    spec,
                    &donor_of,
                    &wire_of,
                    &mut started,
                    &mut finished,
                    &remaining_on,
                    &reset_clbit,
                    &mut c,
                );
                progress = true;
            }
        }
    }
    assert!(
        started.iter().all(|&s| s),
        "every qubit must start (pairs acyclic)"
    );

    (c, wire_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_graph::gen;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn pair(d: usize, r: usize) -> ReusePair {
        ReusePair::new(q(d), q(r))
    }

    fn qaoa_circuit(graph: &Graph) -> Circuit {
        let n = graph.num_vertices();
        let mut c = Circuit::new(n, n);
        for v in 0..n {
            c.h(q(v));
        }
        for (u, v) in graph.edges() {
            c.rzz(0.7, q(u), q(v));
        }
        for v in 0..n {
            c.rx(0.6, q(v));
        }
        c.measure_all();
        c
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn spec_extraction() -> TestResult {
        let g = gen::random_graph(6, 0.4, 1);
        let c = qaoa_circuit(&g);
        let spec = CommutingSpec::from_circuit(&c)?;
        assert_eq!(spec.num_qubits(), 6);
        assert_eq!(spec.edges().len(), g.num_edges());
        assert_eq!(spec.interaction_graph(), g);
        for v in 0..6 {
            assert_eq!(spec.prologue[v], vec![Gate::H]);
            assert_eq!(spec.epilogue[v].len(), 1);
            assert_eq!(spec.measure_clbit[v], Some(v));
        }
        Ok(())
    }

    #[test]
    fn non_commuting_rejected() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        assert!(CommutingSpec::from_circuit(&c).is_err());

        // Two-layer QAOA breaks the single-layer shape.
        let mut c2 = Circuit::new(2, 0);
        c2.rzz(0.1, q(0), q(1));
        c2.rx(0.2, q(0));
        c2.rzz(0.1, q(0), q(1));
        assert!(CommutingSpec::from_circuit(&c2).is_err());
    }

    #[test]
    fn pairs_validation() -> TestResult {
        // Path 0-1-2: 0 and 2 do not interact.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        assert!(spec.pairs_valid(&[pair(0, 2)]));
        assert!(spec.pairs_valid(&[pair(2, 0)]));
        // Interacting pair fails Condition 1.
        assert!(!spec.pairs_valid(&[pair(0, 1)]));
        // Duplicate donor.
        assert!(!spec.pairs_valid(&[pair(0, 2), pair(0, 1)]));
        Ok(())
    }

    #[test]
    fn mutual_reuse_cycle_rejected() -> TestResult {
        // 0-1, 2-3 disjoint: (0 -> 2) and (2 -> 0) together cycle.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        assert!(spec.pairs_valid(&[pair(0, 2)]));
        assert!(!spec.pairs_valid(&[pair(0, 2), pair(2, 0)]));
        Ok(())
    }

    #[test]
    fn isolated_qubit_mutual_reuse_rejected() -> TestResult {
        // Vertices 2 and 3 have no gates at all; a mutual reuse between
        // them is invisible to the gate-level cycle test but must still be
        // rejected (wire assignment would be circular). Regression test
        // for a hang in the sweet-spot search.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        assert!(spec.pairs_valid(&[pair(2, 3)]));
        assert!(!spec.pairs_valid(&[pair(2, 3), pair(3, 2)]));
        // Longer gate-free chains that loop are also rejected.
        let mut g5 = Graph::new(5);
        g5.add_edge(0, 1);
        let spec5 = CommutingSpec::from_circuit(&qaoa_circuit(&g5))?;
        assert!(!spec5.pairs_valid(&[pair(2, 3), pair(3, 4), pair(4, 2)]));
        Ok(())
    }

    #[test]
    fn schedule_covers_all_edges() -> TestResult {
        let g = gen::random_graph(8, 0.4, 2);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        for matcher in [Matcher::Blossom, Matcher::Greedy] {
            let rounds = schedule(&spec, &[], matcher).ok_or("schedule exists")?;
            let mut seen: Vec<usize> = rounds.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..spec.edges().len()).collect::<Vec<_>>());
            // Each round is a matching: no endpoint repeats.
            for round in &rounds {
                let mut used = std::collections::BTreeSet::new();
                for &ei in round {
                    let (a, b, _) = spec.edges()[ei];
                    assert!(used.insert(a), "round reuses q{a}");
                    assert!(used.insert(b), "round reuses q{b}");
                }
            }
        }
        Ok(())
    }

    #[test]
    fn schedule_with_pairs_respects_dependence() -> TestResult {
        // Path 0-1, 2-3; pair (1 -> 2): gate (2,3) must come after (0,1).
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        let rounds = schedule(&spec, &[pair(1, 2)], Matcher::Blossom).ok_or("schedule exists")?;
        let edge01 = spec
            .edges()
            .iter()
            .position(|&(a, b, _)| (a, b) == (0, 1))
            .ok_or("edge (0,1) exists")?;
        let edge23 = spec
            .edges()
            .iter()
            .position(|&(a, b, _)| (a, b) == (2, 3))
            .ok_or("edge (2,3) exists")?;
        let round_of = |ei: usize| rounds.iter().position(|r| r.contains(&ei));
        let r01 = round_of(edge01).ok_or("edge (0,1) scheduled")?;
        let r23 = round_of(edge23).ok_or("edge (2,3) scheduled")?;
        assert!(r01 < r23);
        Ok(())
    }

    #[test]
    fn schedule_deadlock_returns_none() -> TestResult {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        assert!(schedule(&spec, &[pair(0, 2), pair(2, 0)], Matcher::Blossom).is_none());
        Ok(())
    }

    #[test]
    fn emit_without_pairs_preserves_semantics() -> TestResult {
        use caqr_sim::exact;
        let g = gen::random_graph(5, 0.4, 3);
        let original = qaoa_circuit(&g);
        let spec = CommutingSpec::from_circuit(&original)?;
        let rounds = schedule(&spec, &[], Matcher::Blossom).ok_or("schedule exists")?;
        let (emitted, wire_of) = emit(&spec, &[], &rounds);
        assert_eq!(emitted.num_qubits(), 5);
        assert_eq!(wire_of, vec![0, 1, 2, 3, 4]);
        let d1 = exact::distribution(&original)?;
        let d2 = exact::distribution(&emitted)?;
        let m1: std::collections::BTreeMap<u64, f64> = d1.into_iter().collect();
        for (v, p) in d2 {
            let expect = m1.get(&v).copied().unwrap_or(0.0);
            assert!((p - expect).abs() < 1e-9, "value {v:b}");
        }
        Ok(())
    }

    #[test]
    fn emit_with_pair_reduces_wires_and_inserts_reset() -> TestResult {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        let pairs = [pair(0, 2)];
        let rounds = schedule(&spec, &pairs, Matcher::Blossom).ok_or("schedule exists")?;
        let (emitted, wire_of) = emit(&spec, &pairs, &rounds);
        assert_eq!(emitted.num_qubits(), 3);
        assert_eq!(wire_of[0], wire_of[2]);
        assert_eq!(emitted.mid_circuit_measurement_count(), 1);
        assert_eq!(emitted.iter().filter(|i| i.condition.is_some()).count(), 1);
        Ok(())
    }

    #[test]
    fn emit_reuse_preserves_marginals() -> TestResult {
        // The transformed QAOA circuit must give the same distribution over
        // the original clbits.
        use caqr_sim::exact;
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let original = qaoa_circuit(&g);
        let spec = CommutingSpec::from_circuit(&original)?;
        let pairs = [pair(0, 2)];
        assert!(spec.pairs_valid(&pairs));
        let rounds = schedule(&spec, &pairs, Matcher::Blossom).ok_or("schedule exists")?;
        let (emitted, _) = emit(&spec, &pairs, &rounds);
        let d1: std::collections::BTreeMap<u64, f64> =
            exact::distribution(&original)?.into_iter().collect();
        let d2 = exact::distribution(&emitted)?;
        let mut merged: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for (v, p) in d2 {
            *merged.entry(v & 0b1111).or_insert(0.0) += p;
        }
        for (v, p) in &d1 {
            let got = merged.get(v).copied().unwrap_or(0.0);
            assert!((got - p).abs() < 1e-9, "value {v:04b}: want {p}, got {got}");
        }
        Ok(())
    }

    #[test]
    fn chained_pairs_emit() -> TestResult {
        // Triangle-free path: 0-1, 2-3, 4-5; chain 0 -> 2 -> 4.
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        let pairs = [pair(0, 2), pair(2, 4)];
        assert!(spec.pairs_valid(&pairs));
        let rounds = schedule(&spec, &pairs, Matcher::Blossom).ok_or("schedule exists")?;
        let (emitted, wire_of) = emit(&spec, &pairs, &rounds);
        assert_eq!(emitted.num_qubits(), 4);
        assert_eq!(wire_of[0], wire_of[2]);
        assert_eq!(wire_of[2], wire_of[4]);
        Ok(())
    }

    #[test]
    fn isolated_vertices_still_emitted() -> TestResult {
        let mut g = Graph::new(3);
        g.add_edge(0, 1); // vertex 2 isolated
        let spec = CommutingSpec::from_circuit(&qaoa_circuit(&g))?;
        let rounds = schedule(&spec, &[], Matcher::Blossom).ok_or("schedule exists")?;
        let (emitted, _) = emit(&spec, &[], &rounds);
        // All three qubits have H + RX + measure.
        assert_eq!(emitted.count_gates(|g| matches!(g, Gate::Measure)), 3);
        Ok(())
    }
}
