//! CaQR: compiler-assisted qubit reuse through dynamic circuits.
//!
//! A Rust reproduction of *CaQR: A Compiler-Assisted Approach for Qubit
//! Reuse through Dynamic Circuit* (ASPLOS 2023). With hardware support for
//! mid-circuit measurement and reset, a qubit whose gates have all finished
//! can be measured, reset, and handed to a logical qubit that has not yet
//! started — shrinking qubit usage, relieving SWAP pressure, and often
//! improving fidelity.
//!
//! The crate provides both passes from the paper:
//!
//! * [`qs`] — **QS-CaQR**, targeting qubit saving: transforms the logical
//!   circuit down to a requested qubit budget (or sweeps every achievable
//!   budget), choosing reuse pairs that hurt the critical path least. Has
//!   dedicated paths for regular circuits (§3.2.1) and commuting-gate
//!   circuits like QAOA (§3.2.2: graph-coloring bound + matching-based
//!   scheduling).
//! * [`sr`] — **SR-CaQR**, targeting SWAP reduction and fidelity: a
//!   dynamic-circuit-aware layout/routing pass that delays off-critical
//!   gates, maps fresh logical qubits onto reclaimed physical qubits, and
//!   picks physical qubits by distance and error variability (§3.3).
//!
//! Both are organised as a **pass pipeline**: [`pass`] defines the
//! [`Pass`] trait and the [`CompileCtx`] / [`AnalysisCache`] every pass
//! operates on, [`manager`] runs named pass sequences (each [`Strategy`]
//! is a declarative recipe), and [`error`] is the unified [`CaqrError`]
//! hierarchy every fallible entry point returns.
//!
//! Supporting machinery: [`analysis`] (the reuse Conditions 1 and 2),
//! [`transform`] (applying a reuse plan to a circuit), [`baseline`] (a
//! SABRE-style no-reuse compiler standing in for Qiskit optimization
//! level 3), [`router`] (pluggable routing backends: SWAP insertion on
//! fixed-coupling devices, greedy DPQA movement scheduling on
//! neutral-atom grids), [`esp`] (estimated
//! success probability + fused report metrics), [`advisor`] (the paper's
//! "will reuse help this application?" pre-check), and [`pipeline`]
//! (one-call compilation + reporting). The `caqr` binary wraps all of it
//! behind a QASM-in / QASM-out command line.
//!
//! # Examples
//!
//! Compress a 5-qubit Bernstein–Vazirani circuit to 2 qubits (the paper's
//! Fig. 1):
//!
//! ```
//! use caqr::qs;
//! use caqr_circuit::{Circuit, Clbit, Qubit};
//!
//! let mut bv = Circuit::new(5, 4);
//! for i in 0..4 { bv.h(Qubit::new(i)); }
//! bv.x(Qubit::new(4));
//! bv.h(Qubit::new(4));
//! for i in 0..4 {
//!     bv.cx(Qubit::new(i), Qubit::new(4));
//!     bv.h(Qubit::new(i));
//! }
//! for i in 0..4 { bv.measure(Qubit::new(i), Clbit::new(i)); }
//!
//! let sweep = qs::regular::sweep(&bv, &caqr_circuit::depth::UnitDurations);
//! let smallest = sweep.last().unwrap();
//! assert_eq!(smallest.circuit.num_qubits(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod analysis;
pub mod baseline;
pub mod cancel;
pub mod commuting;
pub mod error;
pub mod esp;
pub mod manager;
pub mod pass;
pub mod pipeline;
pub mod qs;
pub mod router;
pub mod sr;
pub mod transform;
pub mod width;

pub use cancel::CancelToken;
pub use error::CaqrError;
pub use manager::{create_pass, PassManager, PassObserver, REGISTERED_PASSES};
pub use pass::{AnalysisCache, CompileCtx, Pass};
pub use pipeline::{
    compile, compile_template, compile_template_traced_cancellable_with, compile_template_with,
    compile_traced, compile_traced_cancellable, compile_traced_cancellable_with,
    compile_traced_with, compile_with, CompileReport, Stage, StageTrace, Strategy,
};
pub use router::{
    CostModel, CostModelSpec, RoutedProgram, RouterConfig, RoutingBackend, RoutingBackendSpec,
    COST_MODEL_GRAMMAR, ROUTING_BACKEND_GRAMMAR,
};
pub use transform::{ReuseError, ReusePlan, TransformedCircuit};
