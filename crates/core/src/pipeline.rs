//! One-call compilation pipelines and the per-circuit report the paper's
//! tables are built from.

use crate::commuting::CommutingSpec;
use crate::router::RouteError;
use crate::{baseline, esp, qs, sr};
use caqr_arch::Device;
use caqr_circuit::depth::duration_dt;
use caqr_circuit::Circuit;
use std::fmt;

/// Which compiler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No-reuse baseline (Qiskit-O3 stand-in).
    Baseline,
    /// QS-CaQR at the maximum achievable reuse ("Ours with Maximal Reuse").
    QsMaxReuse,
    /// QS-CaQR at the sweep point with minimum compiled depth ("Ours with
    /// Minimal Depth").
    QsMinDepth,
    /// QS-CaQR at the sweep point with the fewest SWAPs (Table 2's
    /// "QS-CaQR (MIN-SWAP)" column).
    QsMinSwap,
    /// QS-CaQR at the sweep point with the best estimated success
    /// probability — the paper's fidelity-objective selection (§3.2.1).
    QsMaxEsp,
    /// SR-CaQR.
    Sr,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Baseline => "baseline",
            Strategy::QsMaxReuse => "qs-max-reuse",
            Strategy::QsMinDepth => "qs-min-depth",
            Strategy::QsMinSwap => "qs-min-swap",
            Strategy::QsMaxEsp => "qs-max-esp",
            Strategy::Sr => "sr",
        })
    }
}

/// The metrics row the paper reports per compiled circuit.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Strategy that produced this circuit.
    pub strategy: Strategy,
    /// Physical qubits used.
    pub qubits: usize,
    /// Compiled circuit depth.
    pub depth: usize,
    /// Compiled duration in `dt`.
    pub duration_dt: u64,
    /// SWAP gates inserted.
    pub swaps: usize,
    /// Total two-qubit gates (CX/CZ/RZZ/CP + SWAPs).
    pub two_qubit_gates: usize,
    /// Estimated success probability.
    pub esp: f64,
    /// The hardware-compliant compiled circuit.
    pub circuit: Circuit,
}

impl CompileReport {
    fn from_routed(
        strategy: Strategy,
        routed: crate::router::RoutedCircuit,
        device: &Device,
    ) -> Self {
        let circuit = routed.circuit;
        CompileReport {
            strategy,
            qubits: routed.physical_qubits_used,
            depth: circuit.depth(),
            duration_dt: duration_dt(&circuit, &device.duration_model()),
            swaps: routed.swap_count,
            two_qubit_gates: circuit.two_qubit_gate_count(),
            esp: esp::estimate(&circuit, device),
            circuit,
        }
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: qubits={} depth={} duration={}dt swaps={} 2q={} esp={:.4}",
            self.strategy,
            self.qubits,
            self.depth,
            self.duration_dt,
            self.swaps,
            self.two_qubit_gates,
            self.esp
        )
    }
}

/// Generates the QS sweep (regular or commuting path, chosen by circuit
/// shape) as *logical* circuits, then routes each onto the device. The
/// paper's QS flow: logical transform first, hardware mapping second.
fn qs_sweep_routed(
    circuit: &Circuit,
    device: &Device,
) -> Result<Vec<(usize, crate::router::RoutedCircuit)>, RouteError> {
    let points = match CommutingSpec::from_circuit(circuit) {
        Ok(spec) => qs::commuting::sweep(&spec, sr::default_matcher(&spec)),
        Err(_) => qs::regular::sweep(circuit, &device.logical_duration_model()),
    };
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let routed = baseline::compile(&p.circuit, device)?;
        out.push((p.qubits, routed));
    }
    Ok(out)
}

/// Compiles `circuit` onto `device` under `strategy` and reports the
/// paper's metrics.
///
/// # Errors
///
/// Returns [`RouteError::OutOfQubits`] when the circuit cannot fit the
/// device under the chosen strategy.
pub fn compile(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
) -> Result<CompileReport, RouteError> {
    // Peephole cleanup first (inverse cancellation, rotation merging) —
    // the "optimization level 3" behaviour every strategy shares.
    let circuit = &caqr_circuit::optimize::peephole(circuit);
    match strategy {
        Strategy::Baseline => {
            let routed = baseline::compile(circuit, device)?;
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
        Strategy::Sr => {
            let routed = if CommutingSpec::from_circuit(circuit).is_ok() {
                sr::compile_commuting(circuit, device, 0.1)?
            } else {
                sr::compile(circuit, device)?
            };
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
        Strategy::QsMaxReuse => {
            let sweep = qs_sweep_routed(circuit, device)?;
            let (_, routed) = sweep
                .into_iter()
                .min_by_key(|(qubits, _)| *qubits)
                .expect("sweep contains at least the original circuit");
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
        Strategy::QsMinDepth => {
            let sweep = qs_sweep_routed(circuit, device)?;
            let (_, routed) = sweep
                .into_iter()
                .min_by_key(|(_, r)| (r.circuit.depth(), r.physical_qubits_used))
                .expect("sweep contains at least the original circuit");
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
        Strategy::QsMinSwap => {
            let sweep = qs_sweep_routed(circuit, device)?;
            let (_, routed) = sweep
                .into_iter()
                .min_by_key(|(_, r)| (r.swap_count, r.circuit.depth()))
                .expect("sweep contains at least the original circuit");
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
        Strategy::QsMaxEsp => {
            let sweep = qs_sweep_routed(circuit, device)?;
            let (_, routed) = sweep
                .into_iter()
                .max_by(|(_, a), (_, b)| {
                    esp::estimate(&a.circuit, device)
                        .total_cmp(&esp::estimate(&b.circuit, device))
                })
                .expect("sweep contains at least the original circuit");
            Ok(CompileReport::from_routed(strategy, routed, device))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            c.cx(q(i), q(data));
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() {
        let dev = Device::mumbai(7);
        let c = bv(6);
        for strategy in [
            Strategy::Baseline,
            Strategy::QsMaxReuse,
            Strategy::QsMinDepth,
            Strategy::QsMinSwap,
            Strategy::QsMaxEsp,
            Strategy::Sr,
        ] {
            let report = compile(&c, &dev, strategy).unwrap();
            for instr in &report.circuit {
                if instr.is_two_qubit() {
                    assert!(
                        dev.topology()
                            .are_coupled(instr.qubits[0].index(), instr.qubits[1].index()),
                        "{strategy}: non-coupled 2q gate"
                    );
                }
            }
            assert!(report.esp > 0.0 && report.esp <= 1.0);
            assert!(report.swaps <= report.two_qubit_gates);
        }
    }

    #[test]
    fn max_reuse_minimizes_qubits() {
        let dev = Device::mumbai(7);
        let c = bv(6);
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let base = compile(&c, &dev, Strategy::Baseline).unwrap();
        assert_eq!(max.qubits, 2, "BV always compresses to 2 qubits");
        assert_eq!(base.qubits, 6);
        // The trade-off: fewer qubits, deeper circuit.
        assert!(max.depth >= base.depth / 2);
    }

    #[test]
    fn min_depth_never_deeper_than_max_reuse() {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let min_depth = compile(&c, &dev, Strategy::QsMinDepth).unwrap();
        assert!(min_depth.depth <= max.depth);
    }

    #[test]
    fn min_swap_never_more_swaps() {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let min_swap = compile(&c, &dev, Strategy::QsMinSwap).unwrap();
        for s in [Strategy::Baseline, Strategy::QsMaxReuse] {
            let other = compile(&c, &dev, s).unwrap();
            assert!(
                min_swap.swaps <= other.swaps,
                "min-swap {} vs {s} {}",
                min_swap.swaps,
                other.swaps
            );
        }
    }

    #[test]
    fn report_display() {
        let dev = Device::mumbai(7);
        let r = compile(&bv(5), &dev, Strategy::Baseline).unwrap();
        let s = format!("{r}");
        assert!(s.contains("baseline"));
        assert!(s.contains("qubits="));
    }

    #[test]
    fn qaoa_goes_through_commuting_path() {
        let dev = Device::mumbai(7);
        let g = caqr_graph::gen::random_graph(6, 0.3, 3);
        let mut c = Circuit::new(6, 6);
        for v in 0..6 {
            c.h(q(v));
        }
        for (u, v) in g.edges() {
            c.rzz(0.6, q(u), q(v));
        }
        for v in 0..6 {
            c.rx(0.5, q(v));
        }
        c.measure_all();
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let bound = crate::qs::commuting::min_qubits(
            &CommutingSpec::from_circuit(&c).unwrap(),
        );
        assert!(max.qubits <= 6);
        assert!(max.qubits + 1 >= bound);
    }
}
