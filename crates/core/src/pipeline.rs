//! One-call compilation pipelines and the per-circuit report the paper's
//! tables are built from.

use crate::commuting::CommutingSpec;
use crate::router::RouteError;
use crate::{baseline, esp, qs, sr};
use caqr_arch::Device;
use caqr_circuit::depth::duration_dt;
use caqr_circuit::Circuit;
use std::fmt;
use std::time::{Duration, Instant};

/// Which compiler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No-reuse baseline (Qiskit-O3 stand-in).
    Baseline,
    /// QS-CaQR at the maximum achievable reuse ("Ours with Maximal Reuse").
    QsMaxReuse,
    /// QS-CaQR at the sweep point with minimum compiled depth ("Ours with
    /// Minimal Depth").
    QsMinDepth,
    /// QS-CaQR at the sweep point with the fewest SWAPs (Table 2's
    /// "QS-CaQR (MIN-SWAP)" column).
    QsMinSwap,
    /// QS-CaQR at the sweep point with the best estimated success
    /// probability — the paper's fidelity-objective selection (§3.2.1).
    QsMaxEsp,
    /// SR-CaQR.
    Sr,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Baseline => "baseline",
            Strategy::QsMaxReuse => "qs-max-reuse",
            Strategy::QsMinDepth => "qs-min-depth",
            Strategy::QsMinSwap => "qs-min-swap",
            Strategy::QsMaxEsp => "qs-max-esp",
            Strategy::Sr => "sr",
        })
    }
}

/// The metrics row the paper reports per compiled circuit.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Strategy that produced this circuit.
    pub strategy: Strategy,
    /// Physical qubits used.
    pub qubits: usize,
    /// Compiled circuit depth.
    pub depth: usize,
    /// Compiled duration in `dt`.
    pub duration_dt: u64,
    /// SWAP gates inserted.
    pub swaps: usize,
    /// Total two-qubit gates (CX/CZ/RZZ/CP + SWAPs).
    pub two_qubit_gates: usize,
    /// Estimated success probability.
    pub esp: f64,
    /// The hardware-compliant compiled circuit.
    pub circuit: Circuit,
}

impl CompileReport {
    fn from_routed(
        strategy: Strategy,
        routed: crate::router::RoutedCircuit,
        device: &Device,
    ) -> Self {
        let circuit = routed.circuit;
        CompileReport {
            strategy,
            qubits: routed.physical_qubits_used,
            depth: circuit.depth(),
            duration_dt: duration_dt(&circuit, &device.duration_model()),
            swaps: routed.swap_count,
            two_qubit_gates: circuit.two_qubit_gate_count(),
            esp: esp::estimate(&circuit, device),
            circuit,
        }
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: qubits={} depth={} duration={}dt swaps={} 2q={} esp={:.4}",
            self.strategy,
            self.qubits,
            self.depth,
            self.duration_dt,
            self.swaps,
            self.two_qubit_gates,
            self.esp
        )
    }
}

/// A pipeline stage, as reported by [`compile_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Peephole cleanup: inverse cancellation, rotation merging.
    Optimize,
    /// Circuit-shape analysis: commuting-region detection (which decides
    /// between the regular and QAOA paths) and width analysis.
    Analysis,
    /// The reuse transform: QS sweep generation (regular or
    /// matching-scheduled commuting path).
    Reuse,
    /// Hardware mapping: SWAP-inserting routing (baseline router, or the
    /// dynamic-circuit-aware SR router which fuses reuse into routing).
    Routing,
    /// Sweep-point selection and report assembly (depth/duration/ESP
    /// scoring of the candidates).
    Selection,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Optimize,
        Stage::Analysis,
        Stage::Reuse,
        Stage::Routing,
        Stage::Selection,
    ];

    /// A short stable identifier (used in metric tables and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Optimize => "optimize",
            Stage::Analysis => "analysis",
            Stage::Reuse => "reuse",
            Stage::Routing => "routing",
            Stage::Selection => "selection",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stage wall-clock spans recorded while compiling one circuit.
///
/// A stage may appear more than once (QS routes every sweep point);
/// [`StageTrace::stage_total`] aggregates.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    spans: Vec<(Stage, Duration)>,
}

impl StageTrace {
    /// Records one span.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.spans.push((stage, elapsed));
    }

    /// Runs `f`, recording its wall-clock under `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// All recorded spans, in execution order.
    pub fn spans(&self) -> &[(Stage, Duration)] {
        &self.spans
    }

    /// Total time attributed to `stage`.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.spans
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total traced time across all stages.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|(_, d)| *d).sum()
    }
}

/// Routes every QS sweep point onto the device. The paper's QS flow:
/// logical transform first, hardware mapping second.
fn route_sweep(
    points: Vec<qs::SweepPoint>,
    device: &Device,
) -> Result<Vec<(usize, crate::router::RoutedCircuit)>, RouteError> {
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let routed = baseline::compile(&p.circuit, device)?;
        out.push((p.qubits, routed));
    }
    Ok(out)
}

/// Compiles `circuit` onto `device` under `strategy` and reports the
/// paper's metrics.
///
/// # Errors
///
/// Returns [`RouteError::OutOfQubits`] when the circuit cannot fit the
/// device under the chosen strategy.
pub fn compile(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
) -> Result<CompileReport, RouteError> {
    compile_traced(circuit, device, strategy).0
}

/// [`compile`], additionally reporting where the wall-clock went.
///
/// The [`StageTrace`] is returned even when compilation fails, so callers
/// can attribute the cost of failed jobs too. This is the entry point the
/// batch-compilation engine (`caqr-engine`) builds its per-stage metrics
/// on.
pub fn compile_traced(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
) -> (Result<CompileReport, RouteError>, StageTrace) {
    let mut trace = StageTrace::default();
    // Peephole cleanup first (inverse cancellation, rotation merging) —
    // the "optimization level 3" behaviour every strategy shares.
    let circuit = trace.time(Stage::Optimize, || {
        caqr_circuit::optimize::peephole(circuit)
    });
    let result = compile_stages(&circuit, device, strategy, &mut trace);
    (result, trace)
}

fn compile_stages(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
    trace: &mut StageTrace,
) -> Result<CompileReport, RouteError> {
    if strategy == Strategy::Baseline {
        let routed = trace.time(Stage::Routing, || baseline::compile(circuit, device))?;
        return Ok(trace.time(Stage::Selection, || {
            CompileReport::from_routed(strategy, routed, device)
        }));
    }

    // Commuting-region detection decides between the regular path and the
    // QAOA matching-scheduler path for both SR and QS.
    let spec = trace.time(Stage::Analysis, || CommutingSpec::from_circuit(circuit));

    if strategy == Strategy::Sr {
        // SR-CaQR fuses reuse into its dynamic-circuit-aware router, so the
        // whole pass is attributed to routing.
        let routed = trace.time(Stage::Routing, || match &spec {
            Ok(_) => sr::compile_commuting(circuit, device, 0.1),
            Err(_) => sr::compile(circuit, device),
        })?;
        return Ok(trace.time(Stage::Selection, || {
            CompileReport::from_routed(strategy, routed, device)
        }));
    }

    // QS-CaQR: generate the reuse sweep as logical circuits, route every
    // point, then pick the point the strategy asks for.
    let points = trace.time(Stage::Reuse, || match &spec {
        Ok(spec) => qs::commuting::sweep(spec, sr::default_matcher(spec)),
        Err(_) => qs::regular::sweep(circuit, &device.logical_duration_model()),
    });
    let sweep = trace.time(Stage::Routing, || route_sweep(points, device))?;
    let routed = trace.time(Stage::Selection, || {
        let picked = match strategy {
            Strategy::QsMaxReuse => sweep.into_iter().min_by_key(|(qubits, _)| *qubits),
            Strategy::QsMinDepth => sweep
                .into_iter()
                .min_by_key(|(_, r)| (r.circuit.depth(), r.physical_qubits_used)),
            Strategy::QsMinSwap => sweep
                .into_iter()
                .min_by_key(|(_, r)| (r.swap_count, r.circuit.depth())),
            Strategy::QsMaxEsp => sweep.into_iter().max_by(|(_, a), (_, b)| {
                esp::estimate(&a.circuit, device).total_cmp(&esp::estimate(&b.circuit, device))
            }),
            Strategy::Baseline | Strategy::Sr => unreachable!("handled above"),
        };
        let (_, routed) = picked.expect("sweep contains at least the original circuit");
        routed
    });
    Ok(CompileReport::from_routed(strategy, routed, device))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            c.cx(q(i), q(data));
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() {
        let dev = Device::mumbai(7);
        let c = bv(6);
        for strategy in [
            Strategy::Baseline,
            Strategy::QsMaxReuse,
            Strategy::QsMinDepth,
            Strategy::QsMinSwap,
            Strategy::QsMaxEsp,
            Strategy::Sr,
        ] {
            let report = compile(&c, &dev, strategy).unwrap();
            for instr in &report.circuit {
                if instr.is_two_qubit() {
                    assert!(
                        dev.topology()
                            .are_coupled(instr.qubits[0].index(), instr.qubits[1].index()),
                        "{strategy}: non-coupled 2q gate"
                    );
                }
            }
            assert!(report.esp > 0.0 && report.esp <= 1.0);
            assert!(report.swaps <= report.two_qubit_gates);
        }
    }

    #[test]
    fn max_reuse_minimizes_qubits() {
        let dev = Device::mumbai(7);
        let c = bv(6);
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let base = compile(&c, &dev, Strategy::Baseline).unwrap();
        assert_eq!(max.qubits, 2, "BV always compresses to 2 qubits");
        assert_eq!(base.qubits, 6);
        // The trade-off: fewer qubits, deeper circuit.
        assert!(max.depth >= base.depth / 2);
    }

    #[test]
    fn min_depth_never_deeper_than_max_reuse() {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let min_depth = compile(&c, &dev, Strategy::QsMinDepth).unwrap();
        assert!(min_depth.depth <= max.depth);
    }

    #[test]
    fn min_swap_never_more_swaps() {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let min_swap = compile(&c, &dev, Strategy::QsMinSwap).unwrap();
        for s in [Strategy::Baseline, Strategy::QsMaxReuse] {
            let other = compile(&c, &dev, s).unwrap();
            assert!(
                min_swap.swaps <= other.swaps,
                "min-swap {} vs {s} {}",
                min_swap.swaps,
                other.swaps
            );
        }
    }

    #[test]
    fn traced_compile_matches_untraced_and_attributes_time() {
        let dev = Device::mumbai(7);
        let c = bv(6);
        for strategy in [Strategy::Baseline, Strategy::QsMaxReuse, Strategy::Sr] {
            let plain = compile(&c, &dev, strategy).unwrap();
            let (traced, trace) = compile_traced(&c, &dev, strategy);
            let traced = traced.unwrap();
            assert_eq!(plain.circuit, traced.circuit, "{strategy}");
            assert_eq!(plain.qubits, traced.qubits);
            assert!(!trace.spans().is_empty());
            assert!(trace.total() >= trace.stage_total(Stage::Routing));
            // Every strategy routes; only QS records a reuse span.
            assert!(
                trace.stage_total(Stage::Routing) > Duration::ZERO,
                "{strategy}"
            );
            if strategy == Strategy::QsMaxReuse {
                assert!(trace.spans().iter().any(|(s, _)| *s == Stage::Reuse));
            }
        }
    }

    #[test]
    fn trace_survives_failure() {
        // 10 logical qubits cannot fit a 3-qubit line under baseline.
        let dev = Device::with_synthetic_calibration(caqr_arch::Topology::line(3), 1);
        let (result, trace) = compile_traced(&bv(10), &dev, Strategy::Baseline);
        assert!(result.is_err());
        assert!(trace.spans().iter().any(|(s, _)| *s == Stage::Optimize));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["optimize", "analysis", "reuse", "routing", "selection"]
        );
        assert_eq!(format!("{}", Stage::Routing), "routing");
    }

    #[test]
    fn report_display() {
        let dev = Device::mumbai(7);
        let r = compile(&bv(5), &dev, Strategy::Baseline).unwrap();
        let s = format!("{r}");
        assert!(s.contains("baseline"));
        assert!(s.contains("qubits="));
    }

    #[test]
    fn qaoa_goes_through_commuting_path() {
        let dev = Device::mumbai(7);
        let g = caqr_graph::gen::random_graph(6, 0.3, 3);
        let mut c = Circuit::new(6, 6);
        for v in 0..6 {
            c.h(q(v));
        }
        for (u, v) in g.edges() {
            c.rzz(0.6, q(u), q(v));
        }
        for v in 0..6 {
            c.rx(0.5, q(v));
        }
        c.measure_all();
        let max = compile(&c, &dev, Strategy::QsMaxReuse).unwrap();
        let bound = crate::qs::commuting::min_qubits(&CommutingSpec::from_circuit(&c).unwrap());
        assert!(max.qubits <= 6);
        assert!(max.qubits + 1 >= bound);
    }
}
