//! One-call compilation pipelines and the per-circuit report the paper's
//! tables are built from.
//!
//! Since the pass-manager refactor this module is a thin veneer: every
//! [`Strategy`] maps to a declarative pass-name recipe
//! ([`Strategy::pass_names`]) executed by [`crate::manager::PassManager`],
//! and [`compile_traced`] is the same run with a [`StageTrace`]-recording
//! observer installed.

use crate::error::CaqrError;
use crate::esp;
use crate::manager::PassManager;
use crate::router::RouterConfig;
use caqr_arch::Device;
use caqr_circuit::{Circuit, ParametricCircuit};
use std::fmt;
use std::time::{Duration, Instant};

/// Which compiler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No-reuse baseline (Qiskit-O3 stand-in).
    Baseline,
    /// QS-CaQR at the maximum achievable reuse ("Ours with Maximal Reuse").
    QsMaxReuse,
    /// QS-CaQR at the sweep point with minimum compiled depth ("Ours with
    /// Minimal Depth").
    QsMinDepth,
    /// QS-CaQR at the sweep point with the fewest SWAPs (Table 2's
    /// "QS-CaQR (MIN-SWAP)" column).
    QsMinSwap,
    /// QS-CaQR at the sweep point with the best estimated success
    /// probability — the paper's fidelity-objective selection (§3.2.1).
    QsMaxEsp,
    /// SR-CaQR.
    Sr,
}

impl Strategy {
    /// Every strategy, in table order.
    pub const ALL: [Strategy; 6] = [
        Strategy::Baseline,
        Strategy::QsMaxReuse,
        Strategy::QsMinDepth,
        Strategy::QsMinSwap,
        Strategy::QsMaxEsp,
        Strategy::Sr,
    ];

    /// The pass-sequence recipe this strategy declares: the registered
    /// pass names, in execution order.
    pub fn pass_names(self) -> &'static [&'static str] {
        match self {
            Strategy::Baseline => &["optimize", "baseline-route", "report"],
            Strategy::Sr => &["optimize", "commuting-analysis", "sr-route", "report"],
            Strategy::QsMaxReuse => &[
                "optimize",
                "commuting-analysis",
                "qs-sweep",
                "route-sweep",
                "select-max-reuse",
                "report",
            ],
            Strategy::QsMinDepth => &[
                "optimize",
                "commuting-analysis",
                "qs-sweep",
                "route-sweep",
                "select-min-depth",
                "report",
            ],
            Strategy::QsMinSwap => &[
                "optimize",
                "commuting-analysis",
                "qs-sweep",
                "route-sweep",
                "select-min-swap",
                "report",
            ],
            Strategy::QsMaxEsp => &[
                "optimize",
                "commuting-analysis",
                "qs-sweep",
                "route-sweep",
                "select-max-esp",
                "report",
            ],
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Baseline => "baseline",
            Strategy::QsMaxReuse => "qs-max-reuse",
            Strategy::QsMinDepth => "qs-min-depth",
            Strategy::QsMinSwap => "qs-min-swap",
            Strategy::QsMaxEsp => "qs-max-esp",
            Strategy::Sr => "sr",
        })
    }
}

/// The metrics row the paper reports per compiled circuit.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Strategy that produced this circuit.
    pub strategy: Strategy,
    /// Physical qubits used.
    pub qubits: usize,
    /// Compiled circuit depth.
    pub depth: usize,
    /// Compiled duration in `dt`.
    pub duration_dt: u64,
    /// SWAP gates inserted.
    pub swaps: usize,
    /// DPQA movement stages scheduled (0 for the SWAP backend).
    pub movement_stages: usize,
    /// Total two-qubit gates (CX/CZ/RZZ/CP + SWAPs).
    pub two_qubit_gates: usize,
    /// Estimated success probability.
    pub esp: f64,
    /// The hardware-compliant compiled circuit.
    pub circuit: Circuit,
}

impl CompileReport {
    /// Builds the report row from a routed circuit, computing every
    /// derived metric (depth, duration, 2q count, ESP) in one traversal
    /// via [`esp::circuit_stats`].
    pub(crate) fn from_routed(
        strategy: Strategy,
        routed: crate::router::RoutedCircuit,
        device: &Device,
    ) -> Self {
        let circuit = routed.circuit;
        let stats = esp::circuit_stats(&circuit, device);
        CompileReport {
            strategy,
            qubits: routed.physical_qubits_used,
            depth: stats.depth,
            duration_dt: stats.duration_dt,
            swaps: routed.swap_count,
            movement_stages: routed.movement_stages,
            two_qubit_gates: stats.two_qubit_gates,
            esp: stats.esp,
            circuit,
        }
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: qubits={} depth={} duration={}dt swaps={} 2q={} esp={:.4}",
            self.strategy,
            self.qubits,
            self.depth,
            self.duration_dt,
            self.swaps,
            self.two_qubit_gates,
            self.esp
        )?;
        // SWAP-backend rows keep their historical byte-exact form; only
        // movement compilations grow the extra column.
        if self.movement_stages > 0 {
            write!(f, " moves={}", self.movement_stages)?;
        }
        Ok(())
    }
}

/// A coarse pipeline stage, as reported by [`compile_traced`]. Every pass
/// belongs to exactly one stage; per-pass spans are recorded alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Peephole cleanup: inverse cancellation, rotation merging.
    Optimize,
    /// Circuit-shape analysis: commuting-region detection (which decides
    /// between the regular and QAOA paths) and width analysis.
    Analysis,
    /// The reuse transform: QS sweep generation (regular or
    /// matching-scheduled commuting path).
    Reuse,
    /// Hardware mapping: SWAP-inserting routing (baseline router, or the
    /// dynamic-circuit-aware SR router which fuses reuse into routing).
    Routing,
    /// Sweep-point selection and report assembly (depth/duration/ESP
    /// scoring of the candidates).
    Selection,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Optimize,
        Stage::Analysis,
        Stage::Reuse,
        Stage::Routing,
        Stage::Selection,
    ];

    /// A short stable identifier (used in metric tables and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Optimize => "optimize",
            Stage::Analysis => "analysis",
            Stage::Reuse => "reuse",
            Stage::Routing => "routing",
            Stage::Selection => "selection",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stage and per-pass wall-clock spans recorded while compiling one
/// circuit.
///
/// A stage may appear more than once (QS routes every sweep point);
/// [`StageTrace::stage_total`] aggregates. Since the pass-manager
/// refactor, each span also carries the pass name that produced it —
/// [`StageTrace::pass_spans`] exposes the fine-grained view.
#[derive(Debug, Clone, Default)]
pub struct StageTrace {
    spans: Vec<(Stage, Duration)>,
    passes: Vec<(&'static str, Duration)>,
}

impl StageTrace {
    /// Records one span.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.spans.push((stage, elapsed));
    }

    /// Records one named pass span (in addition to its stage span).
    pub fn record_pass(&mut self, name: &'static str, elapsed: Duration) {
        self.passes.push((name, elapsed));
    }

    /// Runs `f`, recording its wall-clock under `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// All recorded spans, in execution order.
    pub fn spans(&self) -> &[(Stage, Duration)] {
        &self.spans
    }

    /// All recorded named pass spans, in execution order.
    pub fn pass_spans(&self) -> &[(&'static str, Duration)] {
        &self.passes
    }

    /// Total time attributed to `stage`.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.spans
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total time attributed to the pass named `name`.
    pub fn pass_total(&self, name: &str) -> Duration {
        self.passes
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total traced time across all stages.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|(_, d)| *d).sum()
    }
}

/// Compiles `circuit` onto `device` under `strategy` and reports the
/// paper's metrics.
///
/// # Errors
///
/// Returns [`CaqrError::OutOfQubits`] when the circuit cannot fit the
/// device under the chosen strategy.
pub fn compile(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
) -> Result<CompileReport, CaqrError> {
    PassManager::for_strategy(strategy).run(circuit, device, strategy)
}

/// [`compile`] under an explicit routing policy: a bare swap-scoring
/// [`CostModelSpec`](crate::router::CostModelSpec) (SWAP backend, the
/// historical behaviour) or a full [`RouterConfig`] selecting the backend
/// too — every routing pass in the strategy's recipe uses it.
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_with(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
    router_config: impl Into<RouterConfig>,
) -> Result<CompileReport, CaqrError> {
    compile_traced_cancellable_with(
        circuit,
        device,
        strategy,
        router_config,
        &crate::cancel::CancelToken::new(),
    )
    .0
}

/// [`compile`], additionally reporting where the wall-clock went.
///
/// The [`StageTrace`] is returned even when compilation fails — the
/// observer hook fires after every executed pass, including the failing
/// one — so callers can attribute the cost of failed jobs too. This is the
/// entry point the batch-compilation engine (`caqr-engine`) builds its
/// per-stage and per-pass metrics on.
pub fn compile_traced(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
) -> (Result<CompileReport, CaqrError>, StageTrace) {
    compile_traced_cancellable(
        circuit,
        device,
        strategy,
        &crate::cancel::CancelToken::new(),
    )
}

/// [`compile_traced`] under an explicit routing policy (a
/// [`CostModelSpec`](crate::router::CostModelSpec) or [`RouterConfig`]).
pub fn compile_traced_with(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
    router_config: impl Into<RouterConfig>,
) -> (Result<CompileReport, CaqrError>, StageTrace) {
    compile_traced_cancellable_with(
        circuit,
        device,
        strategy,
        router_config,
        &crate::cancel::CancelToken::new(),
    )
}

/// [`compile_traced`] under a [`crate::cancel::CancelToken`], checked at
/// every pass boundary.
///
/// This is the entry point `caqr-serve` drives: a request deadline becomes
/// a token, and a tripped token surfaces as
/// [`CaqrError::DeadlineExceeded`] (HTTP 504) with the partial
/// [`StageTrace`] still attributing the time already spent.
pub fn compile_traced_cancellable(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
    cancel: &crate::cancel::CancelToken,
) -> (Result<CompileReport, CaqrError>, StageTrace) {
    compile_traced_cancellable_with(
        circuit,
        device,
        strategy,
        crate::router::CostModelSpec::Hop,
        cancel,
    )
}

/// [`compile_traced_cancellable`] under an explicit routing policy (a
/// [`CostModelSpec`](crate::router::CostModelSpec) or [`RouterConfig`]) —
/// the fully general entry point the batch engine and HTTP service drive:
/// strategy, routing policy, deadline token, and instrumentation all in
/// one call.
pub fn compile_traced_cancellable_with(
    circuit: &Circuit,
    device: &Device,
    strategy: Strategy,
    router_config: impl Into<RouterConfig>,
    cancel: &crate::cancel::CancelToken,
) -> (Result<CompileReport, CaqrError>, StageTrace) {
    let mut trace = StageTrace::default();
    let result = PassManager::for_strategy(strategy).run_observed_cancellable_with(
        circuit,
        device,
        strategy,
        router_config,
        &mut trace,
        cancel,
    );
    (result, trace)
}

/// Compiles a parametric template through the full pipeline. The
/// returned report's circuit still carries the template's symbolic
/// slots; its structural metrics (qubits, depth, duration, SWAPs, 2q
/// count, ESP) are angle-independent and therefore valid for **every**
/// binding. Stamp concrete angles in with
/// [`caqr_circuit::parametric::bind_circuit`] — an O(gates) walk.
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_template(
    template: &ParametricCircuit,
    device: &Device,
    strategy: Strategy,
) -> Result<CompileReport, CaqrError> {
    compile_template_with(
        template,
        device,
        strategy,
        crate::router::CostModelSpec::Hop,
    )
}

/// [`compile_template`] under an explicit routing policy (a
/// [`CostModelSpec`](crate::router::CostModelSpec) or [`RouterConfig`]).
///
/// # Errors
///
/// Same contract as [`compile`].
pub fn compile_template_with(
    template: &ParametricCircuit,
    device: &Device,
    strategy: Strategy,
    router_config: impl Into<RouterConfig>,
) -> Result<CompileReport, CaqrError> {
    compile_template_traced_cancellable_with(
        template,
        device,
        strategy,
        router_config,
        &crate::cancel::CancelToken::new(),
    )
    .0
}

/// The fully general template entry point: strategy, routing policy,
/// deadline token, and per-pass instrumentation in one call — the
/// template analogue of [`compile_traced_cancellable_with`], and the
/// entry the batch engine's bind path drives.
pub fn compile_template_traced_cancellable_with(
    template: &ParametricCircuit,
    device: &Device,
    strategy: Strategy,
    router_config: impl Into<RouterConfig>,
    cancel: &crate::cancel::CancelToken,
) -> (Result<CompileReport, CaqrError>, StageTrace) {
    let mut trace = StageTrace::default();
    let result = PassManager::for_strategy(strategy).run_template_observed_cancellable_with(
        template,
        device,
        strategy,
        router_config,
        &mut trace,
        cancel,
    );
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commuting::CommutingSpec;
    use caqr_circuit::{Clbit, Qubit};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            c.cx(q(i), q(data));
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    #[test]
    fn all_strategies_produce_compliant_circuits() -> TestResult {
        let dev = Device::mumbai(7);
        let c = bv(6);
        for strategy in Strategy::ALL {
            let report = compile(&c, &dev, strategy)?;
            for instr in &report.circuit {
                if instr.is_two_qubit() {
                    assert!(
                        dev.topology()
                            .are_coupled(instr.qubits[0].index(), instr.qubits[1].index()),
                        "{strategy}: non-coupled 2q gate"
                    );
                }
            }
            assert!(report.esp > 0.0 && report.esp <= 1.0);
            assert!(report.swaps <= report.two_qubit_gates);
        }
        Ok(())
    }

    #[test]
    fn max_reuse_minimizes_qubits() -> TestResult {
        let dev = Device::mumbai(7);
        let c = bv(6);
        let max = compile(&c, &dev, Strategy::QsMaxReuse)?;
        let base = compile(&c, &dev, Strategy::Baseline)?;
        assert_eq!(max.qubits, 2, "BV always compresses to 2 qubits");
        assert_eq!(base.qubits, 6);
        // The trade-off: fewer qubits, deeper circuit.
        assert!(max.depth >= base.depth / 2);
        Ok(())
    }

    #[test]
    fn min_depth_never_deeper_than_max_reuse() -> TestResult {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let max = compile(&c, &dev, Strategy::QsMaxReuse)?;
        let min_depth = compile(&c, &dev, Strategy::QsMinDepth)?;
        assert!(min_depth.depth <= max.depth);
        Ok(())
    }

    #[test]
    fn min_swap_never_more_swaps() -> TestResult {
        let dev = Device::mumbai(7);
        let c = bv(8);
        let min_swap = compile(&c, &dev, Strategy::QsMinSwap)?;
        for s in [Strategy::Baseline, Strategy::QsMaxReuse] {
            let other = compile(&c, &dev, s)?;
            assert!(
                min_swap.swaps <= other.swaps,
                "min-swap {} vs {s} {}",
                min_swap.swaps,
                other.swaps
            );
        }
        Ok(())
    }

    #[test]
    fn traced_compile_matches_untraced_and_attributes_time() -> TestResult {
        let dev = Device::mumbai(7);
        let c = bv(6);
        for strategy in [Strategy::Baseline, Strategy::QsMaxReuse, Strategy::Sr] {
            let plain = compile(&c, &dev, strategy)?;
            let (traced, trace) = compile_traced(&c, &dev, strategy);
            let traced = traced?;
            assert_eq!(plain.circuit, traced.circuit, "{strategy}");
            assert_eq!(plain.qubits, traced.qubits);
            assert!(!trace.spans().is_empty());
            assert!(trace.total() >= trace.stage_total(Stage::Routing));
            // Every strategy routes; only QS records a reuse span.
            assert!(
                trace.stage_total(Stage::Routing) > Duration::ZERO,
                "{strategy}"
            );
            if strategy == Strategy::QsMaxReuse {
                assert!(trace.spans().iter().any(|(s, _)| *s == Stage::Reuse));
            }
            // Per-pass spans mirror the strategy's recipe exactly.
            let executed: Vec<&str> = trace.pass_spans().iter().map(|(n, _)| *n).collect();
            assert_eq!(executed, strategy.pass_names(), "{strategy}");
        }
        Ok(())
    }

    #[test]
    fn trace_survives_failure() {
        // 10 logical qubits cannot fit a 3-qubit line under baseline.
        let dev = Device::with_synthetic_calibration(caqr_arch::Topology::line(3), 1);
        let (result, trace) = compile_traced(&bv(10), &dev, Strategy::Baseline);
        assert!(result.is_err());
        assert!(trace.spans().iter().any(|(s, _)| *s == Stage::Optimize));
        // The failing pass itself is recorded too.
        assert!(trace
            .pass_spans()
            .iter()
            .any(|(n, _)| *n == "baseline-route"));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["optimize", "analysis", "reuse", "routing", "selection"]
        );
        assert_eq!(format!("{}", Stage::Routing), "routing");
    }

    #[test]
    fn report_display() -> TestResult {
        let dev = Device::mumbai(7);
        let r = compile(&bv(5), &dev, Strategy::Baseline)?;
        let s = format!("{r}");
        assert!(s.contains("baseline"));
        assert!(s.contains("qubits="));
        Ok(())
    }

    #[test]
    fn qaoa_goes_through_commuting_path() -> TestResult {
        let dev = Device::mumbai(7);
        let g = caqr_graph::gen::random_graph(6, 0.3, 3);
        let mut c = Circuit::new(6, 6);
        for v in 0..6 {
            c.h(q(v));
        }
        for (u, v) in g.edges() {
            c.rzz(0.6, q(u), q(v));
        }
        for v in 0..6 {
            c.rx(0.5, q(v));
        }
        c.measure_all();
        let max = compile(&c, &dev, Strategy::QsMaxReuse)?;
        let spec = CommutingSpec::from_circuit(&c).map_err(|e| e.to_string())?;
        let bound = crate::qs::commuting::min_qubits(&spec);
        assert!(max.qubits <= 6);
        assert!(max.qubits + 1 >= bound);
        Ok(())
    }
}
