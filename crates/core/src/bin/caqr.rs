//! The `caqr` command line: compile, analyze, and sweep OpenQASM circuits
//! with qubit reuse.
//!
//! ```text
//! caqr compile <file.qasm> [--strategy S] [--device D] [--seed N] [--emit]
//! caqr advise  <file.qasm> [--device D] [--seed N]
//! caqr sweep   <file.qasm>
//! caqr info    <file.qasm>
//!
//! strategies: baseline | qs-max | qs-min-depth | qs-min-swap | qs-max-esp | sr (default)
//! devices:    mumbai (default) | heavy-hex:<min_qubits> | line:<n> | grid:<r>x<c>
//! ```

use caqr::{advisor, compile, qs, Strategy};
use caqr_arch::{Device, Topology};
use caqr_circuit::depth::UnitDurations;
use caqr_circuit::{qasm, Circuit};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("caqr: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  caqr compile <file.qasm> [--strategy S] [--device D] [--seed N] [--emit]");
            eprintln!("  caqr advise  <file.qasm> [--device D] [--seed N]");
            eprintln!("  caqr sweep   <file.qasm>");
            eprintln!("  caqr info    <file.qasm>");
            eprintln!();
            eprintln!("strategies: baseline | qs-max | qs-min-depth | qs-min-swap | qs-max-esp | sr");
            eprintln!("devices: mumbai | heavy-hex:<min_qubits> | line:<n> | grid:<r>x<c>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let file = args.get(1).ok_or("missing input file")?;
    let circuit = load(file)?;
    let opts = Flags::parse(&args[2..])?;

    match command.as_str() {
        "compile" => {
            let device = opts.device()?;
            let report = compile(&circuit, &device, opts.strategy)
                .map_err(|e| format!("compilation failed: {e}"))?;
            println!("{report}");
            if opts.emit {
                print!("{}", qasm::to_qasm(&report.circuit));
            }
            Ok(())
        }
        "advise" => {
            let device = opts.device()?;
            println!("{}", advisor::advise(&circuit, &device));
            Ok(())
        }
        "sweep" => {
            let points = qs::regular::sweep(&circuit, &UnitDurations);
            println!("qubits  depth  reuses");
            for p in points {
                println!("{:<7} {:<6} {}", p.qubits, p.depth(), p.reuses);
            }
            Ok(())
        }
        "info" => {
            println!(
                "qubits: {}\nclbits: {}\ngates: {}\ntwo-qubit gates: {}\ndepth: {}\nmid-circuit measurements: {}",
                circuit.num_qubits(),
                circuit.num_clbits(),
                circuit.len(),
                circuit.two_qubit_gate_count(),
                circuit.depth(),
                circuit.mid_circuit_measurement_count(),
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn load(path: &str) -> Result<Circuit, String> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    qasm::from_qasm(&text).map_err(|e| format!("{e}"))
}

struct Flags {
    strategy: Strategy,
    device_spec: String,
    seed: u64,
    emit: bool,
}

impl Flags {
    fn parse(rest: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            strategy: Strategy::Sr,
            device_spec: "mumbai".to_string(),
            seed: 2023,
            emit: false,
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--strategy" => {
                    let v = it.next().ok_or("--strategy needs a value")?;
                    flags.strategy = match v.as_str() {
                        "baseline" => Strategy::Baseline,
                        "qs-max" => Strategy::QsMaxReuse,
                        "qs-min-depth" => Strategy::QsMinDepth,
                        "qs-min-swap" => Strategy::QsMinSwap,
                        "qs-max-esp" => Strategy::QsMaxEsp,
                        "sr" => Strategy::Sr,
                        other => return Err(format!("unknown strategy '{other}'")),
                    };
                }
                "--device" => {
                    flags.device_spec = it.next().ok_or("--device needs a value")?.clone();
                }
                "--seed" => {
                    flags.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "bad seed")?;
                }
                "--emit" => flags.emit = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(flags)
    }

    fn device(&self) -> Result<Device, String> {
        let spec = self.device_spec.as_str();
        if spec == "mumbai" {
            return Ok(Device::mumbai(self.seed));
        }
        if let Some(n) = spec.strip_prefix("heavy-hex:") {
            let n: usize = n.parse().map_err(|_| "bad heavy-hex size")?;
            return Ok(Device::scaled_heavy_hex(n, self.seed));
        }
        if let Some(n) = spec.strip_prefix("line:") {
            let n: usize = n.parse().map_err(|_| "bad line size")?;
            return Ok(Device::with_synthetic_calibration(
                Topology::line(n),
                self.seed,
            ));
        }
        if let Some(dims) = spec.strip_prefix("grid:") {
            let (r, c) = dims.split_once('x').ok_or("grid wants <r>x<c>")?;
            let r: usize = r.parse().map_err(|_| "bad grid rows")?;
            let c: usize = c.parse().map_err(|_| "bad grid cols")?;
            return Ok(Device::with_synthetic_calibration(
                Topology::grid(r, c),
                self.seed,
            ));
        }
        Err(format!("unknown device '{spec}'"))
    }
}
