//! The reuse-benefit advisor.
//!
//! The paper: "We also developed a method for identifying whether qubit
//! reuse will be beneficial for a given application" (abstract, §1). This
//! module implements that front-end check: a cheap structural analysis
//! that predicts, *before* running the full passes, whether QS/SR-CaQR is
//! worth invoking and why.
//!
//! Signals used (all O(circuit) or one cheap graph pass):
//!
//! * **reuse opportunity count** — valid pairs under Conditions 1/2;
//!   zero means the circuit is un-compressible (fully connected
//!   interaction, or a dependence chain through every pair);
//! * **coloring headroom** — for commuting circuits, chromatic bound vs
//!   width (the guaranteed saving);
//! * **coupling pressure** — interaction-graph max degree vs device max
//!   degree; when the program graph cannot embed, reuse can remove SWAPs
//!   (the Fig. 4/5 effect);
//! * **lifetime slack** — how early qubits retire relative to circuit
//!   depth; early retirees are reusable wires.

use crate::analysis::ReuseAnalysis;
use crate::commuting::CommutingSpec;
use caqr_arch::Device;
use caqr_circuit::depth::{Schedule, UnitDurations};
use caqr_circuit::Circuit;
use std::fmt;

/// The advisor's verdict for one circuit/device combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Strong benefit expected: run QS-CaQR (capacity) and/or SR-CaQR.
    Beneficial,
    /// Some opportunities exist, but expected gains are small.
    Marginal,
    /// No reuse opportunity; the passes would be a no-op.
    NotApplicable,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Recommendation::Beneficial => "beneficial",
            Recommendation::Marginal => "marginal",
            Recommendation::NotApplicable => "not applicable",
        })
    }
}

/// The advisor's full report.
#[derive(Debug, Clone)]
pub struct Advice {
    /// The verdict.
    pub recommendation: Recommendation,
    /// Valid reuse pairs found (capped at enumeration; 0 = none).
    pub opportunity_count: usize,
    /// Width minus the commuting coloring bound, when the circuit is
    /// commuting-shaped (guaranteed saving); otherwise `None`.
    pub guaranteed_saving: Option<usize>,
    /// Interaction max degree minus device max degree (positive = the
    /// program cannot embed without SWAPs, so reuse may remove them).
    pub coupling_pressure: i64,
    /// Mean fraction of the circuit depth for which qubits sit retired
    /// (0 = every qubit lives to the end; near 1 = most wires free early).
    pub lifetime_slack: f64,
    /// A hard floor on reachable qubit usage (interaction-graph degeneracy
    /// + 1); no reuse transform can go below this.
    pub qubit_floor: usize,
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} reuse pairs, guaranteed saving {:?}, coupling pressure {:+}, lifetime slack {:.2}, qubit floor {}",
            self.recommendation,
            self.opportunity_count,
            self.guaranteed_saving,
            self.coupling_pressure,
            self.lifetime_slack,
            self.qubit_floor
        )
    }
}

/// Analyzes `circuit` against `device` and recommends whether to run the
/// reuse passes.
pub fn advise(circuit: &Circuit, device: &Device) -> Advice {
    let analysis = ReuseAnalysis::of(circuit);
    let opportunity_count = analysis.candidate_pairs().len();

    let guaranteed_saving = CommutingSpec::from_circuit(circuit).ok().map(|spec| {
        let bound = crate::qs::commuting::min_qubits(&spec);
        circuit.num_qubits().saturating_sub(bound)
    });

    let coupling_pressure =
        analysis.interaction().max_degree() as i64 - device.topology().max_degree() as i64;

    let lifetime_slack = lifetime_slack(circuit);
    let qubit_floor = crate::width::degeneracy_lower_bound(circuit);

    let recommendation = if opportunity_count == 0 {
        Recommendation::NotApplicable
    } else {
        let strong = guaranteed_saving.is_some_and(|s| s * 4 >= circuit.num_qubits())
            || coupling_pressure > 0
            || lifetime_slack > 0.25
            || opportunity_count * 2 >= circuit.num_qubits();
        if strong {
            Recommendation::Beneficial
        } else {
            Recommendation::Marginal
        }
    };

    Advice {
        recommendation,
        opportunity_count,
        guaranteed_saving,
        coupling_pressure,
        lifetime_slack,
        qubit_floor,
    }
}

/// Mean fraction of the schedule each active qubit spends retired at the
/// end (unit durations).
fn lifetime_slack(circuit: &Circuit) -> f64 {
    if circuit.is_empty() {
        return 0.0;
    }
    let schedule = Schedule::asap(circuit, &UnitDurations);
    let total = schedule.makespan() as f64;
    if total == 0.0 {
        return 0.0;
    }
    let mut last_finish = vec![0u64; circuit.num_qubits()];
    for (idx, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            last_finish[q.index()] = last_finish[q.index()].max(schedule.finish(idx));
        }
    }
    let active: Vec<u64> = circuit
        .active_qubits()
        .iter()
        .map(|q| last_finish[q.index()])
        .collect();
    if active.is_empty() {
        return 0.0;
    }
    active.iter().map(|&f| 1.0 - f as f64 / total).sum::<f64>() / active.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn bv(n: usize) -> Circuit {
        let data = n - 1;
        let mut c = Circuit::new(n, data);
        for i in 0..data {
            c.h(q(i));
        }
        c.x(q(data));
        c.h(q(data));
        for i in 0..data {
            c.cx(q(i), q(data));
            c.h(q(i));
        }
        for i in 0..data {
            c.measure(q(i), Clbit::new(i));
        }
        c
    }

    #[test]
    fn bv_is_beneficial() {
        let advice = advise(&bv(10), &Device::mumbai(1));
        assert_eq!(advice.recommendation, Recommendation::Beneficial);
        // A star's degeneracy is 1, so the floor is 2 — BV's true minimum.
        assert_eq!(advice.qubit_floor, 2);
        assert!(advice.opportunity_count >= 9 * 8 / 2);
        // Star degree 9 > heavy-hex degree 3.
        assert!(advice.coupling_pressure > 0);
        // Early data qubits retire well before the target.
        assert!(advice.lifetime_slack > 0.1);
    }

    #[test]
    fn ghz_chain_not_applicable() {
        // A GHZ ladder: every pair of consecutive qubits interacts and the
        // dependence chain runs through all of them -> no valid pair at
        // all... actually non-adjacent qubits are pair candidates only in
        // the forward direction; the chain still blocks them via
        // Condition 2? No: q0 finishes before q2 starts? q0's last gate is
        // cx(0,1), q2's first is cx(1,2) which depends on it. (q0 -> q2) is
        // valid. So GHZ is *marginal/beneficial by count*; check the dense
        // case below instead. Here just sanity-check the advisor runs.
        let mut c = Circuit::new(4, 4);
        c.h(q(0));
        for i in 0..3 {
            c.cx(q(i), q(i + 1));
        }
        c.measure_all();
        let advice = advise(&c, &Device::mumbai(1));
        assert_ne!(advice.recommendation, Recommendation::NotApplicable);
    }

    #[test]
    fn fully_entangled_block_not_applicable() {
        // All-to-all interactions: Condition 1 kills every pair.
        let mut c = Circuit::new(4, 0);
        for i in 0..4 {
            for j in i + 1..4 {
                c.cz(q(i), q(j));
            }
        }
        let advice = advise(&c, &Device::mumbai(1));
        assert_eq!(advice.recommendation, Recommendation::NotApplicable);
        assert_eq!(advice.opportunity_count, 0);
    }

    #[test]
    fn qaoa_reports_guaranteed_saving() {
        let g = caqr_graph::gen::power_law_graph(12, 0.3, 5);
        let mut c = Circuit::new(12, 12);
        for v in 0..12 {
            c.h(q(v));
        }
        for (u, v) in g.edges() {
            c.rzz(0.5, q(u), q(v));
        }
        for v in 0..12 {
            c.rx(0.4, q(v));
        }
        c.measure_all();
        let advice = advise(&c, &Device::mumbai(1));
        let saving = advice.guaranteed_saving.expect("QAOA is commuting-shaped");
        assert!(saving >= 1);
        assert_eq!(advice.recommendation, Recommendation::Beneficial);
    }

    #[test]
    fn empty_circuit() {
        let advice = advise(&Circuit::new(3, 0), &Device::mumbai(1));
        assert_eq!(advice.recommendation, Recommendation::NotApplicable);
        assert_eq!(advice.lifetime_slack, 0.0);
    }

    #[test]
    fn display_formats() {
        let advice = advise(&bv(5), &Device::mumbai(1));
        let s = format!("{advice}");
        assert!(s.contains("beneficial"));
        assert!(s.contains("reuse pairs"));
    }
}
