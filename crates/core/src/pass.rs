//! The pass abstraction: a typed compilation context with a shared
//! analysis cache, and the `Pass` trait every pipeline stage implements.
//!
//! The CaQR pipeline is a sequence of named passes over a [`CompileCtx`]:
//! each pass reads the working circuit (and artifacts left by earlier
//! passes), may replace the circuit, and records its products back into
//! the context. Derived analyses — the dependency DAG, the qubit
//! interaction graph, critical-path membership — live in an
//! [`AnalysisCache`] so consecutive passes (and the two routing policies
//! SR-CaQR compares) stop rebuilding them from scratch.
//!
//! Cache invalidation is explicit and conservative: mutating the circuit
//! through [`CompileCtx::circuit_mut`] (or calling
//! [`AnalysisCache::invalidate`] directly) drops every cached analysis and
//! bumps a generation counter, so a stale analysis can never outlive the
//! circuit it described. See `DESIGN.md` for the registration walkthrough.

use crate::commuting::{CommutingSpec, NotCommutingError};
use crate::error::CaqrError;
use crate::pipeline::{CompileReport, Stage, Strategy};
use crate::qs::SweepPoint;
use crate::router::{CostModelSpec, RoutedCircuit, RouterConfig, RoutingBackendSpec};
use caqr_arch::Device;
use caqr_circuit::depth::DurationModel;
use caqr_circuit::{Circuit, CircuitDag};
use caqr_graph::Graph;
use std::rc::Rc;

/// Lazily-built, explicitly-invalidated analyses of one circuit.
///
/// Entries are `Rc`-shared so several consumers (e.g. the router's
/// frontier walk and its critical-path policy) can hold the same analysis
/// without cloning it. The cache does **not** watch the circuit: callers
/// that mutate it must call [`AnalysisCache::invalidate`] — which
/// [`CompileCtx::circuit_mut`] does automatically.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    generation: u64,
    dag: Option<Rc<CircuitDag>>,
    interaction: Option<Rc<Graph>>,
    critical: Option<Rc<Vec<bool>>>,
}

impl AnalysisCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dependency DAG of `circuit`, building it on first use.
    pub fn dag(&mut self, circuit: &Circuit) -> Rc<CircuitDag> {
        if self.dag.is_none() {
            self.dag = Some(Rc::new(CircuitDag::of(circuit)));
        }
        Rc::clone(self.dag.as_ref().expect("just built"))
    }

    /// The qubit interaction graph of `circuit`, building it on first use.
    pub fn interaction(&mut self, circuit: &Circuit) -> Rc<Graph> {
        if self.interaction.is_none() {
            self.interaction = Some(Rc::new(caqr_circuit::interaction::interaction_graph(
                circuit,
            )));
        }
        Rc::clone(self.interaction.as_ref().expect("just built"))
    }

    /// Critical-path membership of every instruction under the device's
    /// logical duration model, building it (and the DAG) on first use.
    pub fn critical_path(&mut self, circuit: &Circuit, device: &Device) -> Rc<Vec<bool>> {
        if self.critical.is_none() {
            let dag = self.dag(circuit);
            let model = device.logical_duration_model();
            let durations: Vec<u64> = circuit.iter().map(|i| model.duration(i)).collect();
            self.critical = Some(Rc::new(dag.on_critical_path(&durations)));
        }
        Rc::clone(self.critical.as_ref().expect("just built"))
    }

    /// Drops every cached analysis and bumps the generation counter. Must
    /// be called whenever the circuit the cache describes changes.
    pub fn invalidate(&mut self) {
        self.generation += 1;
        self.dag = None;
        self.interaction = None;
        self.critical = None;
    }

    /// How many times the cache has been invalidated. A pass holding an
    /// analysis across a mutation can compare generations to detect
    /// staleness.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The number of analyses currently cached (used by invalidation
    /// tests and instrumentation).
    pub fn cached_count(&self) -> usize {
        usize::from(self.dag.is_some())
            + usize::from(self.interaction.is_some())
            + usize::from(self.critical.is_some())
    }
}

/// Everything a pass can see and touch while compiling one circuit.
///
/// The working circuit is accessed through [`CompileCtx::circuit`] /
/// [`CompileCtx::circuit_mut`] so mutation always invalidates the analysis
/// cache. Artifacts produced by one pass for a later one (the commuting
/// spec, the reuse sweep, the routed circuit, the final report) are typed
/// fields — a pass that runs before its producer gets a
/// [`CaqrError::MissingArtifact`], not a stale value.
#[derive(Debug)]
pub struct CompileCtx<'d> {
    device: &'d Device,
    strategy: Strategy,
    router: RouterConfig,
    circuit: Circuit,
    analyses: AnalysisCache,
    /// `Some(num_slots)` when compiling a parametric template: the working
    /// circuit carries NaN-boxed slot angles, and the pass manager audits
    /// angle-independence after every pass (see `PassManager`).
    parametric_slots: Option<u32>,
    /// Commuting-region analysis: `Some(Ok(_))` for QAOA-shaped circuits,
    /// `Some(Err(_))` for regular circuits, `None` until the
    /// `commuting-analysis` pass runs.
    pub commuting: Option<Result<CommutingSpec, NotCommutingError>>,
    /// The QS reuse sweep (one logical circuit per achievable qubit
    /// count), produced by `qs-sweep`.
    pub sweep: Option<Vec<SweepPoint>>,
    /// Every sweep point routed onto the device, produced by
    /// `route-sweep`; tuples are `(logical qubit count, routed circuit)`.
    pub routed_sweep: Option<Vec<(usize, RoutedCircuit)>>,
    /// The selected hardware-compliant circuit, produced by a routing or
    /// selection pass.
    pub routed: Option<RoutedCircuit>,
    /// The final metrics row, produced by `report`.
    pub report: Option<CompileReport>,
}

impl<'d> CompileCtx<'d> {
    /// A fresh context owning `circuit`, targeting `device`, routing with
    /// the default policy (SWAP backend, [`CostModelSpec::Hop`] scoring).
    pub fn new(circuit: Circuit, device: &'d Device, strategy: Strategy) -> Self {
        CompileCtx {
            device,
            strategy,
            router: RouterConfig::default(),
            circuit,
            analyses: AnalysisCache::new(),
            parametric_slots: None,
            commuting: None,
            sweep: None,
            routed_sweep: None,
            routed: None,
            report: None,
        }
    }

    /// The same context routing under a different swap-scoring model.
    pub fn with_cost_model(mut self, cost_model: CostModelSpec) -> Self {
        self.router.cost_model = cost_model;
        self
    }

    /// The same context routing under a different complete routing policy
    /// (backend + cost model).
    pub fn with_router(mut self, router: impl Into<RouterConfig>) -> Self {
        self.router = router.into();
        self
    }

    /// Marks this compilation as parametric: the working circuit is a
    /// template with `num_slots` symbolic angle slots, and every pass is
    /// audited for angle-independence (debug builds).
    pub fn with_parametric(mut self, num_slots: u32) -> Self {
        self.parametric_slots = Some(num_slots);
        self
    }

    /// The template's slot count when compiling parametrically.
    pub fn parametric_slots(&self) -> Option<u32> {
        self.parametric_slots
    }

    /// The target device.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The strategy label the final report will carry.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The swap-scoring model every routing pass in this compilation uses.
    pub fn cost_model(&self) -> CostModelSpec {
        self.router.cost_model
    }

    /// The complete routing policy (backend + cost model).
    pub fn router(&self) -> RouterConfig {
        self.router
    }

    /// The routing backend every routing pass in this compilation uses.
    pub fn routing_backend(&self) -> RoutingBackendSpec {
        self.router.backend
    }

    /// The current working circuit (read-only).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access to the working circuit. Invalidates every cached
    /// analysis — the cache must never describe a circuit that no longer
    /// exists.
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        self.analyses.invalidate();
        &mut self.circuit
    }

    /// Replaces the working circuit wholesale (the optimize pass's
    /// rewrite), invalidating cached analyses.
    pub fn replace_circuit(&mut self, circuit: Circuit) {
        self.analyses.invalidate();
        self.circuit = circuit;
    }

    /// The analysis cache for the current circuit.
    pub fn analyses(&mut self) -> &mut AnalysisCache {
        &mut self.analyses
    }

    /// The circuit and its analysis cache together (the borrow split the
    /// router needs: it reads the circuit while filling the cache).
    pub fn circuit_and_analyses(&mut self) -> (&Circuit, &mut AnalysisCache, &'d Device) {
        (&self.circuit, &mut self.analyses, self.device)
    }
}

/// One named pipeline stage.
///
/// Passes are stateless values: all working state lives in the
/// [`CompileCtx`], so the same pass object can compile any number of
/// circuits. `stage()` buckets the pass for coarse stage-level timing
/// (the [`Stage`] axis predates per-pass timings and is kept for
/// continuity); `name()` is the stable identifier used in recipes, CLI
/// `--passes` lists, and per-pass metrics.
pub trait Pass {
    /// The stable pass name (kebab-case, unique in the registry).
    fn name(&self) -> &'static str;

    /// The coarse pipeline stage this pass belongs to.
    fn stage(&self) -> Stage;

    /// Runs the pass over `ctx`.
    ///
    /// # Errors
    ///
    /// Any [`CaqrError`]; the pass manager stops at the first failure.
    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError>;
}

/// Peephole cleanup (inverse cancellation, rotation merging) — the
/// "optimization level 3" behaviour every strategy shares.
pub struct OptimizePass;

impl Pass for OptimizePass {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn stage(&self) -> Stage {
        Stage::Optimize
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let optimized = caqr_circuit::optimize::peephole(ctx.circuit());
        ctx.replace_circuit(optimized);
        Ok(())
    }
}

/// Commuting-region detection: decides between the regular path and the
/// QAOA matching-scheduler path for both SR and QS.
pub struct CommutingAnalysisPass;

impl Pass for CommutingAnalysisPass {
    fn name(&self) -> &'static str {
        "commuting-analysis"
    }

    fn stage(&self) -> Stage {
        Stage::Analysis
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        ctx.commuting = Some(CommutingSpec::from_circuit(ctx.circuit()));
        Ok(())
    }
}

/// QS-CaQR reuse-sweep generation: one logical circuit per achievable
/// qubit count, via the matching scheduler for commuting circuits and the
/// backtracking search otherwise.
pub struct QsSweepPass;

impl Pass for QsSweepPass {
    fn name(&self) -> &'static str {
        "qs-sweep"
    }

    fn stage(&self) -> Stage {
        Stage::Reuse
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let spec = ctx.commuting.as_ref().ok_or(CaqrError::MissingArtifact {
            pass: "qs-sweep",
            artifact: "commuting analysis",
        })?;
        let points = match spec {
            Ok(spec) => crate::qs::commuting::sweep(spec, crate::sr::default_matcher(spec)),
            Err(_) => {
                crate::qs::regular::sweep(ctx.circuit(), &ctx.device().logical_duration_model())
            }
        };
        ctx.sweep = Some(points);
        Ok(())
    }
}

/// Routes every QS sweep point onto the device with the no-reuse policy.
/// The paper's QS flow: logical transform first, hardware mapping second.
pub struct RouteSweepPass;

impl Pass for RouteSweepPass {
    fn name(&self) -> &'static str {
        "route-sweep"
    }

    fn stage(&self) -> Stage {
        Stage::Routing
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let points = ctx.sweep.take().ok_or(CaqrError::MissingArtifact {
            pass: "route-sweep",
            artifact: "reuse sweep",
        })?;
        let mut out = Vec::with_capacity(points.len());
        let router = ctx.router();
        for p in points {
            let routed = crate::baseline::compile_with(&p.circuit, ctx.device(), router)?;
            out.push((p.qubits, routed));
        }
        ctx.routed_sweep = Some(out);
        Ok(())
    }
}

/// What a selection pass optimizes for among the routed sweep points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectObjective {
    /// Fewest logical qubits (maximum reuse).
    MaxReuse,
    /// Minimum compiled depth, then fewest physical qubits.
    MinDepth,
    /// Fewest SWAPs, then minimum depth.
    MinSwap,
    /// Highest estimated success probability.
    MaxEsp,
}

impl SelectObjective {
    /// The registry name of the selection pass with this objective.
    pub fn pass_name(self) -> &'static str {
        match self {
            SelectObjective::MaxReuse => "select-max-reuse",
            SelectObjective::MinDepth => "select-min-depth",
            SelectObjective::MinSwap => "select-min-swap",
            SelectObjective::MaxEsp => "select-max-esp",
        }
    }
}

/// Sweep-point selection: picks the routed candidate the objective asks
/// for. ESP is evaluated once per candidate (not once per comparison).
pub struct SelectPass {
    /// The objective this instance selects by.
    pub objective: SelectObjective,
}

impl Pass for SelectPass {
    fn name(&self) -> &'static str {
        self.objective.pass_name()
    }

    fn stage(&self) -> Stage {
        Stage::Selection
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let sweep = ctx.routed_sweep.take().ok_or(CaqrError::MissingArtifact {
            pass: self.name(),
            artifact: "routed sweep",
        })?;
        let device = ctx.device();
        let picked = match self.objective {
            SelectObjective::MaxReuse => sweep.into_iter().min_by_key(|(qubits, _)| *qubits),
            SelectObjective::MinDepth => sweep
                .into_iter()
                .min_by_key(|(_, r)| (r.circuit.depth(), r.physical_qubits_used)),
            SelectObjective::MinSwap => sweep
                .into_iter()
                // Movement stages are the DPQA analogue of SWAPs; the sum
                // degenerates to plain swap_count on the SWAP backend.
                .min_by_key(|(_, r)| (r.swap_count + r.movement_stages, r.circuit.depth())),
            SelectObjective::MaxEsp => {
                let scored: Vec<(f64, (usize, RoutedCircuit))> = sweep
                    .into_iter()
                    .map(|entry| (crate::esp::estimate(&entry.1.circuit, device), entry))
                    .collect();
                scored
                    .into_iter()
                    .max_by(|(a, _), (b, _)| a.total_cmp(b))
                    .map(|(_, entry)| entry)
            }
        };
        let (_, routed) = picked.ok_or(CaqrError::EmptySweep { pass: self.name() })?;
        ctx.routed = Some(routed);
        Ok(())
    }
}

/// The no-reuse baseline mapper (eager placement, no reclamation).
pub struct BaselineRoutePass;

impl Pass for BaselineRoutePass {
    fn name(&self) -> &'static str {
        "baseline-route"
    }

    fn stage(&self) -> Stage {
        Stage::Routing
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let router = ctx.router();
        let (circuit, analyses, device) = ctx.circuit_and_analyses();
        let routed = crate::router::route_cached(
            circuit,
            device,
            crate::router::RouterOptions::baseline().with_router(router),
            None,
            analyses,
        )?;
        ctx.routed = Some(routed);
        Ok(())
    }
}

/// SR-CaQR: the dynamic-circuit-aware delay/reclaim mapper with version
/// selection, choosing the commuting or regular flow from the
/// `commuting-analysis` artifact.
pub struct SrRoutePass;

impl Pass for SrRoutePass {
    fn name(&self) -> &'static str {
        "sr-route"
    }

    fn stage(&self) -> Stage {
        Stage::Routing
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let spec = ctx.commuting.as_ref().ok_or(CaqrError::MissingArtifact {
            pass: "sr-route",
            artifact: "commuting analysis",
        })?;
        let router = ctx.router();
        let routed = match spec {
            Ok(spec) => {
                crate::sr::compile_commuting_with_cost(ctx.circuit(), ctx.device(), spec, router)?
            }
            Err(_) => crate::sr::compile_with(ctx.circuit(), ctx.device(), router)?,
        };
        ctx.routed = Some(routed);
        Ok(())
    }
}

/// Report assembly: all compiled-circuit metrics (depth, duration, 2q
/// count, ESP) in a single traversal of the routed circuit.
pub struct ReportPass;

impl Pass for ReportPass {
    fn name(&self) -> &'static str {
        "report"
    }

    fn stage(&self) -> Stage {
        Stage::Selection
    }

    fn run(&self, ctx: &mut CompileCtx<'_>) -> Result<(), CaqrError> {
        let routed = ctx.routed.take().ok_or(CaqrError::MissingArtifact {
            pass: "report",
            artifact: "routed circuit",
        })?;
        ctx.report = Some(CompileReport::from_routed(
            ctx.strategy(),
            routed,
            ctx.device(),
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Qubit;

    fn toy() -> Circuit {
        let mut c = Circuit::new(3, 0);
        c.h(Qubit::new(0));
        c.cx(Qubit::new(0), Qubit::new(1));
        c.cx(Qubit::new(1), Qubit::new(2));
        c
    }

    #[test]
    fn cache_builds_lazily_and_shares() {
        let c = toy();
        let mut cache = AnalysisCache::new();
        assert_eq!(cache.cached_count(), 0);
        let dag = cache.dag(&c);
        assert_eq!(dag.len(), 3);
        assert_eq!(cache.cached_count(), 1);
        // A second request returns the same allocation, not a rebuild.
        let again = cache.dag(&c);
        assert!(Rc::ptr_eq(&dag, &again));
        let _ = cache.interaction(&c);
        assert_eq!(cache.cached_count(), 2);
    }

    #[test]
    fn invalidation_drops_every_entry_and_bumps_generation() {
        let c = toy();
        let dev = Device::mumbai(1);
        let mut cache = AnalysisCache::new();
        let _ = cache.dag(&c);
        let _ = cache.interaction(&c);
        let _ = cache.critical_path(&c, &dev);
        assert_eq!(cache.cached_count(), 3);
        let g0 = cache.generation();
        cache.invalidate();
        assert_eq!(cache.cached_count(), 0, "stale analyses must be dropped");
        assert_eq!(cache.generation(), g0 + 1);
    }

    #[test]
    fn mutating_the_circuit_through_ctx_invalidates() {
        let dev = Device::mumbai(1);
        let mut ctx = CompileCtx::new(toy(), &dev, Strategy::Baseline);
        let dag = {
            let (c, a, _) = ctx.circuit_and_analyses();
            a.dag(c)
        };
        assert_eq!(dag.len(), 3);
        let g0 = ctx.analyses().generation();
        ctx.circuit_mut().h(Qubit::new(2));
        assert_eq!(
            ctx.analyses().cached_count(),
            0,
            "circuit_mut must invalidate"
        );
        assert!(ctx.analyses().generation() > g0);
        // The rebuilt DAG sees the appended gate; the old Rc still holds
        // the (now detached) pre-mutation analysis.
        let rebuilt = {
            let (c, a, _) = ctx.circuit_and_analyses();
            a.dag(c)
        };
        assert_eq!(rebuilt.len(), 4);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn replace_circuit_invalidates_too() {
        let dev = Device::mumbai(1);
        let mut ctx = CompileCtx::new(toy(), &dev, Strategy::Baseline);
        {
            let (c, a, _) = ctx.circuit_and_analyses();
            let _ = a.dag(c);
            let _ = a.interaction(c);
        }
        ctx.replace_circuit(Circuit::new(2, 0));
        assert_eq!(ctx.analyses().cached_count(), 0);
        assert_eq!(ctx.circuit().num_qubits(), 2);
    }

    #[test]
    fn stale_analysis_after_mutation_is_detectable() {
        // The contract the cache enforces: after a mutation, the cache
        // holds nothing — so a consumer can never read an analysis built
        // for an older circuit unless it cached the Rc itself, which the
        // generation counter exposes.
        let c = toy();
        let mut cache = AnalysisCache::new();
        let stale_gen = cache.generation();
        let _ = cache.dag(&c);
        cache.invalidate();
        assert_ne!(cache.generation(), stale_gen, "generation must move");
        assert_eq!(cache.cached_count(), 0, "no stale analysis may remain");
    }

    #[test]
    fn passes_require_their_artifacts() {
        let dev = Device::mumbai(1);
        let mut ctx = CompileCtx::new(toy(), &dev, Strategy::QsMaxReuse);
        assert!(matches!(
            QsSweepPass.run(&mut ctx),
            Err(CaqrError::MissingArtifact { .. })
        ));
        assert!(matches!(
            RouteSweepPass.run(&mut ctx),
            Err(CaqrError::MissingArtifact { .. })
        ));
        assert!(matches!(
            SelectPass {
                objective: SelectObjective::MaxReuse
            }
            .run(&mut ctx),
            Err(CaqrError::MissingArtifact { .. })
        ));
        assert!(matches!(
            ReportPass.run(&mut ctx),
            Err(CaqrError::MissingArtifact { .. })
        ));
    }

    #[test]
    fn select_pass_names_are_stable() {
        for (obj, name) in [
            (SelectObjective::MaxReuse, "select-max-reuse"),
            (SelectObjective::MinDepth, "select-min-depth"),
            (SelectObjective::MinSwap, "select-min-swap"),
            (SelectObjective::MaxEsp, "select-max-esp"),
        ] {
            assert_eq!(obj.pass_name(), name);
            assert_eq!(SelectPass { objective: obj }.name(), name);
        }
    }
}
