//! Live-width analysis: how many qubits a circuit *must* keep alive.
//!
//! Qubit reuse cannot shrink a circuit below its **live width** — the
//! maximum number of simultaneously-live qubits over the best admissible
//! gate order. For commuting circuits this equals pathwidth + 1 of the
//! interaction graph (NP-hard in general), which explains why the
//! chromatic bound of §3.2.2 is a lower bound rather than always
//! achievable: a 30%-dense graph has large pathwidth no matter how it is
//! colored.
//!
//! This module provides the two sides of the sandwich:
//!
//! * [`live_width`] — the width a *given* circuit order realizes (an upper
//!   bound on the optimum, and the exact width QS-CaQR's output uses);
//! * [`degeneracy_lower_bound`] — a cheap pathwidth lower bound via graph
//!   degeneracy, which also lower-bounds any reuse transform.

use caqr_circuit::{Circuit, Qubit};
use caqr_graph::Graph;

/// The number of simultaneously-live qubits the circuit's own order
/// realizes: a qubit is live from its first instruction until its last.
///
/// For a reuse-transformed circuit this equals its wire count; for the
/// original circuit it tells how much headroom a transform has.
///
/// # Examples
///
/// ```
/// use caqr::width::live_width;
/// use caqr_circuit::{Circuit, Qubit};
///
/// // Two disjoint sequential Bell pairs: only 2 live at once.
/// let mut c = Circuit::new(4, 0);
/// c.h(Qubit::new(0));
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.h(Qubit::new(2));
/// c.cx(Qubit::new(2), Qubit::new(3));
/// assert_eq!(live_width(&c), 2);
/// ```
pub fn live_width(circuit: &Circuit) -> usize {
    let n = circuit.num_qubits();
    let mut first = vec![usize::MAX; n];
    let mut last = vec![0usize; n];
    for (idx, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            let q = q.index();
            first[q] = first[q].min(idx);
            last[q] = last[q].max(idx);
        }
    }
    // Sweep instruction positions, counting open intervals.
    let mut events: Vec<(usize, i32)> = Vec::new();
    for q in 0..n {
        if first[q] != usize::MAX {
            events.push((first[q], 1));
            events.push((last[q] + 1, -1));
        }
    }
    events.sort();
    let mut live = 0i32;
    let mut max = 0i32;
    for (_, delta) in events {
        live += delta;
        max = max.max(live);
    }
    max as usize
}

/// The degeneracy of a graph: the largest `k` such that some subgraph has
/// minimum degree `k`. Degeneracy lower-bounds pathwidth, and
/// `pathwidth + 1` lower-bounds the qubit count any reuse transform of a
/// commuting circuit can reach.
pub fn degeneracy(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut degen = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("vertices remain");
        degen = degen.max(degree[v]);
        removed[v] = true;
        for u in graph.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    degen
}

/// A lower bound on the qubits any reuse transform of `circuit` can use:
/// `degeneracy(interaction graph) + 1` (and at least 2 when any two-qubit
/// gate exists).
pub fn degeneracy_lower_bound(circuit: &Circuit) -> usize {
    let int = caqr_circuit::interaction::interaction_graph(circuit);
    let base = degeneracy(&int) + 1;
    if circuit.two_qubit_gate_count() > 0 {
        base.max(2)
    } else {
        base.max(1).min(circuit.active_qubits().len().max(1))
    }
}

/// The set of qubits live at instruction `idx` under the circuit's order.
pub fn live_at(circuit: &Circuit, idx: usize) -> Vec<Qubit> {
    let n = circuit.num_qubits();
    let mut first = vec![usize::MAX; n];
    let mut last = vec![0usize; n];
    for (i, instr) in circuit.iter().enumerate() {
        for q in &instr.qubits {
            let q = q.index();
            first[q] = first[q].min(i);
            last[q] = last[q].max(i);
        }
    }
    (0..n)
        .filter(|&q| first[q] != usize::MAX && first[q] <= idx && idx <= last[q])
        .map(Qubit::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Clbit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn live_width_of_sequential_blocks() {
        let mut c = Circuit::new(6, 0);
        for block in 0..3 {
            let a = q(2 * block);
            let b = q(2 * block + 1);
            c.h(a);
            c.cx(a, b);
        }
        assert_eq!(live_width(&c), 2);
    }

    #[test]
    fn live_width_of_interleaved_blocks() {
        // All activations before any retirement: every qubit overlaps.
        let mut c = Circuit::new(4, 0);
        for i in 0..4 {
            c.h(q(i));
        }
        c.cx(q(0), q(1));
        c.cx(q(2), q(3));
        assert_eq!(live_width(&c), 4);
    }

    #[test]
    fn reuse_transform_realizes_live_width() {
        // After QS-CaQR, the wire count equals the live width by
        // construction (every wire hosts back-to-back lifetimes).
        use caqr_circuit::depth::UnitDurations;
        let mut c = Circuit::new(5, 4);
        for i in 0..4 {
            c.h(q(i));
        }
        c.x(q(4));
        c.h(q(4));
        for i in 0..4 {
            c.cx(q(i), q(4));
            c.h(q(i));
        }
        for i in 0..4 {
            c.measure(q(i), Clbit::new(i));
        }
        let smallest = crate::qs::regular::sweep(&c, &UnitDurations)
            .pop()
            .unwrap()
            .circuit;
        assert_eq!(live_width(&smallest), smallest.num_qubits());
    }

    #[test]
    fn degeneracy_values() {
        // A tree has degeneracy 1; a cycle 2; K5 has 4.
        let tree = Graph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        assert_eq!(degeneracy(&tree), 1);
        let mut cyc = Graph::new(5);
        for i in 0..5 {
            cyc.add_edge(i, (i + 1) % 5);
        }
        assert_eq!(degeneracy(&cyc), 2);
        let mut k5 = Graph::new(5);
        for i in 0..5 {
            for j in i + 1..5 {
                k5.add_edge(i, j);
            }
        }
        assert_eq!(degeneracy(&k5), 4);
    }

    #[test]
    fn lower_bound_respected_by_sweep() {
        // The QS sweep can never beat the degeneracy bound.
        use caqr_circuit::depth::UnitDurations;
        let mut c = Circuit::new(4, 0);
        for i in 0..4 {
            for j in i + 1..4 {
                c.cz(q(i), q(j));
            }
        }
        let bound = degeneracy_lower_bound(&c);
        assert_eq!(bound, 4, "K4 interaction");
        let min = crate::qs::regular::min_qubits(&c, &UnitDurations);
        assert!(min >= bound);
    }

    #[test]
    fn live_at_reports_open_intervals() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)); // 0
        c.cx(q(0), q(1)); // 1
        c.h(q(2)); // 2
        let live = live_at(&c, 1);
        assert!(live.contains(&q(0)));
        assert!(live.contains(&q(1)));
        assert!(!live.contains(&q(2)));
    }

    #[test]
    fn empty_circuit_zero_width() {
        assert_eq!(live_width(&Circuit::new(3, 0)), 0);
        assert_eq!(degeneracy(&Graph::new(0)), 0);
    }
}
