//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small but real wall-clock benchmarking harness with criterion's API
//! shape: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark
//! is warmed up, then timed over adaptively chosen iteration counts, and a
//! `name  time: [min mean max]` line is printed — enough to track the perf
//! trajectory PR over PR, without the statistical machinery (no HTML
//! reports, no regression detection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);
/// Number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards extra CLI args (e.g. `--bench`, a name
        // filter); accept a bare string as a substring filter and ignore
        // the flags criterion would consume.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name, DEFAULT_SAMPLES, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        run_benchmark(self.criterion, &name, samples, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size;
        run_benchmark(self.criterion, &full, samples, f);
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id labelled only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max nanoseconds per iteration, filled by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, recording nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Choose an iteration count per sample so all samples together
        // roughly fill the measurement budget.
        let budget = MEASURE_BUDGET.as_nanos() as f64;
        let iters_per_sample =
            ((budget / self.samples as f64 / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut per_sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let min = per_sample_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_sample_ns.iter().copied().fold(0.0, f64::max);
        let mean = per_sample_ns.iter().sum::<f64>() / per_sample_ns.len() as f64;
        self.result = Some((mean, min, max));
    }
}

fn run_benchmark<F>(criterion: &Criterion, name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max)) => println!(
            "{name:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        ),
        None => println!("{name:<50} time: [no measurement]"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion { filter: None };
        let mut ran = false;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("noop", |b| {
                b.iter(|| black_box(1 + 1));
                ran = true;
            });
            group.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let c = Criterion {
            filter: Some("wanted".into()),
        };
        assert!(c.matches("group/wanted/3"));
        assert!(!c.matches("group/other/3"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("bv", 10).to_string(), "bv/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
