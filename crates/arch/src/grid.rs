//! DPQA grid geometry and the typed movement-schedule IR.
//!
//! A dynamically field-programmable qubit array (DPQA, Tan et al. 2024)
//! holds atoms in a 2D grid of static SLM traps and routes them with AOD
//! (acousto-optic deflector) row/column traps: an AOD pass picks a set of
//! atoms up, translates them — an arbitrary distance in one stage — and
//! drops them back into free SLM sites. Two-qubit gates are global
//! Rydberg pulses acting on every adjacent atom pair at once, so routing
//! means *moving atoms into Rydberg range* instead of inserting SWAPs.
//!
//! This module provides the pieces the movement-based routing backend
//! compiles into:
//!
//! * [`GridGeometry`] — the SLM site grid (rows x cols) plus the
//!   [`MovementTimes`] constants for AOD transfer, shifts, Rydberg pulses
//!   and measurement-zone transit.
//! * [`MovementSchedule`] — a typed sequence of [`MoveStage`]s: atom
//!   loads, parallel AOD shifts, Rydberg gate stages, and moves to the
//!   off-grid measurement zone (how mid-circuit measure/reset for qubit
//!   reuse is priced in movement time).
//! * [`MovementSchedule::verify`] — replays the schedule against an
//!   occupancy map and rejects physically impossible programs: two atoms
//!   in one trap, moves from empty sites, AOD shifts that would reorder
//!   rows or columns (AOD traps cannot cross), or Rydberg pairs out of
//!   interaction range.
//!
//! The measurement zone is modeled as a single off-grid region: a
//! [`MoveStage::MeasureTransit`] removes the atom from its SLM site (the
//! site becomes free for reuse) and charges a flat transit cost. A
//! reused wire therefore pays `measure_transit_dt + load_dt` of movement
//! on top of the Fig. 2 measure + conditional-X cost.

use std::collections::BTreeMap;
use std::fmt;

/// Timing constants for DPQA movement primitives, in device `dt` units.
///
/// Defaults follow the relative magnitudes reported for neutral-atom
/// arrays (Bluvstein et al. 2022, Tan et al. 2024): AOD pick-up/drop-off
/// transfers and per-site shifts dominate (hundreds of microseconds),
/// Rydberg pulses are fast (sub-microsecond, rounded up to one CX-scale
/// unit here so depth stays comparable), and measurement transit crosses
/// the whole array. Absolute values matter less than ratios — every
/// consumer treats them as one opaque cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementTimes {
    /// AOD pick-up: transfer a set of atoms from SLM traps into AOD rows
    /// and columns (paid once per shift stage).
    pub pickup_dt: u64,
    /// AOD drop-off: transfer the moved atoms back into SLM traps (paid
    /// once per shift stage).
    pub dropoff_dt: u64,
    /// Translation cost per grid site of Manhattan distance; a shift
    /// stage pays this for its *longest* move (all moves are parallel).
    pub shift_per_site_dt: u64,
    /// One global Rydberg pulse (executes every in-range pair at once).
    pub rydberg_dt: u64,
    /// Moving one atom from the grid to the off-grid measurement zone.
    pub measure_transit_dt: u64,
    /// Loading a fresh atom from the reservoir into an SLM site.
    pub load_dt: u64,
}

impl Default for MovementTimes {
    fn default() -> Self {
        MovementTimes {
            pickup_dt: 100,
            dropoff_dt: 100,
            shift_per_site_dt: 50,
            rydberg_dt: 10,
            measure_transit_dt: 200,
            load_dt: 150,
        }
    }
}

/// The DPQA hardware geometry: a `rows x cols` grid of static SLM sites
/// with an off-grid measurement zone and AOD-based transport, plus the
/// [`MovementTimes`] cost constants.
///
/// Sites are addressed as `(row, col)` coordinates; [`GridGeometry::site`]
/// maps them to the flat indices the coupling [`crate::Topology::grid`]
/// uses, so a routed DPQA circuit and the grid coupling graph agree on
/// site numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridGeometry {
    rows: usize,
    cols: usize,
    times: MovementTimes,
}

impl GridGeometry {
    /// A `rows x cols` SLM grid with the default [`MovementTimes`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        GridGeometry {
            rows,
            cols,
            times: MovementTimes::default(),
        }
    }

    /// The same geometry with custom timing constants.
    pub fn with_times(mut self, times: MovementTimes) -> Self {
        self.times = times;
        self
    }

    /// Number of SLM rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of SLM columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The movement timing constants.
    pub fn times(&self) -> &MovementTimes {
        &self.times
    }

    /// Total number of SLM sites.
    pub fn num_sites(&self) -> usize {
        self.rows * self.cols
    }

    /// Flat site index of `(row, col)` — matches `Topology::grid`'s
    /// vertex numbering (`row * cols + col`).
    pub fn site(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// `(row, col)` coordinates of a flat site index.
    pub fn coords(&self, site: usize) -> (usize, usize) {
        debug_assert!(site < self.num_sites());
        (site / self.cols, site % self.cols)
    }

    /// Whether `(row, col)` is on the grid.
    pub fn in_bounds(&self, row: usize, col: usize) -> bool {
        row < self.rows && col < self.cols
    }

    /// Whether two sites are within Rydberg interaction range. The
    /// blockade radius is one lattice spacing: exactly the 4-neighbor
    /// adjacency of the grid coupling graph, so "in range" and
    /// "coupled" agree.
    pub fn in_rydberg_range(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        manhattan(a, b) == 1
    }
}

impl fmt::Display for GridGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpqa-{}x{}", self.rows, self.cols)
    }
}

/// Manhattan distance between two `(row, col)` coordinates.
pub fn manhattan(a: (usize, usize), b: (usize, usize)) -> usize {
    a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
}

/// One atom's translation within a [`MoveStage::Shift`]: the AOD picks
/// the atom up at `from` and drops it at `to` (both `(row, col)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomMove {
    /// The atom being moved (its stable id — the circuit wire it holds).
    pub atom: usize,
    /// Source SLM site.
    pub from: (usize, usize),
    /// Destination SLM site.
    pub to: (usize, usize),
}

/// One stage of a DPQA movement program. Stages execute sequentially;
/// everything inside a stage is parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveStage {
    /// Load a fresh atom from the reservoir into a free SLM site.
    Load {
        /// The atom id (the circuit wire it will hold).
        atom: usize,
        /// Target `(row, col)` site.
        at: (usize, usize),
    },
    /// One AOD pass: pick up the listed atoms, translate them in
    /// parallel, drop them into free sites. AOD row/column traps cannot
    /// cross, so the moves must preserve the relative row order and
    /// relative column order of every pair of moved atoms
    /// ([`MovementSchedule::verify`] enforces this).
    Shift {
        /// The parallel per-atom translations.
        moves: Vec<AtomMove>,
    },
    /// One global Rydberg pulse executing the listed atom pairs; every
    /// pair must be within blockade range and pairwise disjoint.
    Rydberg {
        /// Interacting atom-id pairs (each id appears at most once).
        pairs: Vec<(usize, usize)>,
    },
    /// Move an atom off-grid to the measurement zone for mid-circuit
    /// measurement; its SLM site becomes free (this is how qubit reuse
    /// is priced in movement time).
    MeasureTransit {
        /// The atom leaving the grid.
        atom: usize,
    },
}

/// A complete movement program: the DPQA backend's routing output,
/// alongside the (still gate-level) routed circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MovementSchedule {
    stages: Vec<MoveStage>,
}

impl MovementSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        MovementSchedule::default()
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: MoveStage) {
        self.stages.push(stage);
    }

    /// The stages, in execution order.
    pub fn stages(&self) -> &[MoveStage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the schedule has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of [`MoveStage::Shift`] stages (the AOD passes — the
    /// quantity movement routing tries to minimize).
    pub fn shift_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, MoveStage::Shift { .. }))
            .count()
    }

    /// Number of [`MoveStage::Rydberg`] stages.
    pub fn rydberg_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, MoveStage::Rydberg { .. }))
            .count()
    }

    /// Total movement time of the schedule under `times`, in `dt`:
    /// loads and measurement transits at their flat costs, each shift
    /// stage at pick-up + drop-off + per-site cost of its longest move
    /// (moves are parallel), each Rydberg stage at one pulse.
    pub fn movement_dt(&self, times: &MovementTimes) -> u64 {
        self.stages
            .iter()
            .map(|stage| match stage {
                MoveStage::Load { .. } => times.load_dt,
                MoveStage::Shift { moves } => {
                    let longest = moves
                        .iter()
                        .map(|m| manhattan(m.from, m.to) as u64)
                        .max()
                        .unwrap_or(0);
                    times.pickup_dt + times.shift_per_site_dt * longest + times.dropoff_dt
                }
                MoveStage::Rydberg { .. } => times.rydberg_dt,
                MoveStage::MeasureTransit { .. } => times.measure_transit_dt,
            })
            .sum()
    }

    /// Replays the schedule against `geom`, tracking site occupancy, and
    /// reports the first physical violation: loading into an occupied or
    /// out-of-bounds site, re-loading a live atom, moving an atom that is
    /// not where the move claims, two moves sharing a source or
    /// destination, an AOD shift that would make row or column traps
    /// cross, a Rydberg pair out of blockade range (or an atom in two
    /// pairs at once), or measuring an atom that is not on the grid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, naming
    /// the stage index.
    pub fn verify(&self, geom: &GridGeometry) -> Result<(), String> {
        // (row, col) -> atom id currently trapped there.
        let mut occ: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // atom id -> (row, col); the inverse view.
        let mut site_of: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for (i, stage) in self.stages.iter().enumerate() {
            match stage {
                MoveStage::Load { atom, at } => {
                    if !geom.in_bounds(at.0, at.1) {
                        return Err(format!(
                            "stage {i}: load of atom {atom} at {at:?} is off-grid"
                        ));
                    }
                    if let Some(&held) = occ.get(at) {
                        return Err(format!(
                            "stage {i}: load of atom {atom} at {at:?} but site holds atom {held}"
                        ));
                    }
                    if site_of.contains_key(atom) {
                        return Err(format!("stage {i}: atom {atom} loaded twice"));
                    }
                    occ.insert(*at, *atom);
                    site_of.insert(*atom, *at);
                }
                MoveStage::Shift { moves } => {
                    for m in moves {
                        if !geom.in_bounds(m.to.0, m.to.1) {
                            return Err(format!(
                                "stage {i}: move of atom {} to {:?} is off-grid",
                                m.atom, m.to
                            ));
                        }
                        if site_of.get(&m.atom) != Some(&m.from) {
                            return Err(format!(
                                "stage {i}: atom {} is not at claimed source {:?}",
                                m.atom, m.from
                            ));
                        }
                    }
                    // AOD traps cannot cross: relative row order and
                    // relative column order of moved atoms must be
                    // preserved between sources and destinations.
                    for (j, a) in moves.iter().enumerate() {
                        for b in &moves[j + 1..] {
                            if a.atom == b.atom {
                                return Err(format!(
                                    "stage {i}: atom {} moved twice in one shift",
                                    a.atom
                                ));
                            }
                            if a.from.0.cmp(&b.from.0) != a.to.0.cmp(&b.to.0)
                                || a.from.1.cmp(&b.from.1) != a.to.1.cmp(&b.to.1)
                            {
                                return Err(format!(
                                    "stage {i}: atoms {} and {} would cross AOD traps",
                                    a.atom, b.atom
                                ));
                            }
                        }
                    }
                    // All sources lift simultaneously, then all drop.
                    for m in moves {
                        occ.remove(&m.from);
                    }
                    for m in moves {
                        if let Some(&held) = occ.get(&m.to) {
                            return Err(format!(
                                "stage {i}: atom {} dropped on occupied site {:?} (atom {held})",
                                m.atom, m.to
                            ));
                        }
                        occ.insert(m.to, m.atom);
                        site_of.insert(m.atom, m.to);
                    }
                }
                MoveStage::Rydberg { pairs } => {
                    let mut seen: Vec<usize> = Vec::with_capacity(pairs.len() * 2);
                    for &(a, b) in pairs {
                        for atom in [a, b] {
                            if !site_of.contains_key(&atom) {
                                return Err(format!(
                                    "stage {i}: rydberg pair uses atom {atom} not on the grid"
                                ));
                            }
                            if seen.contains(&atom) {
                                return Err(format!(
                                    "stage {i}: atom {atom} appears in two rydberg pairs"
                                ));
                            }
                            seen.push(atom);
                        }
                        let (sa, sb) = (site_of[&a], site_of[&b]);
                        if !geom.in_rydberg_range(sa, sb) {
                            return Err(format!(
                                "stage {i}: pair ({a}, {b}) at {sa:?}/{sb:?} is out of rydberg range"
                            ));
                        }
                    }
                }
                MoveStage::MeasureTransit { atom } => {
                    let Some(at) = site_of.remove(atom) else {
                        return Err(format!(
                            "stage {i}: measure transit of atom {atom} not on the grid"
                        ));
                    };
                    occ.remove(&at);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> GridGeometry {
        GridGeometry::new(3, 3)
    }

    #[test]
    fn site_numbering_matches_grid_topology() {
        let g = geom();
        assert_eq!(g.site(0, 0), 0);
        assert_eq!(g.site(1, 2), 5);
        assert_eq!(g.coords(5), (1, 2));
        assert_eq!(g.num_sites(), 9);
        assert_eq!(g.to_string(), "dpqa-3x3");
    }

    #[test]
    fn legal_schedule_verifies_and_prices() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (0, 0),
        });
        s.push(MoveStage::Load {
            atom: 1,
            at: (2, 2),
        });
        s.push(MoveStage::Shift {
            moves: vec![AtomMove {
                atom: 1,
                from: (2, 2),
                to: (0, 1),
            }],
        });
        s.push(MoveStage::Rydberg {
            pairs: vec![(0, 1)],
        });
        s.push(MoveStage::MeasureTransit { atom: 0 });
        s.verify(&g).unwrap();
        assert_eq!(s.shift_stages(), 1);
        assert_eq!(s.rydberg_stages(), 1);
        let t = MovementTimes::default();
        // Shift distance is Manhattan((2,2) -> (0,1)) = 3.
        let expected = 2 * t.load_dt
            + t.pickup_dt
            + 3 * t.shift_per_site_dt
            + t.dropoff_dt
            + t.rydberg_dt
            + t.measure_transit_dt;
        assert_eq!(s.movement_dt(&t), expected);
    }

    #[test]
    fn double_occupancy_is_rejected() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (1, 1),
        });
        s.push(MoveStage::Load {
            atom: 1,
            at: (1, 1),
        });
        let err = s.verify(&g).unwrap_err();
        assert!(err.contains("site holds atom 0"), "{err}");
    }

    #[test]
    fn crossing_aod_moves_are_rejected() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (0, 0),
        });
        s.push(MoveStage::Load {
            atom: 1,
            at: (0, 2),
        });
        // Columns swap relative order: 0 < 2 at the sources, 2 > 1 at
        // the destinations.
        s.push(MoveStage::Shift {
            moves: vec![
                AtomMove {
                    atom: 0,
                    from: (0, 0),
                    to: (0, 2),
                },
                AtomMove {
                    atom: 1,
                    from: (0, 2),
                    to: (0, 1),
                },
            ],
        });
        let err = s.verify(&g).unwrap_err();
        assert!(err.contains("cross AOD traps"), "{err}");
    }

    #[test]
    fn parallel_order_preserving_shift_verifies() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (0, 0),
        });
        s.push(MoveStage::Load {
            atom: 1,
            at: (0, 1),
        });
        // Both move right by one; order preserved, sources free the
        // sites the other lands on.
        s.push(MoveStage::Shift {
            moves: vec![
                AtomMove {
                    atom: 0,
                    from: (0, 0),
                    to: (0, 1),
                },
                AtomMove {
                    atom: 1,
                    from: (0, 1),
                    to: (0, 2),
                },
            ],
        });
        s.verify(&g).unwrap();
    }

    #[test]
    fn out_of_range_rydberg_is_rejected() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (0, 0),
        });
        s.push(MoveStage::Load {
            atom: 1,
            at: (2, 2),
        });
        s.push(MoveStage::Rydberg {
            pairs: vec![(0, 1)],
        });
        let err = s.verify(&g).unwrap_err();
        assert!(err.contains("out of rydberg range"), "{err}");
    }

    #[test]
    fn measure_transit_frees_the_site() {
        let g = geom();
        let mut s = MovementSchedule::new();
        s.push(MoveStage::Load {
            atom: 0,
            at: (1, 1),
        });
        s.push(MoveStage::MeasureTransit { atom: 0 });
        s.push(MoveStage::Load {
            atom: 1,
            at: (1, 1),
        });
        s.verify(&g).unwrap();
        // But measuring an absent atom fails.
        let mut bad = MovementSchedule::new();
        bad.push(MoveStage::MeasureTransit { atom: 7 });
        assert!(bad.verify(&g).is_err());
    }
}
