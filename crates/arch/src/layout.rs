//! Typed logical↔physical qubit layout with reuse bookkeeping.
//!
//! Routing needs four pieces of state that must stay mutually consistent:
//! the logical→physical map, its inverse, the free-list of unoccupied
//! physical wires, and each wire's dirty/reset state for qubit reuse.
//! Historically the router kept these as four parallel fields and updated
//! them ad hoc; [`Layout`] owns them behind a small mutation API
//! ([`Layout::assign`], [`Layout::release`], [`Layout::swap_phys`]) and
//! re-checks the invariants after every mutation in debug builds.
//!
//! Invariants (see [`Layout::check_invariants`]):
//!
//! * **Bijectivity** — `log2phys` and `phys2log` are mutually inverse on
//!   every assigned qubit.
//! * **Free-list exactness** — a physical wire is in the free-list if and
//!   only if no logical qubit occupies it.
//! * **Usage monotonicity** — every currently occupied wire has been
//!   marked used; `used_ever` never shrinks.

use std::collections::BTreeSet;

/// Reset state of a physical wire between logical assignments.
///
/// A wire that has hosted a logical qubit is *dirty*: before a new logical
/// qubit can start there it must be returned to |0⟩. CaQR's Fig. 2
/// optimization makes the reset cheap when the retiring qubit ended in a
/// measurement — a classically conditioned X on the existing outcome —
/// and otherwise requires a fresh measurement first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireState {
    /// Never used, or reset since last use: known |0⟩.
    Fresh,
    /// Hosted a logical qubit that has since retired.
    Dirty {
        /// Classical bit index holding the retiring qubit's measurement
        /// outcome, when its final gate was a measurement of itself; a
        /// conditional X on this bit completes the reset. `None` means a
        /// fresh measurement must be inserted before the conditional X.
        measured: Option<usize>,
    },
}

/// A bidirectional logical↔physical map with a free-list and per-wire
/// dirty/reset state.
///
/// All mutation goes through [`Layout::assign`], [`Layout::release`], and
/// [`Layout::swap_phys`]; each re-validates the structural invariants in
/// debug builds (`debug_assertions`), so any routing bug that desynchronizes
/// the maps fails loudly at the mutation that introduced it.
#[derive(Debug, Clone)]
pub struct Layout {
    log2phys: Vec<Option<usize>>,
    phys2log: Vec<Option<usize>>,
    state: Vec<WireState>,
    free: BTreeSet<usize>,
    used_ever: BTreeSet<usize>,
    initial: Vec<Option<usize>>,
}

impl Layout {
    /// An empty layout: no logical qubit mapped, every physical wire free
    /// and fresh.
    pub fn new(num_logical: usize, num_physical: usize) -> Self {
        Self {
            log2phys: vec![None; num_logical],
            phys2log: vec![None; num_physical],
            state: vec![WireState::Fresh; num_physical],
            free: (0..num_physical).collect(),
            used_ever: BTreeSet::new(),
            initial: vec![None; num_logical],
        }
    }

    /// Number of logical qubits this layout tracks.
    pub fn num_logical(&self) -> usize {
        self.log2phys.len()
    }

    /// Number of physical wires this layout tracks.
    pub fn num_physical(&self) -> usize {
        self.phys2log.len()
    }

    /// Physical wire currently hosting logical qubit `l`, if any.
    pub fn phys_of(&self, l: usize) -> Option<usize> {
        self.log2phys[l]
    }

    /// Logical qubit currently occupying physical wire `p`, if any.
    pub fn logical_at(&self, p: usize) -> Option<usize> {
        self.phys2log[p]
    }

    /// Whether physical wire `p` is unoccupied.
    pub fn is_free(&self, p: usize) -> bool {
        self.free.contains(&p)
    }

    /// Unoccupied physical wires in ascending order.
    pub fn free_wires(&self) -> impl Iterator<Item = usize> + '_ {
        self.free.iter().copied()
    }

    /// Number of unoccupied physical wires.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Whether physical wire `p` has ever hosted a logical qubit (or been
    /// touched by a SWAP).
    pub fn was_used(&self, p: usize) -> bool {
        self.used_ever.contains(&p)
    }

    /// Number of distinct physical wires ever used.
    pub fn used_count(&self) -> usize {
        self.used_ever.len()
    }

    /// Reset state of physical wire `p`.
    pub fn wire_state(&self, p: usize) -> WireState {
        self.state[p]
    }

    /// First physical wire each logical qubit was assigned to, `None` for
    /// qubits never assigned. SWAPs do not rewrite history here.
    pub fn initial_layout(&self) -> &[Option<usize>] {
        &self.initial
    }

    /// Assigns logical qubit `l` to physical wire `p`, returning the
    /// wire's state *before* the assignment so the caller can emit the
    /// reset sequence a dirty wire requires. The wire becomes occupied,
    /// fresh, and used; the first assignment of `l` is recorded in the
    /// initial layout.
    ///
    /// `l` must be unmapped and `p` free (checked in debug builds).
    pub fn assign(&mut self, l: usize, p: usize) -> WireState {
        debug_assert!(self.log2phys[l].is_none(), "logical {l} already mapped");
        let was_free = self.free.remove(&p);
        debug_assert!(was_free, "assigning logical {l} to occupied physical {p}");
        let prior = self.state[p];
        self.state[p] = WireState::Fresh;
        self.log2phys[l] = Some(p);
        self.phys2log[p] = Some(l);
        self.used_ever.insert(p);
        if self.initial[l].is_none() {
            self.initial[l] = Some(p);
        }
        self.debug_check();
        prior
    }

    /// Retires logical qubit `l`: unmaps it, marks its wire dirty (with
    /// `measured` as the reusable measurement outcome, if any), and returns
    /// the wire to the free-list. Returns the freed physical wire, or
    /// `None` when `l` was not mapped.
    pub fn release(&mut self, l: usize, measured: Option<usize>) -> Option<usize> {
        let p = self.log2phys[l].take()?;
        self.phys2log[p] = None;
        self.state[p] = WireState::Dirty { measured };
        self.free.insert(p);
        self.debug_check();
        Some(p)
    }

    /// Applies a SWAP between physical wires `a` and `b`: occupants, wire
    /// states, and free-list membership all travel with the wires, and both
    /// wires are marked used.
    pub fn swap_phys(&mut self, a: usize, b: usize) {
        let la = self.phys2log[a];
        let lb = self.phys2log[b];
        self.phys2log[a] = lb;
        self.phys2log[b] = la;
        if let Some(l) = la {
            self.log2phys[l] = Some(b);
        }
        if let Some(l) = lb {
            self.log2phys[l] = Some(a);
        }
        self.state.swap(a, b);
        self.used_ever.insert(a);
        self.used_ever.insert(b);
        match (self.free.contains(&a), self.free.contains(&b)) {
            (true, false) => {
                self.free.remove(&a);
                self.free.insert(b);
            }
            (false, true) => {
                self.free.remove(&b);
                self.free.insert(a);
            }
            _ => {}
        }
        self.debug_check();
    }

    /// Validates every structural invariant, panicking with a description
    /// of the first violation. Mutating methods call this automatically in
    /// debug builds; tests may call it directly.
    pub fn check_invariants(&self) {
        for (l, &slot) in self.log2phys.iter().enumerate() {
            if let Some(p) = slot {
                assert!(
                    p < self.phys2log.len(),
                    "logical {l} mapped to out-of-range physical {p}"
                );
                assert_eq!(
                    self.phys2log[p],
                    Some(l),
                    "logical {l} -> physical {p} has no inverse entry"
                );
                assert!(
                    self.used_ever.contains(&p),
                    "occupied physical {p} missing from used_ever"
                );
            }
        }
        for (p, &slot) in self.phys2log.iter().enumerate() {
            if let Some(l) = slot {
                assert_eq!(
                    self.log2phys[l],
                    Some(p),
                    "physical {p} -> logical {l} has no inverse entry"
                );
            }
            assert_eq!(
                self.free.contains(&p),
                slot.is_none(),
                "free-list disagrees with occupancy at physical {p}"
            );
        }
        for &p in &self.free {
            assert!(p < self.phys2log.len(), "free-list holds out-of-range {p}");
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        self.check_invariants();
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_layout_is_all_free_and_fresh() {
        let layout = Layout::new(3, 5);
        assert_eq!(layout.num_logical(), 3);
        assert_eq!(layout.num_physical(), 5);
        assert_eq!(layout.free_count(), 5);
        assert_eq!(layout.used_count(), 0);
        assert_eq!(layout.wire_state(0), WireState::Fresh);
        assert_eq!(layout.phys_of(0), None);
        layout.check_invariants();
    }

    #[test]
    fn assign_release_cycle_tracks_dirty_state() {
        let mut layout = Layout::new(2, 3);
        assert_eq!(layout.assign(0, 1), WireState::Fresh);
        assert_eq!(layout.phys_of(0), Some(1));
        assert_eq!(layout.logical_at(1), Some(0));
        assert!(!layout.is_free(1));
        assert!(layout.was_used(1));

        assert_eq!(layout.release(0, Some(7)), Some(1));
        assert!(layout.is_free(1));
        assert_eq!(layout.wire_state(1), WireState::Dirty { measured: Some(7) });

        // Reassigning the dirty wire reports the prior state and resets it.
        assert_eq!(layout.assign(1, 1), WireState::Dirty { measured: Some(7) });
        assert_eq!(layout.wire_state(1), WireState::Fresh);
    }

    #[test]
    fn release_unmapped_is_none() {
        let mut layout = Layout::new(2, 2);
        assert_eq!(layout.release(0, None), None);
    }

    #[test]
    fn initial_layout_records_first_assignment_only() {
        let mut layout = Layout::new(1, 4);
        layout.assign(0, 2);
        layout.release(0, None);
        layout.assign(0, 3);
        assert_eq!(layout.initial_layout(), &[Some(2)]);
    }

    #[test]
    fn swap_moves_occupant_state_and_free_membership() {
        let mut layout = Layout::new(2, 4);
        layout.assign(0, 0);
        layout.assign(1, 1);
        layout.release(1, Some(0)); // wire 1 free + dirty

        // Occupied <-> free swap: occupancy and dirty state travel.
        layout.swap_phys(0, 1);
        assert_eq!(layout.phys_of(0), Some(1));
        assert_eq!(layout.logical_at(1), Some(0));
        assert!(layout.is_free(0));
        assert!(!layout.is_free(1));
        assert_eq!(layout.wire_state(0), WireState::Dirty { measured: Some(0) });
        assert!(layout.was_used(0) && layout.was_used(1));

        // Free <-> free swap marks both used but changes no occupancy.
        layout.swap_phys(0, 2);
        assert!(layout.is_free(0) && layout.is_free(2));
        assert_eq!(layout.wire_state(2), WireState::Dirty { measured: Some(0) });
        assert!(layout.was_used(2));
    }

    #[test]
    fn free_wires_iterates_ascending() {
        let mut layout = Layout::new(2, 5);
        layout.assign(0, 2);
        let free: Vec<usize> = layout.free_wires().collect();
        assert_eq!(free, vec![0, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "occupied physical")]
    #[cfg(debug_assertions)]
    fn assigning_occupied_wire_panics_in_debug() {
        let mut layout = Layout::new(2, 2);
        layout.assign(0, 0);
        layout.assign(1, 0);
    }
}
