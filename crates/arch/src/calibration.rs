//! Synthetic device calibration data.
//!
//! The paper compiles against "real calibration data exported from the IBM
//! systems including the CNOT duration, CNOT error for each physical link,
//! and qubit readout errors" (§4.1). Those exports are not redistributable,
//! so this module *synthesizes* calibration with the same statistical shape
//! as the Falcon generation's published properties — per-link spread is the
//! property CaQR's error-variability-aware choices depend on, and that is
//! preserved. All values are drawn deterministically from a seed.

use crate::topology::Topology;
use caqr_circuit::fingerprint::{Fingerprint, StableHasher};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Length of one system cycle: `1 dt = 0.22 ns` (§2.1 of the paper).
pub const DT_NANOSECONDS: f64 = 0.22;

/// Per-device calibration: gate errors, durations, readout errors, and
/// coherence times. Durations are in `dt`.
#[derive(Debug, Clone)]
pub struct Calibration {
    cx_error: BTreeMap<(usize, usize), f64>,
    cx_duration: BTreeMap<(usize, usize), u64>,
    readout_error: Vec<f64>,
    sq_error: Vec<f64>,
    t1_dt: Vec<f64>,
    t2_dt: Vec<f64>,
    sq_duration: u64,
    measure_duration: u64,
    condx_duration: u64,
    builtin_reset_duration: u64,
}

impl Calibration {
    /// Synthesizes Falcon-like calibration for `topology`, deterministically
    /// from `seed`.
    ///
    /// Distributions (matching the public Falcon medians within a factor):
    /// CNOT error 0.5%-2.5%, CNOT duration 1100-2300 dt, readout error
    /// 1%-5%, single-qubit error 0.02%-0.08%, T1/T2 around 100 us.
    pub fn synthetic(topology: &Topology, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = topology.num_qubits();
        let mut cx_error = BTreeMap::new();
        let mut cx_duration = BTreeMap::new();
        for (u, v) in topology.edges() {
            // Log-uniform spread captures the heavy tail of bad links.
            let e = 10f64.powf(rng.gen_range(-2.3..-1.6));
            cx_error.insert((u, v), e);
            cx_duration.insert((u, v), rng.gen_range(1100..2300));
        }
        let readout_error = (0..n).map(|_| rng.gen_range(0.01..0.05)).collect();
        let sq_error = (0..n)
            .map(|_| 10f64.powf(rng.gen_range(-3.7..-3.1)))
            .collect();
        // T1 ~ 70-160 us, T2 <= 2*T1, both in dt.
        let us_to_dt = 1000.0 / DT_NANOSECONDS;
        let t1_dt: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(70.0..160.0) * us_to_dt)
            .collect();
        let t2_dt = t1_dt
            .iter()
            .map(|&t1| t1 * rng.gen_range(0.5..1.4))
            .collect();
        Calibration {
            cx_error,
            cx_duration,
            readout_error,
            sq_error,
            t1_dt,
            t2_dt,
            sq_duration: 160,
            // The Fig. 2 numbers: built-in measure+reset totals 33,179 dt;
            // measure + classically-conditioned X totals 16,467 dt.
            measure_duration: 15_000,
            condx_duration: 1_467,
            builtin_reset_duration: 18_179,
        }
    }

    fn edge_key(a: usize, b: usize) -> (usize, usize) {
        (a.min(b), a.max(b))
    }

    /// CNOT error rate of the physical link `{a, b}`.
    ///
    /// Returns the device-median error when the pair is not a coupling edge
    /// (useful when scoring logical circuits before mapping).
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        self.cx_error
            .get(&Self::edge_key(a, b))
            .copied()
            .unwrap_or_else(|| self.median_cx_error())
    }

    /// CNOT duration in `dt` of the physical link `{a, b}` (median when not
    /// an edge).
    pub fn cx_duration(&self, a: usize, b: usize) -> u64 {
        self.cx_duration
            .get(&Self::edge_key(a, b))
            .copied()
            .unwrap_or_else(|| self.median_cx_duration())
    }

    /// Median CNOT error across links.
    pub fn median_cx_error(&self) -> f64 {
        median_f64(self.cx_error.values().copied())
    }

    /// Median CNOT duration across links.
    pub fn median_cx_duration(&self) -> u64 {
        let mut v: Vec<u64> = self.cx_duration.values().copied().collect();
        if v.is_empty() {
            return 1500;
        }
        v.sort_unstable();
        v[v.len() / 2]
    }

    /// Readout (measurement) error of qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// Single-qubit gate error of qubit `q`.
    pub fn sq_error(&self, q: usize) -> f64 {
        self.sq_error[q]
    }

    /// T1 relaxation time of qubit `q` in `dt`.
    pub fn t1_dt(&self, q: usize) -> f64 {
        self.t1_dt[q]
    }

    /// T2 dephasing time of qubit `q` in `dt`.
    pub fn t2_dt(&self, q: usize) -> f64 {
        self.t2_dt[q]
    }

    /// Single-qubit gate duration in `dt`.
    pub fn sq_duration(&self) -> u64 {
        self.sq_duration
    }

    /// Measurement duration in `dt`.
    pub fn measure_duration(&self) -> u64 {
        self.measure_duration
    }

    /// Duration of the classically-conditioned X in `dt` (includes the
    /// classical feed-forward latency).
    pub fn condx_duration(&self) -> u64 {
        self.condx_duration
    }

    /// Duration of the built-in (measurement-pulse-embedding) reset in `dt`.
    pub fn builtin_reset_duration(&self) -> u64 {
        self.builtin_reset_duration
    }

    /// Total cost of the naive `measure + reset` reuse sequence (Fig. 2a).
    pub fn measure_plus_reset_duration(&self) -> u64 {
        self.measure_duration + self.builtin_reset_duration
    }

    /// Total cost of the paper's optimized `measure + conditional X` reuse
    /// sequence (Fig. 2b) — roughly half of Fig. 2a.
    pub fn measure_plus_condx_duration(&self) -> u64 {
        self.measure_duration + self.condx_duration
    }

    /// The number of qubits this calibration covers.
    pub fn num_qubits(&self) -> usize {
        self.readout_error.len()
    }

    /// A stable content fingerprint of the full calibration tables.
    ///
    /// Folds every per-link and per-qubit value in sorted (BTree) order, so
    /// two calibrations agree exactly when all their numbers agree bit for
    /// bit — the device half of the engine's content-addressed cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_usize(self.cx_error.len());
        for (&(u, v), &e) in &self.cx_error {
            h.write_usize(u);
            h.write_usize(v);
            h.write_f64(e);
        }
        for (&(u, v), &d) in &self.cx_duration {
            h.write_usize(u);
            h.write_usize(v);
            h.write_u64(d);
        }
        for table in [
            &self.readout_error,
            &self.sq_error,
            &self.t1_dt,
            &self.t2_dt,
        ] {
            h.write_usize(table.len());
            for &x in table.iter() {
                h.write_f64(x);
            }
        }
        for d in [
            self.sq_duration,
            self.measure_duration,
            self.condx_duration,
            self.builtin_reset_duration,
        ] {
            h.write_u64(d);
        }
        h.finish()
    }
}

fn median_f64(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.01;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in calibration"));
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> (Topology, Calibration) {
        let t = Topology::heavy_hex_falcon27();
        let c = Calibration::synthetic(&t, 11);
        (t, c)
    }

    #[test]
    fn deterministic_from_seed() {
        let t = Topology::heavy_hex_falcon27();
        let a = Calibration::synthetic(&t, 5);
        let b = Calibration::synthetic(&t, 5);
        assert_eq!(a.cx_error(0, 1), b.cx_error(0, 1));
        let c = Calibration::synthetic(&t, 6);
        assert_ne!(a.cx_error(0, 1), c.cx_error(0, 1));
    }

    #[test]
    fn ranges_match_falcon_generation() {
        let (t, c) = cal();
        for (u, v) in t.edges() {
            let e = c.cx_error(u, v);
            assert!((0.004..0.03).contains(&e), "cx error {e}");
            let d = c.cx_duration(u, v);
            assert!((1100..2300).contains(&d), "cx duration {d}");
        }
        for q in 0..t.num_qubits() {
            assert!((0.01..0.05).contains(&c.readout_error(q)));
            assert!(c.t1_dt(q) > 100_000.0);
            assert!(c.t2_dt(q) > 50_000.0);
            assert!(c.sq_error(q) < 1e-3);
        }
    }

    #[test]
    fn edge_symmetry() {
        let (_, c) = cal();
        assert_eq!(c.cx_error(0, 1), c.cx_error(1, 0));
        assert_eq!(c.cx_duration(1, 4), c.cx_duration(4, 1));
    }

    #[test]
    fn non_edge_falls_back_to_median() {
        let (_, c) = cal();
        assert_eq!(c.cx_error(0, 26), c.median_cx_error());
        assert_eq!(c.cx_duration(0, 26), c.median_cx_duration());
    }

    #[test]
    fn fig2_reset_optimization_numbers() {
        let (_, c) = cal();
        assert_eq!(c.measure_plus_reset_duration(), 33_179);
        assert_eq!(c.measure_plus_condx_duration(), 16_467);
        // ~50% reduction, as the paper reports.
        let ratio = c.measure_plus_condx_duration() as f64 / c.measure_plus_reset_duration() as f64;
        assert!((0.45..0.55).contains(&ratio));
    }

    #[test]
    fn variability_exists() {
        // Error-aware selection is meaningless without spread.
        let (t, c) = cal();
        let errors: Vec<f64> = t.edges().map(|(u, v)| c.cx_error(u, v)).collect();
        let min = errors.iter().cloned().fold(f64::MAX, f64::min);
        let max = errors.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 1.5, "spread {min}..{max} too tight");
    }
}
