//! A device: a topology plus its calibration.

use crate::calibration::Calibration;
use crate::grid::GridGeometry;
use crate::topology::Topology;
use caqr_circuit::depth::DurationModel;
use caqr_circuit::fingerprint::{Fingerprint, StableHasher};
use caqr_circuit::{Gate, Instruction};
use std::fmt;

/// A quantum device: coupling graph + calibration data. The input every
/// CaQR pass and the noisy simulator consume.
///
/// # Examples
///
/// ```
/// use caqr_arch::Device;
///
/// let dev = Device::mumbai(0);
/// let (u, v) = (0, 1);
/// assert!(dev.topology().are_coupled(u, v));
/// assert!(dev.calibration().cx_error(u, v) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    topology: Topology,
    calibration: Calibration,
    dpqa: Option<GridGeometry>,
}

impl Device {
    /// Builds a device from parts.
    ///
    /// # Panics
    ///
    /// Panics if the calibration covers a different qubit count.
    pub fn new(topology: Topology, calibration: Calibration) -> Self {
        assert_eq!(
            topology.num_qubits(),
            calibration.num_qubits(),
            "calibration does not match topology"
        );
        Device {
            topology,
            calibration,
            dpqa: None,
        }
    }

    /// A DPQA device: a `rows x cols` grid coupling graph (the Rydberg
    /// blockade adjacency), synthetic calibration seeded by `seed`, and
    /// the [`GridGeometry`] the movement-based routing backend needs.
    pub fn dpqa_grid(rows: usize, cols: usize, seed: u64) -> Self {
        let mut dev = Device::with_synthetic_calibration(Topology::grid(rows, cols), seed);
        dev.dpqa = Some(GridGeometry::new(rows, cols));
        dev
    }

    /// The DPQA grid geometry, when this device is a neutral-atom array
    /// (built by [`Device::dpqa_grid`]). `None` for fixed-coupling
    /// devices — the movement backend rejects those with a typed error.
    pub fn dpqa_geometry(&self) -> Option<&GridGeometry> {
        self.dpqa.as_ref()
    }

    /// The 27-qubit IBM Mumbai stand-in: Falcon heavy-hex topology with
    /// synthetic Falcon-like calibration (seeded).
    pub fn mumbai(seed: u64) -> Self {
        let topology = Topology::heavy_hex_falcon27();
        let calibration = Calibration::synthetic(&topology, seed);
        Device::new(topology, calibration)
    }

    /// A scaled heavy-hex device with at least `min_qubits` qubits.
    pub fn scaled_heavy_hex(min_qubits: usize, seed: u64) -> Self {
        let topology = Topology::scaled_heavy_hex(min_qubits);
        let calibration = Calibration::synthetic(&topology, seed);
        Device::new(topology, calibration)
    }

    /// An arbitrary topology with synthetic calibration.
    pub fn with_synthetic_calibration(topology: Topology, seed: u64) -> Self {
        let calibration = Calibration::synthetic(&topology, seed);
        Device::new(topology, calibration)
    }

    /// The coupling topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration data.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// A [`DurationModel`] scoring *physical* circuits (operands are
    /// physical qubit indices): CNOTs use per-link durations, SWAPs cost
    /// three CNOTs, measurement and conditional resets use the Fig. 2
    /// constants.
    pub fn duration_model(&self) -> DeviceDurations<'_> {
        DeviceDurations { device: self }
    }

    /// A stable content fingerprint of this device: topology (name, size,
    /// sorted edge list) combined with the full calibration tables. Used
    /// as the device half of the engine's compile-cache key.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str(self.topology.name());
        h.write_usize(self.topology.num_qubits());
        let mut edges: Vec<(usize, usize)> = self.topology.edges().collect();
        edges.sort_unstable();
        h.write_usize(edges.len());
        for (u, v) in edges {
            h.write_usize(u);
            h.write_usize(v);
        }
        // DPQA geometry joins the fingerprint only when present, so every
        // fixed-coupling device keeps its historical fingerprint.
        if let Some(g) = &self.dpqa {
            h.write_str("dpqa");
            h.write_usize(g.rows());
            h.write_usize(g.cols());
            let t = g.times();
            for v in [
                t.pickup_dt,
                t.dropoff_dt,
                t.shift_per_site_dt,
                t.rydberg_dt,
                t.measure_transit_dt,
                t.load_dt,
            ] {
                h.write_usize(v as usize);
            }
        }
        h.finish().combine(self.calibration.fingerprint())
    }

    /// A [`DurationModel`] for *logical* circuits (no mapping yet): uses
    /// device-median durations so QS-CaQR can score candidates before
    /// routing.
    pub fn logical_duration_model(&self) -> LogicalDurations {
        LogicalDurations {
            sq: self.calibration.sq_duration(),
            cx: self.calibration.median_cx_duration(),
            measure: self.calibration.measure_duration(),
            condx: self.calibration.condx_duration(),
            reset: self.calibration.builtin_reset_duration(),
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device {}", self.topology)
    }
}

/// Duration model for mapped circuits; see [`Device::duration_model`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceDurations<'a> {
    device: &'a Device,
}

impl DurationModel for DeviceDurations<'_> {
    fn duration(&self, instr: &Instruction) -> u64 {
        let cal = self.device.calibration();
        match instr.gate {
            Gate::Measure => cal.measure_duration(),
            Gate::Reset => cal.builtin_reset_duration(),
            Gate::X if instr.condition.is_some() => cal.condx_duration(),
            Gate::Swap => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                3 * cal.cx_duration(a, b)
            }
            g if g.is_two_qubit() => {
                let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                cal.cx_duration(a, b)
            }
            _ => cal.sq_duration(),
        }
    }
}

/// Duration model for unmapped logical circuits; see
/// [`Device::logical_duration_model`].
#[derive(Debug, Clone, Copy)]
pub struct LogicalDurations {
    sq: u64,
    cx: u64,
    measure: u64,
    condx: u64,
    reset: u64,
}

impl DurationModel for LogicalDurations {
    fn duration(&self, instr: &Instruction) -> u64 {
        match instr.gate {
            Gate::Measure => self.measure,
            Gate::Reset => self.reset,
            Gate::X if instr.condition.is_some() => self.condx,
            Gate::Swap => 3 * self.cx,
            g if g.is_two_qubit() => self.cx,
            _ => self.sq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Circuit, Clbit, Qubit};

    #[test]
    fn mumbai_is_consistent() {
        let d = Device::mumbai(3);
        assert_eq!(d.num_qubits(), 27);
        assert!(format!("{d}").contains("falcon"));
    }

    #[test]
    fn duration_model_scores_physical_ops() {
        let d = Device::mumbai(3);
        let m = d.duration_model();
        let cx = Instruction::gate(Gate::Cx, vec![Qubit::new(0), Qubit::new(1)]);
        assert_eq!(m.duration(&cx), d.calibration().cx_duration(0, 1));
        let swap = Instruction::gate(Gate::Swap, vec![Qubit::new(0), Qubit::new(1)]);
        assert_eq!(m.duration(&swap), 3 * d.calibration().cx_duration(0, 1));
        let h = Instruction::gate(Gate::H, vec![Qubit::new(0)]);
        assert_eq!(m.duration(&h), d.calibration().sq_duration());
    }

    #[test]
    fn conditional_x_uses_condx_duration() {
        let d = Device::mumbai(3);
        let mut c = Circuit::new(1, 1);
        c.x(Qubit::new(0));
        c.cond_x(Qubit::new(0), Clbit::new(0));
        let m = d.duration_model();
        assert_eq!(
            m.duration(&c.instructions()[0]),
            d.calibration().sq_duration()
        );
        assert_eq!(
            m.duration(&c.instructions()[1]),
            d.calibration().condx_duration()
        );
    }

    #[test]
    fn reuse_sequence_duration_matches_fig2() {
        let d = Device::mumbai(3);
        let mut c = Circuit::new(1, 1);
        c.measure_and_reset(Qubit::new(0), Clbit::new(0));
        let m = d.duration_model();
        let total: u64 = c.iter().map(|i| m.duration(i)).sum();
        assert_eq!(total, d.calibration().measure_plus_condx_duration());
    }

    #[test]
    fn logical_model_uses_medians() {
        let d = Device::mumbai(3);
        let m = d.logical_duration_model();
        let cx = Instruction::gate(Gate::Cx, vec![Qubit::new(5), Qubit::new(20)]);
        assert_eq!(m.duration(&cx), d.calibration().median_cx_duration());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_calibration_rejected() {
        let t27 = Topology::heavy_hex_falcon27();
        let cal = Calibration::synthetic(&t27, 0);
        Device::new(Topology::line(5), cal);
    }

    #[test]
    fn dpqa_grid_carries_geometry_and_distinct_fingerprint() {
        let plain = Device::with_synthetic_calibration(Topology::grid(3, 3), 7);
        let dpqa = Device::dpqa_grid(3, 3, 7);
        assert!(plain.dpqa_geometry().is_none());
        let g = dpqa.dpqa_geometry().expect("dpqa device has geometry");
        assert_eq!((g.rows(), g.cols()), (3, 3));
        // Same topology + calibration, but the geometry is part of the
        // device identity: compile-cache entries must not collide.
        assert_ne!(plain.fingerprint(), dpqa.fingerprint());
        assert_eq!(Device::dpqa_grid(3, 3, 7).fingerprint(), dpqa.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_identity() {
        // Same topology + seed => same fingerprint.
        assert_eq!(
            Device::mumbai(7).fingerprint(),
            Device::mumbai(7).fingerprint()
        );
        // Calibration seed changes it.
        assert_ne!(
            Device::mumbai(7).fingerprint(),
            Device::mumbai(8).fingerprint()
        );
        // Topology changes it even under the same seed.
        let line = Device::with_synthetic_calibration(Topology::line(27), 7);
        assert_ne!(Device::mumbai(7).fingerprint(), line.fingerprint());
    }
}
