//! Hardware architecture model for the CaQR reproduction.
//!
//! CaQR's evaluation targets IBM heavy-hex devices: the 27-qubit Falcon
//! processor *IBM Mumbai* for real-machine runs, and scaled heavy-hex
//! lattices for larger compilations (§4.1). This crate provides:
//!
//! * [`Topology`] — coupling graphs: the exact Falcon 27-qubit heavy-hex,
//!   a parametric scaled heavy-hex generator, and simple shapes (line,
//!   ring, grid, star, full) for unit tests and worked examples.
//! * [`Calibration`] — per-edge CNOT error/duration, per-qubit readout
//!   error and T1/T2, plus the measurement/reset timing constants behind
//!   the paper's Fig. 2 optimization (`measure + conditional X` at roughly
//!   half the cost of `measure + reset`). Real calibration exports are
//!   proprietary, so we synthesize values from the publicly reported
//!   Falcon-generation distributions, deterministically from a seed.
//! * [`Device`] — a topology paired with calibration, the unit every
//!   compiler pass takes as input.
//! * [`Layout`] — the typed logical↔physical qubit map (with free-list and
//!   dirty/reset state) that routing mutates, invariant-checked in debug
//!   builds.
//! * [`GridGeometry`] / [`MovementSchedule`] — the DPQA (neutral-atom)
//!   hardware model: a 2D SLM site grid with AOD-based atom movement,
//!   timing constants, and a typed, verifiable movement-schedule IR for
//!   the movement-based routing backend.
//!
//! # Examples
//!
//! ```
//! use caqr_arch::Device;
//!
//! let dev = Device::mumbai(7);
//! assert_eq!(dev.topology().num_qubits(), 27);
//! assert_eq!(dev.topology().max_degree(), 3); // heavy-hex property
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod device;
mod grid;
mod layout;
mod topology;

pub use calibration::{Calibration, DT_NANOSECONDS};
pub use device::Device;
pub use grid::{manhattan, AtomMove, GridGeometry, MoveStage, MovementSchedule, MovementTimes};
pub use layout::{Layout, WireState};
pub use topology::Topology;
