//! Coupling-graph topologies.

use caqr_graph::dist::DistanceMatrix;
use caqr_graph::Graph;
use std::fmt;

/// A device coupling graph: which physical qubit pairs support a native
/// two-qubit gate.
///
/// # Examples
///
/// ```
/// use caqr_arch::Topology;
///
/// let t = Topology::line(5);
/// assert!(t.are_coupled(1, 2));
/// assert!(!t.are_coupled(0, 4));
/// assert_eq!(t.distance(0, 4), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    graph: Graph,
    distances: DistanceMatrix,
}

impl Topology {
    /// Wraps an arbitrary coupling graph.
    pub fn from_graph(name: impl Into<String>, graph: Graph) -> Self {
        let distances = DistanceMatrix::of(&graph);
        Topology {
            name: name.into(),
            graph,
            distances,
        }
    }

    /// The exact 27-qubit IBM Falcon heavy-hex coupling map (Mumbai,
    /// Montreal, Toronto, ... share it). Every qubit has degree <= 3.
    pub fn heavy_hex_falcon27() -> Self {
        const EDGES: [(usize, usize); 28] = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Topology::from_graph("ibm-falcon-27", Graph::from_edges(27, EDGES))
    }

    /// A scaled heavy-hex lattice with `rows` qubit rows of `row_len`
    /// qubits each, joined by vertical connector qubits every 4 columns at
    /// alternating offsets — the pattern of IBM's Eagle/Osprey devices.
    /// Maximum degree is 3.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `row_len < 4`.
    pub fn heavy_hex(rows: usize, row_len: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(row_len >= 4, "rows must have at least 4 qubits");
        let mut edges = Vec::new();
        let mut next = 0usize;
        let mut row_start = Vec::with_capacity(rows);
        for _ in 0..rows {
            row_start.push(next);
            next += row_len;
        }
        // Horizontal chains.
        for &start in &row_start {
            for c in 0..row_len - 1 {
                edges.push((start + c, start + c + 1));
            }
        }
        // Vertical connectors between consecutive rows.
        for r in 0..rows - 1 {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            let mut c = offset;
            while c < row_len {
                let connector = next;
                next += 1;
                edges.push((row_start[r] + c, connector));
                edges.push((connector, row_start[r + 1] + c));
                c += 4;
            }
        }
        Topology::from_graph(
            format!("heavy-hex-{rows}x{row_len}"),
            Graph::from_edges(next, edges),
        )
    }

    /// The smallest generated heavy-hex lattice with at least `min_qubits`
    /// physical qubits — the paper's "scaled heavy-hex architecture" used
    /// once circuits outgrow 27 qubits.
    ///
    /// # Panics
    ///
    /// Panics if `min_qubits == 0`.
    pub fn scaled_heavy_hex(min_qubits: usize) -> Self {
        assert!(min_qubits > 0, "need at least one qubit");
        // Grow rows and row length together so the lattice stays roughly
        // square, like IBM's device generations.
        for size in 2usize.. {
            let rows = size;
            let row_len = 4 * size;
            let t = Topology::heavy_hex(rows, row_len);
            if t.num_qubits() >= min_qubits {
                return t;
            }
        }
        unreachable!("lattice growth is unbounded")
    }

    /// An Eagle-class heavy-hex lattice (7 rows of 15, 126 + connector
    /// qubits) — the size class of IBM's 127-qubit generation. The exact
    /// Eagle connector offsets differ slightly; CaQR's behaviour depends
    /// only on the heavy-hex degree-3 pattern, which this preserves.
    pub fn eagle_class() -> Self {
        Topology::heavy_hex(7, 15)
    }

    /// A linear chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1));
        Topology::from_graph(format!("line-{n}"), Graph::from_edges(n, edges))
    }

    /// A ring of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let edges = (0..n).map(|i| (i, (i + 1) % n));
        Topology::from_graph(format!("ring-{n}"), Graph::from_edges(n, edges))
    }

    /// A `rows x cols` grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                }
            }
        }
        Topology::from_graph(
            format!("grid-{rows}x{cols}"),
            Graph::from_edges(rows * cols, edges),
        )
    }

    /// The 5-qubit T/bowtie shape from the paper's Fig. 4(a): a central
    /// qubit with three neighbors plus one tail — max degree 3, so the
    /// 5-qubit BV star interaction graph cannot embed without SWAPs.
    pub fn five_qubit_t() -> Self {
        // 1 is the center: 0-1, 1-2, 1-3, 3-4.
        Topology::from_graph(
            "ibmq-5q-t",
            Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]),
        )
    }

    /// A fully connected topology (useful as a "no routing needed"
    /// control).
    pub fn full(n: usize) -> Self {
        let edges = (0..n).flat_map(|i| (i + 1..n).map(move |j| (i, j)));
        Topology::from_graph(format!("full-{n}"), Graph::from_edges(n, edges))
    }

    /// The topology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The underlying coupling graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Returns `true` if `a` and `b` share a coupling edge.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.graph.has_edge(a, b)
    }

    /// Hop distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.distances.get(a, b)
    }

    /// Physical neighbors of `q`.
    pub fn neighbors(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.graph.neighbors(q)
    }

    /// The coupling edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.graph.edges()
    }

    /// Maximum degree of the coupling graph.
    pub fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplings)",
            self.name,
            self.num_qubits(),
            self.graph.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon27_shape() {
        let t = Topology::heavy_hex_falcon27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.graph().num_edges(), 28);
        assert_eq!(t.max_degree(), 3);
        // Spot-check well-known couplings.
        assert!(t.are_coupled(1, 4));
        assert!(t.are_coupled(25, 26));
        assert!(!t.are_coupled(0, 26));
        // Connected.
        assert!(t.distance(0, 26) < u32::MAX);
    }

    #[test]
    fn heavy_hex_scaled_properties() {
        let t = Topology::heavy_hex(3, 8);
        assert!(t.max_degree() <= 3, "heavy-hex is degree-<=3");
        // All qubits connected.
        for v in 0..t.num_qubits() {
            assert!(t.distance(0, v) < u32::MAX, "qubit {v} disconnected");
        }
    }

    #[test]
    fn eagle_class_shape() {
        let t = Topology::eagle_class();
        assert!(t.num_qubits() >= 120);
        assert!(t.max_degree() <= 3);
        for v in 0..t.num_qubits() {
            assert!(t.distance(0, v) < u32::MAX);
        }
    }

    #[test]
    fn scaled_heavy_hex_reaches_size() {
        for n in [30, 64, 128, 200] {
            let t = Topology::scaled_heavy_hex(n);
            assert!(t.num_qubits() >= n);
            assert!(t.max_degree() <= 3);
        }
    }

    #[test]
    fn line_ring_grid() {
        let l = Topology::line(4);
        assert_eq!(l.distance(0, 3), 3);
        let r = Topology::ring(6);
        assert_eq!(r.distance(0, 3), 3);
        assert_eq!(r.distance(0, 5), 1);
        let g = Topology::grid(2, 3);
        assert_eq!(g.num_qubits(), 6);
        assert!(g.are_coupled(0, 3));
        assert_eq!(g.distance(0, 5), 3);
    }

    #[test]
    fn five_qubit_t_shape() {
        let t = Topology::five_qubit_t();
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.distance(0, 4), 3);
    }

    #[test]
    fn full_topology_all_coupled() {
        let t = Topology::full(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(t.are_coupled(i, j));
                }
            }
        }
    }

    #[test]
    fn display_contains_name() {
        let t = Topology::line(3);
        assert!(format!("{t}").contains("line-3"));
    }
}
