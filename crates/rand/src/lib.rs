//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of the `rand` surface
//! it consumes: the [`RngCore`]/[`Rng`] traits, [`SeedableRng`], and the
//! [`seq::SliceRandom`] helpers. Sampling quality matches what seeded
//! reproducibility tests need (uniform ranges, Bernoulli draws,
//! Fisher–Yates shuffles); it is **not** a cryptographic library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u32`/`u64` words. The only method generators must
/// implement is [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`high` included when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi - lo) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state (SplitMix64 expansion, as `rand` does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related random helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// SplitMix64: the seed-expansion generator used by [`SeedableRng::seed_from_u64`]
/// implementations.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SplitMix64::new(1);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b} far from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SplitMix64::new(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
