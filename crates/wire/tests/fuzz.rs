//! Fuzz-style property tests: no input — random bytes, JSON-shaped noise,
//! truncated or bit-flipped valid documents — may panic the wire parser,
//! the circuit codec, or the QASM importer. Errors are fine; panics are
//! bugs.

use caqr_wire::circuit::{circuit_from_value, circuit_to_value};
use caqr_wire::{parse, parse_with, Limits, Value};
use proptest::prelude::*;

/// Maps a byte stream onto JSON-flavoured characters so random inputs
/// reach deep into the parser instead of dying at the first byte.
fn jsonish(bytes: Vec<u8>) -> String {
    const ALPHABET: &[u8] = b"{}[]\",:0123456789.eE+-truefalsn \\u00ff\t\n";
    bytes
        .into_iter()
        .map(|b| ALPHABET[b as usize % ALPHABET.len()] as char)
        .collect()
}

/// A small valid document whose shape is driven by the given knobs.
fn valid_doc(depth: usize, width: usize, number: f64) -> String {
    let mut doc = format!(
        "{{\"n\":{number},\"s\":\"x\\u00e9\",\"b\":true,\"z\":null,\"a\":{}}}",
        (0..width)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
            .pipe(|inner| format!("[{inner}]"))
    );
    for _ in 0..depth {
        doc = format!("{{\"w\":{doc}}}");
    }
    doc
}

trait Pipe: Sized {
    fn pipe<O>(self, f: impl FnOnce(Self) -> O) -> O {
        f(self)
    }
}
impl<T> Pipe for T {}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_survives_random_bytes(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&text); // Ok or Err — just never a panic
    }

    #[test]
    fn parser_survives_jsonish_noise(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let text = jsonish(bytes);
        if let Ok(value) = parse(&text) {
            // Anything accepted must re-encode and re-parse to itself.
            let encoded = value.encode();
            let reparsed = parse(&encoded);
            prop_assert!(reparsed.is_ok(), "re-parse failed for {encoded}");
        }
    }

    #[test]
    fn parser_survives_truncation(
        depth in 0usize..12,
        width in 0usize..8,
        number in -1.0e12f64..1.0e12,
        cut_permille in 0usize..1000,
    ) {
        let doc = valid_doc(depth, width, number);
        prop_assert!(parse(&doc).is_ok(), "valid doc rejected: {doc}");
        let cut = doc.len() * cut_permille / 1000;
        let mut truncated = doc;
        truncated.truncate(cut);
        let _ = parse(&truncated); // must not panic
    }

    #[test]
    fn parser_survives_bit_flips(
        depth in 0usize..6,
        width in 0usize..6,
        number in -1.0e6f64..1.0e6,
        position_permille in 0usize..1000,
        flip in 1u8..=255,
    ) {
        let mut bytes = valid_doc(depth, width, number).into_bytes();
        let index = bytes.len() * position_permille / 1000;
        if let Some(byte) = bytes.get_mut(index) {
            *byte ^= flip;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&text);
    }

    #[test]
    fn limits_are_enforced_not_panicked(
        depth in 0usize..64,
        max_depth in 1usize..16,
        max_bytes in 8usize..256,
    ) {
        let doc = valid_doc(depth, 2, 1.0);
        let limits = Limits { max_bytes, max_depth, max_nodes: 64 };
        match parse_with(&doc, &limits) {
            Ok(_) => {
                prop_assert!(doc.len() <= max_bytes);
                prop_assert!(depth < max_depth);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn numbers_roundtrip_exactly(bits in 0u64..=u64::MAX) {
        let number = f64::from_bits(bits);
        if !number.is_finite() {
            return Ok(());
        }
        let encoded = Value::Num(number).encode();
        let parsed = parse(&encoded).map_err(|e| format!("{encoded}: {e}"))?;
        let back = parsed.as_f64().ok_or("not a number")?;
        prop_assert_eq!(back.to_bits(), number.to_bits());
    }

    #[test]
    fn circuit_codec_survives_mutated_documents(
        qubits in 1usize..5,
        position_permille in 0usize..1000,
        flip in 1u8..=255,
    ) {
        use caqr_circuit::{Circuit, Clbit, Qubit};
        let mut c = Circuit::new(qubits, qubits);
        c.h(Qubit::new(0));
        if qubits > 1 {
            c.cx(Qubit::new(0), Qubit::new(1));
        }
        c.measure(Qubit::new(0), Clbit::new(0));
        let good = circuit_to_value(&c);
        prop_assert!(circuit_from_value(&good).is_ok());

        let mut bytes = good.encode().into_bytes();
        let index = bytes.len() * position_permille / 1000;
        if let Some(byte) = bytes.get_mut(index) {
            *byte ^= flip;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(value) = parse(&text) {
            let _ = circuit_from_value(&value); // Ok or typed Err, never a panic
        }
    }

    #[test]
    fn qasm_importer_survives_hostile_text(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        const ALPHABET: &[u8] = b"qregc[]x0123456789; ->hcxif(==1)\nmeasure.eE+-u\t";
        let text: String = bytes
            .into_iter()
            .map(|b| ALPHABET[b as usize % ALPHABET.len()] as char)
            .collect();
        let _ = caqr_circuit::qasm::from_qasm(&text); // must not panic
    }

    #[test]
    fn qasm_importer_survives_truncated_emission(
        qubits in 2usize..5,
        cut_permille in 0usize..1000,
    ) {
        use caqr_circuit::{Circuit, Clbit, Qubit};
        let mut c = Circuit::new(qubits, qubits);
        for i in 0..qubits {
            c.h(Qubit::new(i));
        }
        c.cx(Qubit::new(0), Qubit::new(1));
        c.measure(Qubit::new(0), Clbit::new(0));
        let qasm = caqr_circuit::qasm::to_qasm(&c);
        let cut = qasm.len() * cut_permille / 1000;
        let mut truncated = qasm;
        truncated.truncate(cut);
        let _ = caqr_circuit::qasm::from_qasm(&truncated); // must not panic
    }
}

/// Non-random oversized-payload checks riding along with the fuzz suite.
#[test]
fn oversized_payloads_are_rejected_cheaply() {
    // A body over max_bytes is rejected before any parsing work.
    let huge = format!("[{}]", "1,".repeat(3 << 20));
    assert!(parse(&huge).is_err());

    // Pathological nesting trips max_depth, not the call stack.
    let deep = "[".repeat(100_000);
    assert!(parse(&deep).is_err());

    // Node-count bombs trip max_nodes.
    let wide = format!("[{}1]", "1,".repeat(1 << 20));
    assert!(parse(&wide).is_err());
}
