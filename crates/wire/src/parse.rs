//! The strict JSON parser: RFC 8259 grammar, explicit resource limits,
//! typed errors with byte offsets, and no panicking path on any input.

use crate::value::Value;
use std::fmt;

/// Resource limits enforced while parsing.
///
/// The defaults match what `caqr-serve` accepts per request body; callers
/// with different trust levels can tighten or loosen them.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum input length in bytes.
    pub max_bytes: usize,
    /// Maximum nesting depth (arrays + objects).
    pub max_depth: usize,
    /// Maximum total parsed nodes (every value, including scalars).
    pub max_nodes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_bytes: 4 << 20,
            max_depth: 64,
            max_nodes: 1 << 20,
        }
    }
}

/// A parse rejection: what went wrong and the byte offset it was noticed
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    offset: usize,
    message: String,
}

impl WireError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        WireError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset of the rejection.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Human-readable reason.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for WireError {}

/// Parses one JSON document under the default [`Limits`].
///
/// # Errors
///
/// [`WireError`] on any deviation from strict JSON, oversized input, or
/// exceeded depth/node limits.
pub fn parse(text: &str) -> Result<Value, WireError> {
    parse_with(text, &Limits::default())
}

/// Parses one JSON document under explicit [`Limits`].
///
/// # Errors
///
/// [`WireError`] on any deviation from strict JSON or exceeded limits.
pub fn parse_with(text: &str, limits: &Limits) -> Result<Value, WireError> {
    if text.len() > limits.max_bytes {
        return Err(WireError::new(
            0,
            format!(
                "input is {} bytes, limit is {}",
                text.len(),
                limits.max_bytes
            ),
        ));
    }
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        limits,
        nodes: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::new(p.pos, "trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: &'a Limits,
    nodes: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::new(
                self.pos,
                format!("expected '{}'", byte as char),
            ))
        }
    }

    fn count_node(&mut self) -> Result<(), WireError> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return Err(WireError::new(
                self.pos,
                format!("document exceeds {} nodes", self.limits.max_nodes),
            ));
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > self.limits.max_depth {
            return Err(WireError::new(
                self.pos,
                format!("nesting exceeds depth {}", self.limits.max_depth),
            ));
        }
        self.count_node()?;
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(WireError::new(
                self.pos,
                format!("unexpected byte 0x{other:02x}"),
            )),
            None => Err(WireError::new(self.pos, "unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(WireError::new(self.pos, format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(WireError::new(key_at, format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.peek() {
                None => return Err(WireError::new(at, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(WireError::new(at, "lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(WireError::new(at, "lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(WireError::new(at, "invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| WireError::new(at, "invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(WireError::new(at, "lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| WireError::new(at, "invalid code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(WireError::new(at, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(WireError::new(at, "unescaped control character"))
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| WireError::new(at, "invalid utf-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| WireError::new(at, "unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let at = self.pos;
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(WireError::new(at, "expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(WireError::new(start, "invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(WireError::new(start, "invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(WireError::new(start, "invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| WireError::new(start, "invalid number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| WireError::new(start, "invalid number"))?;
        if !n.is_finite() {
            return Err(WireError::new(start, "number out of range"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -2.5e1 ").unwrap(), Value::Num(-25.0));
        assert_eq!(parse("\"a\"").unwrap(), Value::Str("a".into()));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        let v = parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{,}",
            "\"",
            "\"\\q\"",
            "01",
            "1.",
            "1e",
            "+1",
            "--1",
            ".5",
            "[1]]",
            "{}{}",
            "'a'",
            "{a:1}",
            "[1,]",
            "{\"a\":1,}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"\\ud800\\u0041\"",
            "\x01",
            "\"\n\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.message().contains("duplicate"), "{err}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        let v = parse("\"\\u00e9\\n\"").unwrap();
        assert_eq!(v.as_str(), Some("é\n"));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep: String = "[".repeat(100) + &"]".repeat(100);
        let limits = Limits {
            max_depth: 16,
            ..Limits::default()
        };
        let err = parse_with(&deep, &limits).unwrap_err();
        assert!(err.message().contains("depth"), "{err}");
        let ok: String = "[".repeat(10) + &"]".repeat(10);
        assert!(parse_with(&ok, &limits).is_ok());
    }

    #[test]
    fn size_and_node_limits_are_enforced() {
        let limits = Limits {
            max_bytes: 8,
            ..Limits::default()
        };
        assert!(parse_with("123456789", &limits).is_err());
        let limits = Limits {
            max_nodes: 4,
            ..Limits::default()
        };
        assert!(parse_with("[1,2,3,4,5]", &limits).is_err());
        assert!(parse_with("[1,2]", &limits).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("[1, bogus]").unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn encode_parse_round_trip() {
        let v = parse(r#"{"a":[1,2.5,"x\n",true,null],"b":{"c":-0.125}}"#).unwrap();
        let encoded = v.encode();
        assert_eq!(parse(&encoded).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }
}
