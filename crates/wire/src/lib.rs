//! caqr-wire: the JSON wire format behind `caqr-serve`.
//!
//! The serving environment vendors no serde, so this crate is a small,
//! std-only JSON implementation built for hostile input:
//!
//! * [`parse()`] / [`parse_with`] — a strict RFC 8259 parser with explicit
//!   [`Limits`] on input size, nesting depth, and node count. Every
//!   rejection is a typed [`WireError`] carrying the byte offset; no input
//!   can make the parser panic or allocate unboundedly.
//! * [`Value`] — the parsed document plus a compact encoder
//!   ([`Value::encode`]). Floats round-trip exactly: the encoder writes
//!   Rust's shortest round-trip form and the parser reads it back bit for
//!   bit, which is what lets the compile service promise byte-identical
//!   results over the wire.
//! * [`circuit`] — the circuit codec: a lossless `Circuit` ⇄ JSON mapping
//!   with validation caps ([`circuit::DecodeLimits`]) so an adversarial
//!   payload cannot request a 2^40-qubit allocation.
//!
//! # Examples
//!
//! ```
//! use caqr_wire::{parse, Value};
//!
//! let v = parse(r#"{"shots": 100, "name": "bell"}"#).unwrap();
//! assert_eq!(v.get("shots").and_then(Value::as_u64), Some(100));
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("bell"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod circuit;
pub mod parse;
pub mod value;

pub use chunked::{ChunkedDecoder, ChunkedError};
pub use parse::{parse, parse_with, Limits, WireError};
pub use value::Value;
