//! The JSON document model and compact encoder.

use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a
/// map): encoding a decoded document reproduces the member order, and the
/// service's responses render deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 are exact.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order. Duplicate keys are rejected at parse
    /// time.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer: rejects
    /// negatives, fractions, and anything at or above 2^53 (where `f64`
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact (no-whitespace) JSON encoding.
    ///
    /// Finite floats use Rust's shortest round-trip formatting, so
    /// `parse(v.encode())` reproduces `v` bit for bit. Non-finite numbers
    /// have no JSON form and encode as `null`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => out.push_str(&encode_number(*n)),
            Value::Str(s) => encode_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Builder: an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builder: a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builder: a numeric value from an unsigned integer.
    pub fn num(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Encodes one number. Integers in the exact range print without a
/// fractional part; other finite values use shortest round-trip `{}`
/// formatting (always containing a `.` or an exponent, so it re-parses as
/// the same f64).
fn encode_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        return format!("{}", n as i64);
    }
    let s = format!("{n}");
    // Display already round-trips; guard the (impossible with fract != 0)
    // case of an integer-looking rendering anyway.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Encodes one JSON string literal, escaping the mandatory set.
fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::obj(vec![
            ("n", Value::num(7)),
            ("s", Value::str("hi")),
            ("b", Value::Bool(true)),
            ("a", Value::Arr(vec![Value::Null])),
        ]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(v.as_object().is_some());
        assert!(Value::Null.get("x").is_none());
    }

    #[test]
    fn as_u64_rejects_inexact() {
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(9_007_199_254_740_992.0).as_u64(), None);
        assert_eq!(
            Value::Num(9_007_199_254_740_991.0).as_u64(),
            Some((1 << 53) - 1)
        );
    }

    #[test]
    fn encoding_is_compact_and_escaped() {
        let v = Value::obj(vec![
            ("k", Value::str("a\"b\\c\nd\u{1}")),
            ("arr", Value::Arr(vec![Value::num(1), Value::Bool(false)])),
        ]);
        assert_eq!(
            v.encode(),
            "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\",\"arr\":[1,false]}"
        );
        assert_eq!(format!("{v}"), v.encode());
    }

    #[test]
    fn number_encoding_round_trips() {
        for n in [0.0, 1.0, -3.0, 0.1, 1e-12, std::f64::consts::PI, 1e300] {
            let text = encode_number(n);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} -> {text}");
        }
        assert_eq!(encode_number(f64::INFINITY), "null");
        assert_eq!(encode_number(f64::NAN), "null");
        assert_eq!(encode_number(5.0), "5");
    }
}
