//! The circuit ⇄ JSON codec: the "wire form" `caqr-serve` accepts
//! alongside OpenQASM.
//!
//! The mapping is lossless — angles encode in Rust's shortest round-trip
//! form, so a decoded circuit is bit-identical to the encoded one — and
//! decoding validates everything (arity, operand ranges, duplicate
//! operands, caps on width and length) before any `Circuit` method that
//! could panic is reached.
//!
//! ```json
//! {
//!   "qubits": 2,
//!   "clbits": 2,
//!   "instructions": [
//!     {"gate": "h",       "qubits": [0]},
//!     {"gate": "rzz",     "qubits": [0, 1], "angle": 0.5},
//!     {"gate": "measure", "qubits": [0], "clbit": 0},
//!     {"gate": "x",       "qubits": [1], "cond": 0}
//!   ]
//! }
//! ```

use crate::value::Value;
use caqr_circuit::{Circuit, Clbit, Gate, Instruction, Param, ParametricCircuit, Qubit};
use std::fmt;

/// Caps enforced while decoding a circuit, so a hostile document cannot
/// request unbounded allocations.
#[derive(Debug, Clone)]
pub struct DecodeLimits {
    /// Maximum declared qubits.
    pub max_qubits: usize,
    /// Maximum declared classical bits.
    pub max_clbits: usize,
    /// Maximum instruction count.
    pub max_instructions: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits {
            max_qubits: 1024,
            max_clbits: 1024,
            max_instructions: 1 << 18,
        }
    }
}

/// A circuit-decode rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitCodecError {
    message: String,
}

impl CircuitCodecError {
    fn new(message: impl Into<String>) -> Self {
        CircuitCodecError {
            message: message.into(),
        }
    }

    /// Human-readable reason.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CircuitCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit decode error: {}", self.message)
    }
}

impl std::error::Error for CircuitCodecError {}

/// Encodes a circuit as its wire-form [`Value`].
pub fn circuit_to_value(circuit: &Circuit) -> Value {
    let instructions = circuit
        .instructions()
        .iter()
        .map(|instr| {
            let mut members: Vec<(String, Value)> = vec![
                ("gate".to_string(), Value::str(instr.gate.name())),
                (
                    "qubits".to_string(),
                    Value::Arr(
                        instr
                            .qubits
                            .iter()
                            .map(|q| Value::num(q.index() as u64))
                            .collect(),
                    ),
                ),
            ];
            match instr.gate {
                Gate::U(t, p, l) => {
                    members.push((
                        "angles".to_string(),
                        Value::Arr(vec![Value::Num(t), Value::Num(p), Value::Num(l)]),
                    ));
                }
                _ => match instr.gate.param() {
                    Some(Param::Slot(k)) => {
                        members.push(("slot".to_string(), Value::num(k as u64)));
                    }
                    Some(Param::Val(a)) => {
                        members.push(("angle".to_string(), Value::Num(a)));
                    }
                    None => {}
                },
            }
            if let Some(c) = instr.clbit {
                members.push(("clbit".to_string(), Value::num(c.index() as u64)));
            }
            if let Some(c) = instr.condition {
                members.push(("cond".to_string(), Value::num(c.index() as u64)));
            }
            Value::Obj(members)
        })
        .collect();
    Value::obj(vec![
        ("qubits", Value::num(circuit.num_qubits() as u64)),
        ("clbits", Value::num(circuit.num_clbits() as u64)),
        ("instructions", Value::Arr(instructions)),
    ])
}

/// Encodes a parametric template as its wire-form [`Value`]: the concrete
/// circuit layout plus a top-level `"slots"` count, with each symbolic
/// rotation carrying `"slot": k` in place of `"angle"`. The mapping is
/// lossless — [`parametric_from_value`] reconstructs the template exactly,
/// symbolic slots and bit-identical concrete angles alike.
pub fn parametric_to_value(template: &ParametricCircuit) -> Value {
    let Value::Obj(mut members) = circuit_to_value(template.circuit()) else {
        unreachable!("circuit_to_value always returns an object");
    };
    members.insert(
        2,
        ("slots".to_string(), Value::num(template.num_slots() as u64)),
    );
    Value::Obj(members)
}

/// Decodes a wire-form circuit under the default [`DecodeLimits`].
///
/// # Errors
///
/// [`CircuitCodecError`] on structural problems, unknown gates, arity or
/// range violations, non-finite angles, symbolic `"slot"` members (the
/// concrete codec never produces a slot-bearing circuit — use
/// [`parametric_from_value`] for templates), or exceeded limits.
pub fn circuit_from_value(value: &Value) -> Result<Circuit, CircuitCodecError> {
    circuit_from_value_with(value, &DecodeLimits::default())
}

/// [`circuit_from_value`] under explicit [`DecodeLimits`].
///
/// # Errors
///
/// Same contract as [`circuit_from_value`].
pub fn circuit_from_value_with(
    value: &Value,
    limits: &DecodeLimits,
) -> Result<Circuit, CircuitCodecError> {
    decode_circuit(value, limits, None)
}

/// Decodes a wire-form parametric template under the default
/// [`DecodeLimits`].
///
/// # Errors
///
/// Everything [`circuit_from_value`] rejects, plus a missing or oversized
/// `"slots"` count and slot ids at or above it.
pub fn parametric_from_value(value: &Value) -> Result<ParametricCircuit, CircuitCodecError> {
    parametric_from_value_with(value, &DecodeLimits::default())
}

/// [`parametric_from_value`] under explicit [`DecodeLimits`].
///
/// # Errors
///
/// Same contract as [`parametric_from_value`].
pub fn parametric_from_value_with(
    value: &Value,
    limits: &DecodeLimits,
) -> Result<ParametricCircuit, CircuitCodecError> {
    let num_slots = field_usize(value, "slots")?;
    let num_slots = u32::try_from(num_slots)
        .map_err(|_| CircuitCodecError::new(format!("{num_slots} slots exceeds u32 range")))?;
    let circuit = decode_circuit(value, limits, Some(num_slots))?;
    ParametricCircuit::new(circuit, num_slots).map_err(|e| CircuitCodecError::new(e.to_string()))
}

fn decode_circuit(
    value: &Value,
    limits: &DecodeLimits,
    num_slots: Option<u32>,
) -> Result<Circuit, CircuitCodecError> {
    let num_qubits = field_usize(value, "qubits")?;
    let num_clbits = field_usize(value, "clbits")?;
    if num_qubits > limits.max_qubits {
        return Err(CircuitCodecError::new(format!(
            "{num_qubits} qubits exceeds the limit of {}",
            limits.max_qubits
        )));
    }
    if num_clbits > limits.max_clbits {
        return Err(CircuitCodecError::new(format!(
            "{num_clbits} clbits exceeds the limit of {}",
            limits.max_clbits
        )));
    }
    let instructions = value
        .get("instructions")
        .and_then(Value::as_array)
        .ok_or_else(|| CircuitCodecError::new("missing \"instructions\" array"))?;
    if instructions.len() > limits.max_instructions {
        return Err(CircuitCodecError::new(format!(
            "{} instructions exceeds the limit of {}",
            instructions.len(),
            limits.max_instructions
        )));
    }
    let mut circuit = Circuit::new(num_qubits, num_clbits);
    for (i, item) in instructions.iter().enumerate() {
        let instr = decode_instruction(item, num_qubits, num_clbits, num_slots)
            .map_err(|e| CircuitCodecError::new(format!("instruction {i}: {}", e.message)))?;
        circuit.push(instr);
    }
    Ok(circuit)
}

fn field_usize(value: &Value, key: &str) -> Result<usize, CircuitCodecError> {
    value
        .get(key)
        .and_then(Value::as_usize)
        .ok_or_else(|| CircuitCodecError::new(format!("missing or invalid \"{key}\"")))
}

fn decode_instruction(
    item: &Value,
    num_qubits: usize,
    num_clbits: usize,
    num_slots: Option<u32>,
) -> Result<Instruction, CircuitCodecError> {
    let name = item
        .get("gate")
        .and_then(Value::as_str)
        .ok_or_else(|| CircuitCodecError::new("missing \"gate\""))?;
    let qubit_values = item
        .get("qubits")
        .and_then(Value::as_array)
        .ok_or_else(|| CircuitCodecError::new("missing \"qubits\""))?;
    let mut qubits = Vec::with_capacity(qubit_values.len());
    for q in qubit_values {
        let idx = q
            .as_usize()
            .ok_or_else(|| CircuitCodecError::new("invalid qubit index"))?;
        if idx >= num_qubits {
            return Err(CircuitCodecError::new(format!(
                "qubit {idx} out of range (declared {num_qubits})"
            )));
        }
        qubits.push(Qubit::new(idx));
    }
    if qubits.len() == 2 && qubits[0] == qubits[1] {
        return Err(CircuitCodecError::new("two-qubit operands must differ"));
    }

    let angle = |key: &str| -> Result<f64, CircuitCodecError> {
        let a = item
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| CircuitCodecError::new(format!("gate '{name}' needs \"{key}\"")))?;
        if !a.is_finite() {
            return Err(CircuitCodecError::new("non-finite angle"));
        }
        Ok(a)
    };
    // A single-angle rotation carries either a concrete "angle" or (in the
    // parametric codec only) a symbolic "slot" id, never both.
    let rotation = || -> Result<f64, CircuitCodecError> {
        let Some(slot) = item.get("slot") else {
            return angle("angle");
        };
        let Some(num_slots) = num_slots else {
            return Err(CircuitCodecError::new(format!(
                "gate '{name}' carries a symbolic \"slot\" in a concrete circuit"
            )));
        };
        if item.get("angle").is_some() {
            return Err(CircuitCodecError::new(
                "\"angle\" and \"slot\" are mutually exclusive",
            ));
        }
        let k = slot
            .as_u64()
            .and_then(|k| u32::try_from(k).ok())
            .ok_or_else(|| CircuitCodecError::new("invalid slot id"))?;
        if k >= num_slots {
            return Err(CircuitCodecError::new(format!(
                "slot {k} out of range (declared {num_slots})"
            )));
        }
        Ok(Param::Slot(k).to_raw())
    };

    let gate = match name {
        "h" => Gate::H,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "rx" => Gate::Rx(rotation()?),
        "ry" => Gate::Ry(rotation()?),
        "rz" => Gate::Rz(rotation()?),
        "p" => Gate::Phase(rotation()?),
        "u" => {
            let angles = item
                .get("angles")
                .and_then(Value::as_array)
                .ok_or_else(|| CircuitCodecError::new("gate 'u' needs \"angles\""))?;
            let [t, p, l] = angles else {
                return Err(CircuitCodecError::new("gate 'u' needs exactly 3 angles"));
            };
            let decode = |v: &Value| -> Result<f64, CircuitCodecError> {
                let a = v
                    .as_f64()
                    .ok_or_else(|| CircuitCodecError::new("invalid angle"))?;
                if !a.is_finite() {
                    return Err(CircuitCodecError::new("non-finite angle"));
                }
                Ok(a)
            };
            Gate::U(decode(t)?, decode(p)?, decode(l)?)
        }
        "cx" => Gate::Cx,
        "cz" => Gate::Cz,
        "cp" => Gate::Cp(rotation()?),
        "rzz" => Gate::Rzz(rotation()?),
        "swap" => Gate::Swap,
        "measure" => Gate::Measure,
        "reset" => Gate::Reset,
        other => return Err(CircuitCodecError::new(format!("unknown gate '{other}'"))),
    };
    if qubits.len() != gate.num_qubits() {
        return Err(CircuitCodecError::new(format!(
            "gate '{name}' expects {} qubit(s), got {}",
            gate.num_qubits(),
            qubits.len()
        )));
    }

    let clbit = match item.get("clbit") {
        None => None,
        Some(v) => {
            let idx = v
                .as_usize()
                .ok_or_else(|| CircuitCodecError::new("invalid clbit index"))?;
            if idx >= num_clbits {
                return Err(CircuitCodecError::new(format!(
                    "clbit {idx} out of range (declared {num_clbits})"
                )));
            }
            Some(Clbit::new(idx))
        }
    };
    if gate == Gate::Measure && clbit.is_none() {
        return Err(CircuitCodecError::new("measure needs a \"clbit\""));
    }
    if gate != Gate::Measure && clbit.is_some() {
        return Err(CircuitCodecError::new("only measure takes a \"clbit\""));
    }
    let condition = match item.get("cond") {
        None => None,
        Some(v) => {
            let idx = v
                .as_usize()
                .ok_or_else(|| CircuitCodecError::new("invalid cond index"))?;
            if idx >= num_clbits {
                return Err(CircuitCodecError::new(format!(
                    "cond bit {idx} out of range (declared {num_clbits})"
                )));
            }
            Some(Clbit::new(idx))
        }
    };

    Ok(Instruction {
        gate,
        qubits,
        clbit,
        condition,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3, 2);
        c.h(Qubit::new(0));
        c.rz(0.123_456_789_012_345_68, Qubit::new(1));
        c.push_gate(Gate::U(0.3, -1.5, std::f64::consts::PI), &[Qubit::new(2)]);
        c.rzz(0.5, Qubit::new(0), Qubit::new(1));
        c.cx(Qubit::new(1), Qubit::new(2));
        c.measure(Qubit::new(0), Clbit::new(0));
        c.cond_x(Qubit::new(0), Clbit::new(0));
        c.reset(Qubit::new(1));
        c.measure(Qubit::new(2), Clbit::new(1));
        c
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let original = sample();
        let encoded = circuit_to_value(&original).encode();
        let decoded = circuit_from_value(&parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, original);
        assert_eq!(decoded.fingerprint(), original.fingerprint());
    }

    #[test]
    fn decode_rejects_bad_documents() {
        for (bad, why) in [
            (r#"{}"#, "missing qubits"),
            (r#"{"qubits":1,"clbits":0}"#, "missing instructions"),
            (
                r#"{"qubits":1,"clbits":0,"instructions":[{"gate":"zz","qubits":[0]}]}"#,
                "unknown gate",
            ),
            (
                r#"{"qubits":1,"clbits":0,"instructions":[{"gate":"h","qubits":[1]}]}"#,
                "qubit out of range",
            ),
            (
                r#"{"qubits":2,"clbits":0,"instructions":[{"gate":"cx","qubits":[0,0]}]}"#,
                "duplicate operands",
            ),
            (
                r#"{"qubits":2,"clbits":0,"instructions":[{"gate":"cx","qubits":[0]}]}"#,
                "arity",
            ),
            (
                r#"{"qubits":1,"clbits":1,"instructions":[{"gate":"measure","qubits":[0]}]}"#,
                "measure without clbit",
            ),
            (
                r#"{"qubits":1,"clbits":1,"instructions":[{"gate":"h","qubits":[0],"clbit":0}]}"#,
                "clbit on non-measure",
            ),
            (
                r#"{"qubits":1,"clbits":1,"instructions":[{"gate":"measure","qubits":[0],"clbit":3}]}"#,
                "clbit out of range",
            ),
            (
                r#"{"qubits":1,"clbits":1,"instructions":[{"gate":"x","qubits":[0],"cond":9}]}"#,
                "cond out of range",
            ),
            (
                r#"{"qubits":1,"clbits":0,"instructions":[{"gate":"rz","qubits":[0]}]}"#,
                "missing angle",
            ),
            (
                r#"{"qubits":-1,"clbits":0,"instructions":[]}"#,
                "negative width",
            ),
        ] {
            assert!(
                circuit_from_value(&parse(bad).unwrap()).is_err(),
                "should reject: {why}"
            );
        }
    }

    #[test]
    fn decode_caps_width_and_length() {
        let wide = r#"{"qubits":100000,"clbits":0,"instructions":[]}"#;
        let limits = DecodeLimits {
            max_qubits: 64,
            ..DecodeLimits::default()
        };
        let err = circuit_from_value_with(&parse(wide).unwrap(), &limits).unwrap_err();
        assert!(err.message().contains("exceeds"), "{err}");
        let long = format!(
            r#"{{"qubits":1,"clbits":0,"instructions":[{}]}}"#,
            [r#"{"gate":"h","qubits":[0]}"#; 10].join(",")
        );
        let limits = DecodeLimits {
            max_instructions: 4,
            ..DecodeLimits::default()
        };
        assert!(circuit_from_value_with(&parse(&long).unwrap(), &limits).is_err());
    }

    #[test]
    fn empty_circuit_round_trips() {
        let c = Circuit::new(0, 0);
        let v = circuit_to_value(&c);
        assert_eq!(circuit_from_value(&v).unwrap(), c);
    }

    /// A template mixing symbolic slots and bit-exact concrete angles.
    fn sample_template() -> ParametricCircuit {
        let mut c = Circuit::new(3, 3);
        c.h(Qubit::new(0));
        c.rz(Param::Slot(0).to_raw(), Qubit::new(0));
        c.rx(0.123_456_789_012_345_68, Qubit::new(1));
        c.rzz(Param::Slot(1).to_raw(), Qubit::new(0), Qubit::new(1));
        c.cp(Param::Slot(2).to_raw(), Qubit::new(1), Qubit::new(2));
        c.ry(Param::Slot(0).to_raw(), Qubit::new(2));
        c.measure_all();
        ParametricCircuit::new(c, 3).unwrap()
    }

    #[test]
    fn parametric_round_trip_is_lossless() {
        let original = sample_template();
        let encoded = parametric_to_value(&original).encode();
        assert!(encoded.contains("\"slots\":3"), "{encoded}");
        assert!(encoded.contains("\"slot\":1"), "{encoded}");
        let decoded = parametric_from_value(&parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.num_slots(), original.num_slots());
        // Slot angles are NaN-boxed, so instruction equality is useless
        // here; fingerprints hash raw bits and catch any drift.
        assert_eq!(
            decoded.circuit().fingerprint(),
            original.circuit().fingerprint()
        );
        assert_eq!(
            decoded.template_fingerprint(),
            original.template_fingerprint()
        );
    }

    #[test]
    fn concrete_codec_rejects_symbolic_slots() {
        let doc = r#"{"qubits":1,"clbits":0,"instructions":[{"gate":"rz","qubits":[0],"slot":0}]}"#;
        let err = circuit_from_value(&parse(doc).unwrap()).unwrap_err();
        assert!(err.message().contains("symbolic"), "{err}");
    }

    #[test]
    fn parametric_decode_rejects_bad_documents() {
        for (bad, why) in [
            (
                r#"{"qubits":1,"clbits":0,"instructions":[]}"#,
                "missing slots",
            ),
            (
                r#"{"qubits":1,"clbits":0,"slots":1,"instructions":[{"gate":"rz","qubits":[0],"slot":1}]}"#,
                "slot out of range",
            ),
            (
                r#"{"qubits":1,"clbits":0,"slots":1,"instructions":[{"gate":"rz","qubits":[0],"slot":0,"angle":0.5}]}"#,
                "angle and slot together",
            ),
            (
                r#"{"qubits":1,"clbits":0,"slots":1,"instructions":[{"gate":"rz","qubits":[0],"slot":-1}]}"#,
                "negative slot",
            ),
            (
                r#"{"qubits":1,"clbits":0,"slots":5000000000,"instructions":[]}"#,
                "slots beyond u32",
            ),
        ] {
            assert!(
                parametric_from_value(&parse(bad).unwrap()).is_err(),
                "should reject: {why}"
            );
        }
    }

    #[test]
    fn parametric_codec_accepts_fully_concrete_templates() {
        let doc = r#"{"qubits":1,"clbits":1,"slots":0,"instructions":[{"gate":"rz","qubits":[0],"angle":0.25},{"gate":"measure","qubits":[0],"clbit":0}]}"#;
        let template = parametric_from_value(&parse(doc).unwrap()).unwrap();
        assert_eq!(template.num_slots(), 0);
        assert_eq!(template.circuit().instructions().len(), 2);
    }
}
