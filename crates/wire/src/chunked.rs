//! HTTP/1.1 `Transfer-Encoding: chunked` framing (RFC 9112 §7.1).
//!
//! The serve tier's streaming-compile endpoint feeds request bodies into
//! the compiler as they arrive off the socket, so body framing must be
//! decodable *incrementally*: [`ChunkedDecoder`] is a push-based state
//! machine that accepts arbitrary byte slices and appends decoded body
//! bytes to a caller-owned buffer. Like the JSON parser next door it is
//! built for hostile input — explicit caps on chunk-size-line length and
//! total decoded size, typed errors, no panics, no unbounded buffering
//! (the only internal state is the partial size line).
//!
//! Trailer fields are tolerated and discarded; chunk extensions are
//! tolerated and ignored, per the RFC's guidance for recipients.

/// Longest accepted chunk-size line (hex digits + extensions + CRLF).
const MAX_SIZE_LINE: usize = 256;

/// A malformed or over-limit chunked body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkedError {
    /// A chunk-size line was not valid hexadecimal.
    BadSizeLine,
    /// A chunk-size line exceeded the 256-byte cap.
    SizeLineTooLong,
    /// Chunk data was not followed by CRLF.
    MissingDataCrlf,
    /// The decoded body exceeded the decoder's byte limit.
    BodyTooLarge,
    /// Bytes arrived after the terminal chunk was fully read.
    TrailingData,
}

impl std::fmt::Display for ChunkedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ChunkedError::BadSizeLine => "bad chunk size line",
            ChunkedError::SizeLineTooLong => "chunk size line too long",
            ChunkedError::MissingDataCrlf => "chunk data not terminated by CRLF",
            ChunkedError::BodyTooLarge => "chunked body exceeds size limit",
            ChunkedError::TrailingData => "data after final chunk",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ChunkedError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Reading the hex size line into `line`.
    SizeLine,
    /// Copying `remaining` data bytes through to the output.
    Data { remaining: usize },
    /// Expecting the CRLF that closes a data chunk (`seen` of it so far).
    DataCrlf { seen: u8 },
    /// After the 0-chunk: discarding trailer lines until the empty one.
    Trailer,
    /// Terminal CRLF consumed; the body is complete.
    Done,
}

/// Incremental chunked-body decoder.
#[derive(Debug)]
pub struct ChunkedDecoder {
    state: State,
    /// Partial size/trailer line, bounded by [`MAX_SIZE_LINE`].
    line: Vec<u8>,
    /// Decoded bytes emitted so far (enforces `max_body`).
    decoded: usize,
    max_body: usize,
}

impl ChunkedDecoder {
    /// A decoder that rejects bodies decoding to more than `max_body`
    /// bytes.
    pub fn new(max_body: usize) -> Self {
        ChunkedDecoder {
            state: State::SizeLine,
            line: Vec::new(),
            decoded: 0,
            max_body,
        }
    }

    /// True once the terminal chunk (and its trailer) has been consumed.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Decoded body bytes emitted so far.
    pub fn decoded_len(&self) -> usize {
        self.decoded
    }

    /// Consumes as much of `input` as the framing allows, appending
    /// decoded body bytes to `out`. Returns how many input bytes were
    /// consumed; once [`is_done`](ChunkedDecoder::is_done) the decoder
    /// stops consuming, leaving pipelined bytes for the caller.
    ///
    /// # Errors
    ///
    /// [`ChunkedError`] on malformed framing or an over-limit body; the
    /// decoder is unusable afterwards.
    pub fn push(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, ChunkedError> {
        let mut pos = 0;
        while pos < input.len() {
            match self.state {
                State::Done => break,
                State::Data { remaining } => {
                    let take = remaining.min(input.len() - pos);
                    out.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        self.state = State::DataCrlf { seen: 0 };
                    } else {
                        self.state = State::Data {
                            remaining: remaining - take,
                        };
                    }
                }
                State::DataCrlf { seen } => {
                    let expect = if seen == 0 { b'\r' } else { b'\n' };
                    if input[pos] != expect {
                        return Err(ChunkedError::MissingDataCrlf);
                    }
                    pos += 1;
                    self.state = if seen == 0 {
                        State::DataCrlf { seen: 1 }
                    } else {
                        State::SizeLine
                    };
                }
                State::SizeLine | State::Trailer => {
                    let b = input[pos];
                    pos += 1;
                    if b != b'\n' {
                        if self.line.len() >= MAX_SIZE_LINE {
                            return Err(ChunkedError::SizeLineTooLong);
                        }
                        self.line.push(b);
                        continue;
                    }
                    let mut line = std::mem::take(&mut self.line);
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if self.state == State::Trailer {
                        // Empty line ends the trailer section; anything
                        // else is a discarded trailer field.
                        if line.is_empty() {
                            self.state = State::Done;
                        }
                        continue;
                    }
                    let size = parse_size(&line)?;
                    if size == 0 {
                        self.state = State::Trailer;
                    } else {
                        if self.decoded + size > self.max_body {
                            return Err(ChunkedError::BodyTooLarge);
                        }
                        self.decoded += size;
                        self.state = State::Data { remaining: size };
                    }
                }
            }
        }
        Ok(pos)
    }
}

/// Parses the hex chunk size, ignoring any `;extension`.
fn parse_size(line: &[u8]) -> Result<usize, ChunkedError> {
    let digits = match line.iter().position(|&b| b == b';') {
        Some(i) => &line[..i],
        None => line,
    };
    let digits = std::str::from_utf8(digits)
        .map_err(|_| ChunkedError::BadSizeLine)?
        .trim();
    if digits.is_empty() || digits.len() > 8 {
        return Err(ChunkedError::BadSizeLine);
    }
    usize::from_str_radix(digits, 16).map_err(|_| ChunkedError::BadSizeLine)
}

/// Encodes `body` as a single-chunk-per-slice chunked stream — the
/// client half (loadgen) of the framing.
pub fn encode(chunks: &[&[u8]]) -> Vec<u8> {
    let total: usize = chunks.iter().map(|c| c.len() + 16).sum();
    let mut out = Vec::with_capacity(total + 8);
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8], split: usize) -> Result<Vec<u8>, ChunkedError> {
        let mut d = ChunkedDecoder::new(1 << 20);
        let mut out = Vec::new();
        let mut consumed_total = 0;
        for piece in bytes.chunks(split.max(1)) {
            consumed_total += d.push(piece, &mut out)?;
        }
        assert!(d.is_done(), "incomplete body");
        assert_eq!(consumed_total, bytes.len());
        Ok(out)
    }

    #[test]
    fn roundtrips_at_every_split() {
        let body = b"hello streaming world".as_slice();
        let encoded = encode(&[&body[..5], &body[5..]]);
        for split in [1, 2, 3, 7, encoded.len()] {
            assert_eq!(decode_all(&encoded, split).unwrap(), body, "split {split}");
        }
    }

    #[test]
    fn extensions_and_trailers_are_discarded() {
        let raw = b"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n";
        assert_eq!(decode_all(raw, 4).unwrap(), b"hello");
    }

    #[test]
    fn stops_consuming_at_pipelined_bytes() {
        let mut raw = encode(&[b"abc"]);
        raw.extend_from_slice(b"GET /next");
        let mut d = ChunkedDecoder::new(64);
        let mut out = Vec::new();
        let consumed = d.push(&raw, &mut out).unwrap();
        assert!(d.is_done());
        assert_eq!(out, b"abc");
        assert_eq!(&raw[consumed..], b"GET /next");
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        let mut out = Vec::new();
        assert_eq!(
            ChunkedDecoder::new(64).push(b"zz\r\n", &mut out),
            Err(ChunkedError::BadSizeLine)
        );
        assert_eq!(
            ChunkedDecoder::new(4).push(b"10\r\n0123456789abcdef\r\n", &mut out),
            Err(ChunkedError::BodyTooLarge)
        );
        assert_eq!(
            ChunkedDecoder::new(64).push(b"3\r\nabcXX", &mut out),
            Err(ChunkedError::MissingDataCrlf)
        );
        let long = vec![b'1'; 300];
        assert_eq!(
            ChunkedDecoder::new(64).push(&long, &mut out),
            Err(ChunkedError::SizeLineTooLong)
        );
        // 9 hex digits would overflow a 32-bit size budget.
        assert_eq!(
            ChunkedDecoder::new(64).push(b"123456789\r\n", &mut out),
            Err(ChunkedError::BadSizeLine)
        );
    }

    #[test]
    fn empty_body_is_just_the_terminal_chunk() {
        assert_eq!(decode_all(b"0\r\n\r\n", 1).unwrap(), b"");
        assert_eq!(encode(&[]), b"0\r\n\r\n");
    }

    #[test]
    fn lf_only_lines_are_accepted() {
        // Lenient like the head parser: bare LF line endings decode too.
        assert_eq!(decode_all(b"5\nhello\r\n0\n\n", 2).unwrap(), b"hello");
    }
}
