//! A COBYLA-style linear-approximation trust-region minimizer.
//!
//! COBYLA (Powell 1994) maintains a simplex of `n + 1` points, interpolates
//! a linear model of the objective through them, and minimizes the model
//! inside a trust region whose radius shrinks as the model stops helping.
//! This implementation keeps that core loop (it omits Powell's general
//! inequality-constraint machinery, which the QAOA parameter search never
//! uses) — the same role Qiskit's default COBYLA plays in the paper's
//! Figs. 15/16.

use crate::{OptResult, Options, Tracker};

/// Minimizes `f` from `x0` with the linear-approximation trust-region loop.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize(f: impl FnMut(&[f64]) -> f64, x0: &[f64], opts: &Options) -> OptResult {
    assert!(!x0.is_empty(), "need at least one parameter");
    let n = x0.len();
    let mut tracker = Tracker::new(f);
    let mut rho = opts.initial_step;

    // Simplex vertices: best point + rho steps along each axis.
    let mut vertices: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += rho;
        vertices.push(p);
    }
    let mut values: Vec<f64> = vertices.iter().map(|p| tracker.eval(p)).collect();

    while tracker.evals < opts.max_evals && rho > opts.tolerance {
        let best = argmin(&values);
        // Fit the linear model f(x) ~ c + g . (x - x_best) through the
        // simplex: rows are (vertex - best), rhs the value differences.
        let base = vertices[best].clone();
        let fbase = values[best];
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut rhs: Vec<f64> = Vec::with_capacity(n);
        for (i, v) in vertices.iter().enumerate() {
            if i == best {
                continue;
            }
            rows.push(v.iter().zip(&base).map(|(a, b)| a - b).collect());
            rhs.push(values[i] - fbase);
        }
        let gradient = match solve(&mut rows, &mut rhs) {
            Some(g) => g,
            None => {
                // Degenerate simplex: rebuild around the best point.
                rebuild(&mut vertices, &mut values, best, rho, &mut tracker);
                rho *= 0.5;
                continue;
            }
        };
        let gnorm = gradient.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-15 {
            rho *= 0.5;
            rebuild(&mut vertices, &mut values, best, rho, &mut tracker);
            continue;
        }

        // Trust-region step: full radius along -gradient.
        let candidate: Vec<f64> = base
            .iter()
            .zip(&gradient)
            .map(|(&x, &g)| x - rho * g / gnorm)
            .collect();
        let fc = tracker.eval(&candidate);
        let predicted = rho * gnorm; // model decrease
        let actual = fbase - fc;

        if actual > 0.1 * predicted {
            // Good step: replace the worst vertex.
            let worst = argmax(&values);
            vertices[worst] = candidate;
            values[worst] = fc;
            if actual > 0.7 * predicted {
                rho = (rho * 1.6).min(opts.initial_step * 4.0);
            }
        } else {
            // Poor model: shrink the trust region and refresh the simplex.
            rho *= 0.5;
            let keep = argmin(&values);
            rebuild(&mut vertices, &mut values, keep, rho, &mut tracker);
        }
    }

    let best = argmin(&values);
    OptResult {
        x: vertices[best].clone(),
        fx: values[best],
        evals: tracker.evals,
        history: tracker.history,
    }
}

fn rebuild<F: FnMut(&[f64]) -> f64>(
    vertices: &mut Vec<Vec<f64>>,
    values: &mut Vec<f64>,
    best: usize,
    rho: f64,
    tracker: &mut Tracker<F>,
) {
    let base = vertices[best].clone();
    let fbase = values[best];
    let n = base.len();
    vertices.clear();
    values.clear();
    vertices.push(base.clone());
    values.push(fbase);
    for i in 0..n {
        let mut p = base.clone();
        p[i] += rho;
        values.push(tracker.eval(&p));
        vertices.push(p);
    }
}

fn argmin(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0
}

/// Gaussian elimination with partial pivoting; returns `None` when the
/// system is (near-)singular.
fn solve(rows: &mut [Vec<f64>], rhs: &mut [f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&a, &b| rows[a][col].abs().total_cmp(&rows[b][col].abs()))?;
        if rows[pivot][col].abs() < 1e-12 {
            return None;
        }
        rows.swap(col, pivot);
        rhs.swap(col, pivot);
        let (pivot_rows, rest) = rows.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (r, row) in rest.iter_mut().take(n - col - 1).enumerate() {
            let factor = row[col] / pivot_row[col];
            for (x, &p) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            rhs[col + 1 + r] -= factor * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for c in r + 1..n {
            acc -= rows[r][c] * x[c];
        }
        x[r] = acc / rows[r][r];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let r = minimize(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
            &[0.0, 0.0],
            &Options::default(),
        );
        assert!(r.fx < 1e-3, "fx = {}", r.fx);
    }

    #[test]
    fn one_dimensional() {
        let r = minimize(|x| (x[0] - 3.5).powi(2), &[0.0], &Options::default());
        assert!((r.x[0] - 3.5).abs() < 0.05, "x = {}", r.x[0]);
    }

    #[test]
    fn periodic_objective_like_qaoa() {
        // QAOA landscapes are trigonometric; check we find a good minimum.
        let f = |x: &[f64]| -((x[0]).sin() * (x[1]).cos());
        let opts = Options {
            max_evals: 300,
            ..Options::default()
        };
        let r = minimize(f, &[0.5, 0.5], &opts);
        assert!(r.fx < -0.9, "fx = {}", r.fx);
    }

    #[test]
    fn budget_respected_and_history_complete() {
        let opts = Options {
            max_evals: 25,
            ..Options::default()
        };
        let r = minimize(|x| x[0].abs(), &[4.0], &opts);
        assert!(r.evals <= 26 + 1);
        assert_eq!(r.history.len(), r.evals);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0], "history must be non-increasing");
        }
    }

    #[test]
    fn solve_linear_system() {
        let mut rows = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut rhs = vec![5.0, 10.0];
        let x = solve(&mut rows, &mut rhs).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let mut rows = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut rhs = vec![1.0, 2.0];
        assert!(solve(&mut rows, &mut rhs).is_none());
    }

    #[test]
    fn noisy_objective_still_improves() {
        // Shot noise on top of a quadratic: final value should still be far
        // below the start.
        let mut k = 0u64;
        let f = move |x: &[f64]| {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((k >> 33) as f64 / 2f64.powi(31) - 0.5) * 0.05;
            x[0] * x[0] + x[1] * x[1] + noise
        };
        let r = minimize(f, &[2.0, -2.0], &Options::default());
        assert!(r.fx < 1.0, "fx = {}", r.fx);
    }
}
