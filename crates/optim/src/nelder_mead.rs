//! Nelder–Mead simplex minimization.

use crate::{OptResult, Options, Tracker};

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method
/// (standard reflection/expansion/contraction/shrink coefficients).
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize(f: impl FnMut(&[f64]) -> f64, x0: &[f64], opts: &Options) -> OptResult {
    assert!(!x0.is_empty(), "need at least one parameter");
    let n = x0.len();
    let mut tracker = Tracker::new(f);

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += opts.initial_step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| tracker.eval(p)).collect();

    while tracker.evals < opts.max_evals {
        // Order ascending by value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let (best, second_worst, worst) = (order[0], order[n - 1], order[n]);

        // Convergence: simplex diameter below tolerance.
        let diameter = simplex
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if diameter < opts.tolerance {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (i, p) in simplex.iter().enumerate() {
            if i != worst {
                for (c, &v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }
        }
        let blend = |alpha: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(&c, &w)| c + alpha * (c - w))
                .collect()
        };

        let reflected = blend(1.0);
        let fr = tracker.eval(&reflected);
        if fr < values[best] {
            // Try expanding.
            let expanded = blend(2.0);
            let fe = tracker.eval(&expanded);
            if fe < fr {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = fr;
        } else {
            // Contract (outside if the reflection helped at all).
            let contracted = if fr < values[worst] {
                blend(0.5)
            } else {
                blend(-0.5)
            };
            let fc = tracker.eval(&contracted);
            if fc < values[worst].min(fr) {
                simplex[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                let anchor = simplex[best].clone();
                for (i, p) in simplex.iter_mut().enumerate() {
                    if i != best {
                        for (v, &a) in p.iter_mut().zip(&anchor) {
                            *v = a + 0.5 * (*v - a);
                        }
                        values[i] = tracker.eval(p);
                        if tracker.evals >= opts.max_evals {
                            break;
                        }
                    }
                }
            }
        }
    }

    let best_idx = (0..=n)
        .min_by(|&a, &b| values[a].total_cmp(&values[b]))
        .expect("simplex is non-empty");
    OptResult {
        x: simplex[best_idx].clone(),
        fx: values[best_idx],
        evals: tracker.evals,
        history: tracker.history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let r = minimize(
            |x| x.iter().map(|v| v * v).sum(),
            &[3.0, -2.0],
            &Options::default(),
        );
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
        assert!(r.x.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn rosenbrock_2d() {
        let rosen = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let opts = Options {
            max_evals: 2000,
            ..Options::default()
        };
        let r = minimize(rosen, &[-1.2, 1.0], &opts);
        assert!(r.fx < 1e-4, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn respects_eval_budget() {
        let opts = Options {
            max_evals: 30,
            ..Options::default()
        };
        let r = minimize(|x| x[0] * x[0], &[5.0], &opts);
        assert!(r.evals <= 31, "used {} evals", r.evals);
        assert_eq!(r.history.len(), r.evals);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let r = minimize(|x| (x[0] - 2.0).powi(2) + 1.0, &[0.0], &Options::default());
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!((r.fx - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_x0_rejected() {
        minimize(|_| 0.0, &[], &Options::default());
    }
}
