//! Derivative-free classical optimizers for variational quantum loops.
//!
//! The paper's QAOA experiments (Figs. 15/16) drive the circuit parameters
//! with Qiskit's default COBYLA optimizer and plot the best objective value
//! per optimization round. This crate provides:
//!
//! * [`cobyla`] — a COBYLA-style linear-approximation trust-region method
//!   (simplex interpolation of a linear model, trust-radius shrink on
//!   failure). Constraints are limited to the implicit trust region, which
//!   is all the QAOA loop uses.
//! * [`nelder_mead`] — the classic simplex method, as a cross-check.
//!
//! Both record the running-best objective per iteration, which is exactly
//! the series the paper's convergence figures plot.
//!
//! # Examples
//!
//! ```
//! use caqr_optim::{cobyla, Options};
//!
//! // Minimize a shifted quadratic.
//! let result = cobyla::minimize(
//!     |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
//!     &[0.0, 0.0],
//!     &Options::default(),
//! );
//! assert!((result.x[0] - 1.0).abs() < 1e-2);
//! assert!((result.x[1] + 2.0).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cobyla;
pub mod nelder_mead;

/// Options shared by the optimizers.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Initial step / trust radius.
    pub initial_step: f64,
    /// Terminate when the step / trust radius falls below this.
    pub tolerance: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_evals: 400,
            initial_step: 0.5,
            tolerance: 1e-6,
        }
    }
}

/// The outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// Running best objective after each evaluation — the per-round series
    /// the paper's convergence plots use.
    pub history: Vec<f64>,
}

/// Tracks evaluations and the running-best history for an objective.
pub(crate) struct Tracker<F> {
    f: F,
    pub evals: usize,
    pub history: Vec<f64>,
    best: f64,
}

impl<F: FnMut(&[f64]) -> f64> Tracker<F> {
    pub fn new(f: F) -> Self {
        Tracker {
            f,
            evals: 0,
            history: Vec::new(),
            best: f64::INFINITY,
        }
    }

    pub fn eval(&mut self, x: &[f64]) -> f64 {
        let v = (self.f)(x);
        self.evals += 1;
        if v < self.best {
            self.best = v;
        }
        self.history.push(self.best);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_running_best() {
        let values = std::cell::Cell::new(0);
        let mut t = Tracker::new(|_: &[f64]| {
            let v = [5.0, 3.0, 4.0, 1.0][values.get()];
            values.set(values.get() + 1);
            v
        });
        for _ in 0..4 {
            t.eval(&[0.0]);
        }
        assert_eq!(t.history, vec![5.0, 3.0, 3.0, 1.0]);
        assert_eq!(t.evals, 4);
    }

    #[test]
    fn default_options_sane() {
        let o = Options::default();
        assert!(o.max_evals > 0);
        assert!(o.initial_step > o.tolerance);
    }
}
