//! The gate-dependency DAG (`G_D` in the paper).
//!
//! A vertex per instruction; an edge `u -> v` whenever `v` is the next
//! instruction after `u` on some shared wire (qubit or classical bit).
//! Classical wires matter: a conditional reset depends on the measurement
//! that wrote its condition bit, which is exactly how the paper's dummy
//! measurement node `D` enforces reuse ordering (Fig. 9).

use crate::circuit::{Circuit, Qubit};
use caqr_graph::closure::TransitiveClosure;
use caqr_graph::DiGraph;

/// Gate-dependency DAG of a circuit.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{Circuit, CircuitDag, Qubit};
///
/// let mut c = Circuit::new(3, 0);
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.cx(Qubit::new(1), Qubit::new(2));
/// c.cx(Qubit::new(0), Qubit::new(2));
/// let dag = CircuitDag::of(&c);
/// assert_eq!(dag.frontier(), vec![0]);
/// assert_eq!(dag.unit_critical_path(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    graph: DiGraph,
}

impl CircuitDag {
    /// Builds the dependency DAG of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut graph = DiGraph::new(n);
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        let mut last_on_clbit: Vec<Option<usize>> = vec![None; circuit.num_clbits()];
        for (idx, instr) in circuit.iter().enumerate() {
            for q in &instr.qubits {
                if let Some(prev) = last_on_qubit[q.index()] {
                    graph.add_edge(prev, idx);
                }
                last_on_qubit[q.index()] = Some(idx);
            }
            for c in instr.clbit.iter().chain(instr.condition.iter()) {
                if let Some(prev) = last_on_clbit[c.index()] {
                    if prev != idx {
                        graph.add_edge(prev, idx);
                    }
                }
                last_on_clbit[c.index()] = Some(idx);
            }
        }
        CircuitDag { graph }
    }

    /// The underlying dependence digraph (vertex = instruction index).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The number of instructions / vertices.
    pub fn len(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Returns `true` for the empty circuit.
    pub fn is_empty(&self) -> bool {
        self.graph.num_vertices() == 0
    }

    /// Instruction indices with no unfinished dependencies — the initial
    /// frontier (in-degree 0).
    pub fn frontier(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&v| self.graph.in_degree(v) == 0)
            .collect()
    }

    /// Critical-path length counting every instruction as one time step.
    pub fn unit_critical_path(&self) -> u64 {
        let w = vec![1u64; self.len()];
        self.graph
            .critical_path(&w)
            .expect("circuit DAG is acyclic by construction")
    }

    /// Critical-path length with per-instruction weights (e.g. durations in
    /// `dt`).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn weighted_critical_path(&self, weights: &[u64]) -> u64 {
        self.graph
            .critical_path(weights)
            .expect("circuit DAG is acyclic by construction")
    }

    /// For every instruction, the longest weighted path *ending* at it
    /// (inclusive). An instruction is on the critical path iff its value
    /// plus the longest path *from* it equals the total.
    pub fn longest_path_to(&self, weights: &[u64]) -> Vec<u64> {
        self.graph
            .longest_path_to(weights)
            .expect("circuit DAG is acyclic by construction")
    }

    /// Longest weighted path *starting* at each instruction (inclusive).
    pub fn longest_path_from(&self, weights: &[u64]) -> Vec<u64> {
        let order = self
            .graph
            .topological_order()
            .expect("circuit DAG is acyclic by construction");
        let mut dist = vec![0u64; self.len()];
        for &v in order.iter().rev() {
            let best_succ = self.graph.successors(v).map(|s| dist[s]).max().unwrap_or(0);
            dist[v] = best_succ + weights[v];
        }
        dist
    }

    /// Marks the instructions on a weighted critical path: those whose
    /// through-path equals the overall critical path length. SR-CaQR delays
    /// frontier gates that are *not* marked (§3.3.1 Step 2).
    pub fn on_critical_path(&self, weights: &[u64]) -> Vec<bool> {
        if self.is_empty() {
            return Vec::new();
        }
        let to = self.longest_path_to(weights);
        let from = self.longest_path_from(weights);
        let total = to.iter().copied().max().unwrap_or(0);
        (0..self.len())
            // through(v) = to(v) + from(v) - w(v)
            .map(|v| to[v] + from[v] - weights[v] == total)
            .collect()
    }

    /// The transitive closure of the dependence relation, for batch
    /// Condition-2 queries.
    pub fn closure(&self) -> TransitiveClosure {
        TransitiveClosure::of(&self.graph).expect("circuit DAG is acyclic by construction")
    }

    /// Tests the paper's Condition 2 for the reuse pair `(q_i -> q_j)` on
    /// `circuit`: no gate on `q_i` may (transitively) depend on a gate on
    /// `q_j`. Equivalently, inserting the dummy measure node `D` with edges
    /// `gates(q_i) -> D -> gates(q_j)` must not create a cycle (Fig. 7).
    pub fn reuse_respects_dependencies(
        &self,
        circuit: &Circuit,
        closure: &TransitiveClosure,
        q_i: Qubit,
        q_j: Qubit,
    ) -> bool {
        let gates_i = circuit.gates_on_qubit(q_i);
        let gates_j = circuit.gates_on_qubit(q_j);
        !closure.any_reaches(&gates_j, &gates_i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Clbit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn chain_dependencies() {
        let mut c = Circuit::new(1, 0);
        c.h(q(0));
        c.x(q(0));
        c.h(q(0));
        let dag = CircuitDag::of(&c);
        assert!(dag.graph().has_edge(0, 1));
        assert!(dag.graph().has_edge(1, 2));
        assert!(!dag.graph().has_edge(0, 2));
        assert_eq!(dag.unit_critical_path(), 3);
    }

    #[test]
    fn parallel_wires_independent() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.h(q(1));
        let dag = CircuitDag::of(&c);
        assert_eq!(dag.frontier(), vec![0, 1]);
        assert_eq!(dag.unit_critical_path(), 1);
    }

    #[test]
    fn classical_wire_creates_dependency() {
        let mut c = Circuit::new(2, 1);
        c.measure(q(0), Clbit::new(0));
        c.cond_x(q(1), Clbit::new(0));
        let dag = CircuitDag::of(&c);
        assert!(dag.graph().has_edge(0, 1));
    }

    #[test]
    fn weighted_critical_path() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0)); // 0
        c.h(q(1)); // 1
        c.cx(q(0), q(1)); // 2
        let dag = CircuitDag::of(&c);
        // Make one H much longer.
        assert_eq!(dag.weighted_critical_path(&[100, 1, 10]), 110);
    }

    #[test]
    fn critical_path_marking() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0)); // 0: long branch start
        c.h(q(0)); // 1
        c.h(q(1)); // 2: short branch (off critical path)
        c.cx(q(0), q(1)); // 3
        let dag = CircuitDag::of(&c);
        let marks = dag.on_critical_path(&[1, 1, 1, 1]);
        assert_eq!(marks, vec![true, true, false, true]);
    }

    #[test]
    fn paper_fig7_condition2_violation() {
        // Fig. 7: gates g(q4,q2), g(q2,q3), g(q3,q1). Reusing q1 for q4 is
        // invalid: g(q3,q1) transitively depends on g(q4,q2).
        let mut c = Circuit::new(4, 0); // q1=0, q2=1, q3=2, q4=3
        c.cx(q(3), q(1)); // g(q4, q2)
        c.cx(q(1), q(2)); // g(q2, q3)
        c.cx(q(2), q(0)); // g(q3, q1)
        let dag = CircuitDag::of(&c);
        let closure = dag.closure();
        // q1 (=0) reused by q4 (=3): gates on q4 reach gates on q1 -> invalid.
        assert!(!dag.reuse_respects_dependencies(&c, &closure, q(0), q(3)));
        // The reverse direction (q4 reused by q1) is fine dependence-wise.
        assert!(dag.reuse_respects_dependencies(&c, &closure, q(3), q(0)));
    }

    #[test]
    fn bv_reuse_is_valid_forward_only() {
        // BV: data qubits only interact with the target, so a *later* data
        // qubit may reuse an earlier one. The reverse direction is blocked
        // because the CXs to the shared target are ordered: gate(q1) already
        // depends on gate(q0), so requiring q1's gates to finish first would
        // create a cycle.
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(2));
        c.cx(q(1), q(2));
        let dag = CircuitDag::of(&c);
        let closure = dag.closure();
        assert!(dag.reuse_respects_dependencies(&c, &closure, q(0), q(1)));
        assert!(!dag.reuse_respects_dependencies(&c, &closure, q(1), q(0)));
    }

    #[test]
    fn empty_circuit() {
        let dag = CircuitDag::of(&Circuit::new(3, 0));
        assert!(dag.is_empty());
        assert_eq!(dag.unit_critical_path(), 0);
        assert!(dag.frontier().is_empty());
        assert!(dag.on_critical_path(&[]).is_empty());
    }

    #[test]
    fn longest_path_from_matches_to() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.h(q(1));
        let dag = CircuitDag::of(&c);
        let w = vec![1u64; 3];
        let to = dag.longest_path_to(&w);
        let from = dag.longest_path_from(&w);
        assert_eq!(to, vec![1, 2, 3]);
        assert_eq!(from, vec![3, 2, 1]);
    }
}
