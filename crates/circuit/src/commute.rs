//! Gate commutation rules.
//!
//! CaQR distinguishes *regular* circuits (fixed gate order) from circuits
//! with *commutable* gates such as QAOA, whose cost layer is made entirely
//! of mutually commuting diagonal gates (CPHASE/RZZ). For those, the gate
//! order is free and CaQR may schedule them in any sequence that respects
//! the reuse-imposed dependencies (§3.2.2).
//!
//! The rules here are conservative (sound but not complete): two gates are
//! reported commuting only when a simple structural argument guarantees it.

use crate::circuit::Instruction;
use crate::gate::Gate;

/// Returns `true` when `a` and `b` provably commute.
///
/// Cases covered:
/// * disjoint qubit supports (and no shared classical bits);
/// * both gates diagonal in the computational basis;
/// * equal gates on equal operands.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{commute, Gate, Instruction, Qubit};
///
/// let a = Instruction::gate(Gate::Cp(0.3), vec![Qubit::new(0), Qubit::new(1)]);
/// let b = Instruction::gate(Gate::Cp(0.7), vec![Qubit::new(1), Qubit::new(2)]);
/// assert!(commute::commutes(&a, &b)); // both diagonal
/// ```
pub fn commutes(a: &Instruction, b: &Instruction) -> bool {
    // Measurement / reset / conditioned gates: never commuted.
    if a.gate.is_non_unitary()
        || b.gate.is_non_unitary()
        || a.condition.is_some()
        || b.condition.is_some()
    {
        return disjoint(a, b);
    }
    if disjoint(a, b) {
        return true;
    }
    if a.gate.is_diagonal() && b.gate.is_diagonal() {
        return true;
    }
    // X-basis diagonal family commutes among itself.
    let x_diag = |g: &Gate| matches!(g, Gate::X | Gate::Rx(_));
    if x_diag(&a.gate) && x_diag(&b.gate) {
        return true;
    }
    a == b
}

fn disjoint(a: &Instruction, b: &Instruction) -> bool {
    let qubits_disjoint = a.qubits.iter().all(|q| !b.qubits.contains(q));
    let a_cl: Vec<_> = a.clbit.iter().chain(a.condition.iter()).collect();
    let b_cl: Vec<_> = b.clbit.iter().chain(b.condition.iter()).collect();
    let clbits_disjoint = a_cl.iter().all(|c| !b_cl.contains(c));
    qubits_disjoint && clbits_disjoint
}

/// Returns `true` if every two-qubit gate of the circuit belongs to the
/// mutually-commuting diagonal family — the structural property QAOA cost
/// layers have, which unlocks the commuting-gate variants of QS-CaQR and
/// SR-CaQR.
pub fn has_commuting_two_qubit_layer(circuit: &crate::Circuit) -> bool {
    let mut any = false;
    for instr in circuit {
        if instr.is_two_qubit() {
            if !instr.gate.is_diagonal() {
                return false;
            }
            any = true;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn gi(g: Gate, qs: &[usize]) -> Instruction {
        Instruction::gate(g, qs.iter().map(|&i| q(i)).collect())
    }

    #[test]
    fn disjoint_supports_commute() {
        assert!(commutes(&gi(Gate::Cx, &[0, 1]), &gi(Gate::Cx, &[2, 3])));
        assert!(commutes(&gi(Gate::H, &[0]), &gi(Gate::X, &[1])));
    }

    #[test]
    fn diagonal_gates_commute_on_shared_qubits() {
        assert!(commutes(
            &gi(Gate::Cp(0.5), &[0, 1]),
            &gi(Gate::Cp(0.9), &[1, 2])
        ));
        assert!(commutes(
            &gi(Gate::Rzz(0.5), &[0, 1]),
            &gi(Gate::Rz(0.2), &[0])
        ));
        assert!(commutes(&gi(Gate::Cz, &[0, 1]), &gi(Gate::Cz, &[0, 1])));
    }

    #[test]
    fn non_commuting_pairs() {
        assert!(!commutes(&gi(Gate::H, &[0]), &gi(Gate::X, &[0])));
        assert!(!commutes(&gi(Gate::Cx, &[0, 1]), &gi(Gate::Cx, &[1, 0])));
        assert!(!commutes(
            &gi(Gate::Rz(0.3), &[0]),
            &gi(Gate::Rx(0.3), &[0])
        ));
    }

    #[test]
    fn x_family_commutes() {
        assert!(commutes(&gi(Gate::Rx(0.1), &[0]), &gi(Gate::X, &[0])));
    }

    #[test]
    fn identical_gates_commute() {
        assert!(commutes(&gi(Gate::Cx, &[0, 1]), &gi(Gate::Cx, &[0, 1])));
    }

    fn measure_instr(qubit: usize, clbit: usize) -> Instruction {
        Instruction {
            gate: Gate::Measure,
            qubits: vec![q(qubit)],
            clbit: Some(Clbit::new(clbit)),
            condition: None,
        }
    }

    #[test]
    fn measurement_never_commutes_on_shared_wire() {
        let m = measure_instr(0, 0);
        assert!(!commutes(&m, &gi(Gate::H, &[0])));
        assert!(commutes(&m, &gi(Gate::H, &[1])));
    }

    #[test]
    fn shared_clbit_blocks_commutation() {
        let m = measure_instr(0, 0);
        let mut cx = gi(Gate::X, &[1]);
        cx.condition = Some(Clbit::new(0));
        assert!(!commutes(&m, &cx));
    }

    #[test]
    fn qaoa_layer_detection() {
        let mut qaoa = Circuit::new(3, 0);
        qaoa.h(q(0));
        qaoa.cp(0.4, q(0), q(1));
        qaoa.cp(0.4, q(1), q(2));
        qaoa.rx(0.7, q(0));
        assert!(has_commuting_two_qubit_layer(&qaoa));

        let mut regular = Circuit::new(2, 0);
        regular.cx(q(0), q(1));
        assert!(!has_commuting_two_qubit_layer(&regular));

        let empty = Circuit::new(2, 0);
        assert!(!has_commuting_two_qubit_layer(&empty));
    }
}
