//! OpenQASM 2 text export / import (with dynamic-circuit extensions).
//!
//! The exporter writes standard OpenQASM 2.0 plus the two dynamic-circuit
//! forms IBM's toolchain accepts: `reset q[i];` and single-bit conditionals
//! `if(c[i]==1) x q[j];`. The importer reads back the same dialect, which
//! gives us lossless round-trips for persisting compiled circuits.

use crate::circuit::{Circuit, Clbit, Instruction, Qubit};
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serializes `circuit` as OpenQASM 2 text.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{qasm, Circuit, Clbit, Qubit};
///
/// let mut c = Circuit::new(1, 1);
/// c.h(Qubit::new(0));
/// c.measure(Qubit::new(0), Clbit::new(0));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("measure q[0] -> c[0];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits().max(1));
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for instr in circuit {
        if let Some(cond) = instr.condition {
            let _ = write!(out, "if(c[{}]==1) ", cond.index());
        }
        match instr.gate {
            Gate::Measure => {
                let c = instr.clbit.expect("measure has a clbit");
                let _ = writeln!(
                    out,
                    "measure q[{}] -> c[{}];",
                    instr.qubits[0].index(),
                    c.index()
                );
            }
            gate => {
                let _ = write!(out, "{}", gate.name());
                if let Gate::U(t, p, l) = gate {
                    let _ = write!(out, "({t:.12},{p:.12},{l:.12})");
                } else if let Some(a) = gate.angle() {
                    let _ = write!(out, "({a:.12})");
                }
                for (i, q) in instr.qubits.iter().enumerate() {
                    let sep = if i == 0 { " " } else { ", " };
                    let _ = write!(out, "{sep}q[{}]", q.index());
                }
                out.push_str(";\n");
            }
        }
    }
    out
}

/// An error from [`from_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    /// An error at the given 1-based line (0 = no single line, used by
    /// the deferred range check).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// One meaningful statement produced by [`LineParser::parse_line`].
///
/// Lines that carry no circuit content (blanks, comments, `OPENQASM` /
/// `include` / `barrier` directives, skipped `gate` definition bodies)
/// yield no event at all.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmStmt {
    /// `qreg q[n];` — the declared qubit-register width. A later
    /// declaration replaces an earlier one (last wins).
    Qreg(usize),
    /// `creg c[n];` — the declared classical-register width.
    Creg(usize),
    /// A gate application, measurement, or reset. Operand indices are
    /// *not* yet range-checked against the declared registers: the
    /// dialect tolerates declarations after uses, so validation is
    /// deferred to the end of the program (see [`validate_ranges`]).
    Instr(Instruction),
}

/// The statement-level parser both the batch importer ([`from_qasm`]) and
/// the incremental streaming front-end share — one grammar, two drivers.
///
/// Feed physical source lines (comment stripping happens here) in order;
/// the only cross-line state is the "inside a skipped `gate` definition
/// body" flag, so the parser itself is O(1) in program length.
#[derive(Debug, Default, Clone)]
pub struct LineParser {
    /// Custom gate definitions are skipped wholesale (their uses would be
    /// rejected as unknown gates, which is the honest failure mode for a
    /// subset importer).
    in_gate_body: bool,
}

impl LineParser {
    /// A parser at the start of a program.
    pub fn new() -> Self {
        LineParser::default()
    }

    /// Parses one source line (1-based `lineno` for error reporting).
    /// Returns `None` for lines that carry no circuit content.
    ///
    /// # Errors
    ///
    /// [`ParseQasmError`] on malformed statements or unknown gates, with
    /// the same messages [`from_qasm`] has always produced.
    pub fn parse_line(
        &mut self,
        raw: &str,
        lineno: usize,
    ) -> Result<Option<QasmStmt>, ParseQasmError> {
        let line = raw.split("//").next().unwrap_or("").trim();
        if self.in_gate_body {
            if line.contains('}') {
                self.in_gate_body = false;
            }
            return Ok(None);
        }
        if line.starts_with("gate ") || line.starts_with("gate\t") {
            self.in_gate_body = !line.contains('}');
            return Ok(None);
        }
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("barrier")
        {
            return Ok(None);
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| ParseQasmError::new(lineno, "missing ';'"))?
            .trim();
        if let Some(rest) = stmt.strip_prefix("qreg") {
            return Ok(Some(QasmStmt::Qreg(parse_reg_decl(rest, lineno)?)));
        }
        if let Some(rest) = stmt.strip_prefix("creg") {
            return Ok(Some(QasmStmt::Creg(parse_reg_decl(rest, lineno)?)));
        }

        let (condition, body) = match stmt.strip_prefix("if(") {
            Some(rest) => {
                let close = rest
                    .find(')')
                    .ok_or_else(|| ParseQasmError::new(lineno, "unterminated if("))?;
                let cond_expr = &rest[..close];
                let bit = cond_expr
                    .strip_prefix("c[")
                    .and_then(|s| s.strip_suffix("]==1"))
                    .ok_or_else(|| {
                        ParseQasmError::new(lineno, "only if(c[i]==1) conditions supported")
                    })?;
                let idx: usize = bit
                    .parse()
                    .ok()
                    .filter(|&n| u32::try_from(n).is_ok())
                    .ok_or_else(|| ParseQasmError::new(lineno, "bad condition bit"))?;
                (Some(Clbit::new(idx)), rest[close + 1..].trim())
            }
            None => (None, stmt),
        };

        if let Some(rest) = body.strip_prefix("measure") {
            let (qs, cs) = rest
                .split_once("->")
                .ok_or_else(|| ParseQasmError::new(lineno, "measure missing '->'"))?;
            let qi = parse_index(qs.trim(), 'q', lineno)?;
            let ci = parse_index(cs.trim(), 'c', lineno)?;
            return Ok(Some(QasmStmt::Instr(Instruction {
                gate: Gate::Measure,
                qubits: vec![Qubit::new(qi)],
                clbit: Some(Clbit::new(ci)),
                condition,
            })));
        }

        // Gate application: name[(angle[, angle...])] q[i][, q[j]].
        // The angle list is delimited by its parentheses (angle
        // expressions may contain spaces), so the operand list starts
        // after ')' when one is present and after the first space
        // otherwise.
        let (name, angles, operands) = match body.split_once('(') {
            Some((n, rest)) => {
                let close = rest
                    .find(')')
                    .ok_or_else(|| ParseQasmError::new(lineno, "unterminated angle"))?;
                let angles: Option<Vec<f64>> =
                    rest[..close].split(',').map(parse_angle_expr).collect();
                let angles = angles.ok_or_else(|| ParseQasmError::new(lineno, "bad angle"))?;
                (n.trim(), angles, rest[close + 1..].trim())
            }
            None => {
                let (head, operands) = body
                    .split_once(' ')
                    .ok_or_else(|| ParseQasmError::new(lineno, "gate missing operands"))?;
                (head, Vec::new(), operands)
            }
        };
        let gate = gate_from_name(name, &angles)
            .ok_or_else(|| ParseQasmError::new(lineno, format!("unknown gate '{name}'")))?;
        let qubits: Result<Vec<Qubit>, ParseQasmError> = operands
            .split(',')
            .map(|op| parse_index(op.trim(), 'q', lineno).map(Qubit::new))
            .collect();
        let qubits = qubits?;
        if qubits.len() != gate.num_qubits() {
            return Err(ParseQasmError::new(lineno, "operand count mismatch"));
        }
        if qubits.len() == 2 && qubits[0] == qubits[1] {
            return Err(ParseQasmError::new(
                lineno,
                "two-qubit gate operands must differ",
            ));
        }
        Ok(Some(QasmStmt::Instr(Instruction {
            gate,
            qubits,
            clbit: None,
            condition,
        })))
    }
}

/// The end-of-program range check both importers apply: the dialect
/// tolerates register declarations *after* uses, so operand ranges are
/// only checkable once the whole program has been seen.
///
/// # Errors
///
/// The importers' historical "operand out of declared range" error (line
/// 0 — the offending declaration order has no single line).
pub fn validate_ranges(
    instr: &Instruction,
    num_qubits: usize,
    num_clbits: usize,
) -> Result<(), ParseQasmError> {
    if instr.qubits.iter().any(|q| q.index() >= num_qubits)
        || instr.clbit.is_some_and(|c| c.index() >= num_clbits)
        || instr.condition.is_some_and(|c| c.index() >= num_clbits)
    {
        return Err(ParseQasmError::new(0, "operand out of declared range"));
    }
    Ok(())
}

/// Parses the dialect produced by [`to_qasm`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on malformed statements, unknown gates, or
/// out-of-range operands.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;
    let mut instrs: Vec<Instruction> = Vec::new();
    let mut parser = LineParser::new();
    for (lineno, raw) in text.lines().enumerate() {
        match parser.parse_line(raw, lineno + 1)? {
            None => {}
            Some(QasmStmt::Qreg(n)) => num_qubits = n,
            Some(QasmStmt::Creg(n)) => num_clbits = n,
            Some(QasmStmt::Instr(instr)) => instrs.push(instr),
        }
    }

    let mut circuit = Circuit::new(num_qubits, num_clbits);
    for i in instrs {
        // Re-validate ranges through push.
        validate_ranges(&i, num_qubits, num_clbits)?;
        circuit.push(i);
    }
    Ok(circuit)
}

/// Parses a qelib-style angle expression: products and quotients of `pi`
/// and float literals, with unary minus — `pi`, `pi/2`, `2*pi`, `-pi/4`,
/// `3*pi/2`, `0.5`. `*` and `/` associate left at equal precedence, which
/// matches OpenQASM 2 for the expression subset qelib1 headers use.
fn parse_angle_expr(s: &str) -> Option<f64> {
    let mut rest = s.trim();
    let mut acc = parse_angle_atom(&mut rest)?;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            return Some(acc);
        }
        let op = rest.as_bytes()[0];
        if op != b'*' && op != b'/' {
            return None;
        }
        rest = rest[1..].trim_start();
        let atom = parse_angle_atom(&mut rest)?;
        if op == b'*' {
            acc *= atom;
        } else {
            acc /= atom;
        }
    }
}

/// One operand: optional unary minus, then `pi` or a float literal.
/// Consumes from the front of `rest`.
fn parse_angle_atom(rest: &mut &str) -> Option<f64> {
    let mut s = rest.trim_start();
    let mut neg = false;
    while let Some(r) = s.strip_prefix('-') {
        neg = !neg;
        s = r.trim_start();
    }
    if let Some(r) = s.strip_prefix("pi") {
        // "pie" must not parse as pi * <garbage>.
        if r.chars().next().is_some_and(|c| c.is_ascii_alphanumeric()) {
            return None;
        }
        *rest = r;
        return Some(if neg {
            -std::f64::consts::PI
        } else {
            std::f64::consts::PI
        });
    }
    // Longest float-literal prefix: digits and '.', optionally followed by
    // an exponent with its own sign.
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
        i += 1;
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        let digits_start = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > digits_start {
            i = j;
        }
    }
    if i == 0 {
        return None;
    }
    let v: f64 = s[..i].parse().ok()?;
    *rest = &s[i..];
    Some(if neg { -v } else { v })
}

fn parse_reg_decl(rest: &str, lineno: usize) -> Result<usize, ParseQasmError> {
    rest.trim()
        .split_once('[')
        .and_then(|(_, r)| r.strip_suffix(']'))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| ParseQasmError::new(lineno, "bad register declaration"))
}

fn parse_index(token: &str, reg: char, lineno: usize) -> Result<usize, ParseQasmError> {
    let expect = format!("{reg}[");
    // The u32 bound mirrors the Qubit/Clbit newtypes: checking here turns
    // an adversarial `h q[99999999999999];` into a parse error instead of
    // a panic inside `Qubit::new`.
    token
        .strip_prefix(&expect)
        .and_then(|r| r.strip_suffix(']'))
        .and_then(|n| n.parse().ok())
        .filter(|&n: &usize| u32::try_from(n).is_ok())
        .ok_or_else(|| ParseQasmError::new(lineno, format!("expected {reg}[i], got '{token}'")))
}

fn gate_from_name(name: &str, angles: &[f64]) -> Option<Gate> {
    Some(match (name, angles) {
        ("h", []) => Gate::H,
        ("x", []) => Gate::X,
        ("y", []) => Gate::Y,
        ("z", []) => Gate::Z,
        ("s", []) => Gate::S,
        ("sdg", []) => Gate::Sdg,
        ("t", []) => Gate::T,
        ("tdg", []) => Gate::Tdg,
        ("id", []) => Gate::U(0.0, 0.0, 0.0),
        ("rx", &[a]) => Gate::Rx(a),
        ("ry", &[a]) => Gate::Ry(a),
        ("rz", &[a]) => Gate::Rz(a),
        ("p", &[a]) | ("u1", &[a]) => Gate::Phase(a),
        ("u2", &[phi, lambda]) => Gate::U(std::f64::consts::FRAC_PI_2, phi, lambda),
        ("u", &[t, p, l]) | ("u3", &[t, p, l]) => Gate::U(t, p, l),
        ("cx", []) => Gate::Cx,
        ("cz", []) => Gate::Cz,
        ("cp", &[a]) => Gate::Cp(a),
        ("rzz", &[a]) => Gate::Rzz(a),
        ("swap", []) => Gate::Swap,
        ("reset", []) => Gate::Reset,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.h(q(0));
        c.rz(0.75, q(1));
        c.cx(q(0), q(1));
        c.cp(1.25, q(1), q(2));
        c.measure(q(0), Clbit::new(0));
        c.cond_x(q(0), Clbit::new(0));
        c.cx(q(2), q(0));
        c.measure(q(2), Clbit::new(2));
        c
    }

    #[test]
    fn export_contains_dialect() {
        let text = to_qasm(&sample_circuit());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("cp(1.25"));
        assert!(text.contains("if(c[0]==1) x q[0];"));
    }

    #[test]
    fn round_trip_preserves_circuit() {
        let original = sample_circuit();
        let parsed = from_qasm(&to_qasm(&original)).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.num_clbits(), original.num_clbits());
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(original.iter()) {
            assert_eq!(a.gate.name(), b.gate.name());
            assert_eq!(a.qubits, b.qubits);
            assert_eq!(a.clbit, b.clbit);
            assert_eq!(a.condition, b.condition);
            if let (Some(x), Some(y)) = (a.gate.angle(), b.gate.angle()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_qasm("qreg q[2];\nbogus q[0];").is_err());
        assert!(from_qasm("qreg q[2];\nh q[0]").is_err()); // missing ;
        let err = from_qasm("qreg q[1];\nh q[5];");
        assert!(err.is_err()); // out of range
    }

    #[test]
    fn hostile_statements_error_instead_of_panicking() {
        // Duplicate two-qubit operands would trip Instruction::validate
        // downstream; the parser must reject them itself.
        assert!(from_qasm("qreg q[2];\ncx q[0], q[0];").is_err());
        assert!(from_qasm("qreg q[3];\nswap q[2], q[2];").is_err());
        // Indices beyond u32 would panic inside Qubit::new/Clbit::new.
        assert!(from_qasm("qreg q[2];\nh q[99999999999999];").is_err());
        assert!(from_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[99999999999999];").is_err());
        assert!(from_qasm("qreg q[1];\ncreg c[1];\nif(c[99999999999999]==1) x q[0];").is_err());
        // Oversized register declarations parse but leave every operand
        // out of range rather than allocating.
        assert!(from_qasm("qreg q[18446744073709551615];\nh q[0];").is_ok());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[1];\nh q[0]; // trailing\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn u_gates_round_trip_and_qiskit_aliases_parse() {
        let mut c = Circuit::new(1, 0);
        c.push_gate(Gate::U(0.3, 0.5, 0.7), &[q(0)]);
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        match parsed.instructions()[0].gate {
            Gate::U(t, p, l) => {
                assert!((t - 0.3).abs() < 1e-9);
                assert!((p - 0.5).abs() < 1e-9);
                assert!((l - 0.7).abs() < 1e-9);
            }
            ref g => panic!("expected U, got {g}"),
        }
        // Qiskit legacy spellings.
        let c = from_qasm(
            "qreg q[1];\nu1(0.5) q[0];\nu2(0.1,0.2) q[0];\nu3(1.0,2.0,3.0) q[0];\nid q[0];",
        )
        .unwrap();
        assert_eq!(c.len(), 4);
        assert!(matches!(c.instructions()[0].gate, Gate::Phase(_)));
        assert!(matches!(c.instructions()[1].gate, Gate::U(..)));
        assert!(matches!(c.instructions()[2].gate, Gate::U(..)));
    }

    #[test]
    fn angle_expressions_parse() {
        use std::f64::consts::PI;
        let text = "qreg q[1];\nrz(pi) q[0];\nrx(pi/2) q[0];\nry(2*pi) q[0];\n\
                    p(-pi/4) q[0];\nrz(3*pi/2) q[0];\nrx( pi / 2 ) q[0];\nrz(-2*-pi) q[0];\n\
                    u3(pi/2, -pi, 0.5e1) q[0];";
        let c = from_qasm(text).unwrap();
        let expect = [
            PI,
            PI / 2.0,
            2.0 * PI,
            -PI / 4.0,
            3.0 * PI / 2.0,
            PI / 2.0,
            2.0 * PI,
        ];
        for (instr, want) in c.iter().zip(expect) {
            let got = instr.gate.angle().unwrap();
            assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        }
        match c.instructions()[7].gate {
            Gate::U(t, p, l) => {
                assert!((t - PI / 2.0).abs() < 1e-12);
                assert!((p + PI).abs() < 1e-12);
                assert!((l - 5.0).abs() < 1e-12);
            }
            ref g => panic!("expected U, got {g}"),
        }
        // Plain literals keep working, malformed expressions still fail.
        assert!(from_qasm("qreg q[1];\nrz(0.75) q[0];").is_ok());
        for bad in [
            "rz(pie) q[0];",
            "rz(pi+1) q[0];",
            "rz() q[0];",
            "rz(2**pi) q[0];",
        ] {
            let text = format!("qreg q[1];\n{bad}");
            assert!(from_qasm(&text).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn reset_round_trips() {
        let mut c = Circuit::new(1, 0);
        c.reset(q(0));
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed.instructions()[0].gate, Gate::Reset);
    }

    #[test]
    fn gate_definitions_are_skipped() {
        let text =
            "OPENQASM 2.0;\nqreg q[2];\ngate mygate a, b {\n  cx a, b;\n  h a;\n}\nh q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
        // One-line definitions too.
        let text = "qreg q[1];\ngate g2 a { h a; }\nx q[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.instructions()[0].gate, Gate::X);
    }

    #[test]
    fn error_display() {
        let err = from_qasm("qreg q[1];\nh q[0]").unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("line 2"));
        assert_eq!(err.line(), 2);
    }
}
