//! The gate set.

use std::fmt;

/// A quantum operation.
///
/// The set covers everything the paper's benchmarks use: the Clifford+T
/// single-qubit family, parameterized rotations, the two-qubit entanglers
/// (including the QAOA `CPhase`/`RZZ` layer gates), `Swap` for routing, and
/// the dynamic-circuit primitives `Measure` and `Reset`.
///
/// Angles are in radians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X. With [`Instruction::condition`](crate::Instruction) set, this
    /// is the classically-controlled X the paper uses as a fast conditional
    /// reset (Fig. 2b).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = sqrt(Z).
    S,
    /// S-dagger.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// T-dagger.
    Tdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Diagonal phase gate `diag(1, e^{i a})`.
    Phase(f64),
    /// The generic single-qubit unitary `U(theta, phi, lambda)` (OpenQASM
    /// `u3`).
    U(f64, f64, f64),
    /// Controlled-X (CNOT); qubit 0 controls qubit 1.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled-phase by the given angle (symmetric); the QAOA CPHASE.
    Cp(f64),
    /// Two-qubit ZZ rotation `exp(-i a/2 Z⊗Z)` (symmetric); the QAOA mixer
    /// partner gate.
    Rzz(f64),
    /// SWAP, as inserted by routing.
    Swap,
    /// Projective measurement in the computational basis; writes the
    /// instruction's classical bit.
    Measure,
    /// Unconditional reset to |0>. The paper replaces `Measure + Reset` with
    /// `Measure + conditional X` for speed; both are representable.
    Reset,
}

impl Gate {
    /// The number of qubits this gate acts on (1 or 2).
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Cp(_) | Gate::Rzz(_) | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// Returns `true` if the gate's unitary is diagonal in the computational
    /// basis (such gates all commute with each other).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Phase(_)
                | Gate::Cz
                | Gate::Cp(_)
                | Gate::Rzz(_)
        )
    }

    /// Returns `true` for `Measure` and `Reset` (the non-unitary,
    /// dynamic-circuit operations).
    pub fn is_non_unitary(&self) -> bool {
        matches!(self, Gate::Measure | Gate::Reset)
    }

    /// Returns `true` if the two-qubit gate is symmetric under qubit
    /// exchange (so routing may map its operands to a coupling edge in
    /// either direction without a direction fix-up).
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Gate::Cz | Gate::Cp(_) | Gate::Rzz(_) | Gate::Swap)
    }

    /// The lower-case mnemonic used in QASM output and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U(..) => "u",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Rzz(_) => "rzz",
            Gate::Swap => "swap",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
        }
    }

    /// The rotation angle for parameterized gates.
    pub fn angle(&self) -> Option<f64> {
        match self {
            Gate::Rx(a)
            | Gate::Ry(a)
            | Gate::Rz(a)
            | Gate::Phase(a)
            | Gate::Cp(a)
            | Gate::Rzz(a) => Some(*a),
            _ => None,
        }
    }

    /// The rotation parameter for parameterized gates, decoding NaN-boxed
    /// symbolic slots (see [`crate::param`]).
    pub fn param(&self) -> Option<crate::param::Param> {
        self.angle().map(crate::param::Param::from_raw)
    }

    /// The same gate with its angle replaced, or `None` for gates without
    /// a single-angle parameter. This is the bind step's workhorse.
    pub fn with_angle(&self, angle: f64) -> Option<Gate> {
        Some(match self {
            Gate::Rx(_) => Gate::Rx(angle),
            Gate::Ry(_) => Gate::Ry(angle),
            Gate::Rz(_) => Gate::Rz(angle),
            Gate::Phase(_) => Gate::Phase(angle),
            Gate::Cp(_) => Gate::Cp(angle),
            Gate::Rzz(_) => Gate::Rzz(angle),
            _ => return None,
        })
    }

    /// The inverse (adjoint) gate, or `None` for the non-unitary
    /// operations and for symbolic rotations (negating a NaN-boxed slot
    /// would flip its sign bit and corrupt the payload — a template's
    /// inverse is only defined after binding).
    pub fn inverse(&self) -> Option<Gate> {
        if self.param().is_some_and(|p| p.is_slot()) {
            return None;
        }
        Some(match *self {
            Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cx | Gate::Cz | Gate::Swap => *self,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(a) => Gate::Rx(-a),
            Gate::Ry(a) => Gate::Ry(-a),
            Gate::Rz(a) => Gate::Rz(-a),
            Gate::Phase(a) => Gate::Phase(-a),
            Gate::Cp(a) => Gate::Cp(-a),
            Gate::Rzz(a) => Gate::Rzz(-a),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            Gate::Measure | Gate::Reset => return None,
        })
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Gate::U(t, p, l) = self {
            return write!(f, "u({t:.6}, {p:.6}, {l:.6})");
        }
        match self.param() {
            Some(p) => write!(f, "{}({})", self.name(), p),
            None => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert_eq!(Gate::Rzz(0.5).num_qubits(), 2);
        assert_eq!(Gate::Measure.num_qubits(), 1);
        assert!(Gate::Swap.is_two_qubit());
        assert!(!Gate::Rx(1.0).is_two_qubit());
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Cz.is_diagonal());
        assert!(Gate::Cp(0.3).is_diagonal());
        assert!(Gate::Rzz(0.3).is_diagonal());
        assert!(Gate::Rz(0.3).is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Measure.is_diagonal());
    }

    #[test]
    fn symmetry() {
        assert!(Gate::Cz.is_symmetric());
        assert!(Gate::Swap.is_symmetric());
        assert!(!Gate::Cx.is_symmetric());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Gate::Sdg.name(), "sdg");
        assert_eq!(format!("{}", Gate::H), "h");
        assert!(format!("{}", Gate::Rz(1.5)).starts_with("rz(1.5"));
    }

    #[test]
    fn non_unitary() {
        assert!(Gate::Measure.is_non_unitary());
        assert!(Gate::Reset.is_non_unitary());
        assert!(!Gate::X.is_non_unitary());
    }

    #[test]
    fn angles() {
        assert_eq!(Gate::Cp(0.25).angle(), Some(0.25));
        assert_eq!(Gate::Cx.angle(), None);
    }

    #[test]
    fn symbolic_rotations_are_guarded() {
        use crate::param::Param;
        let slot = Param::Slot(4).to_raw();
        assert_eq!(Gate::Rx(slot).inverse(), None, "slot negation is lossy");
        assert_eq!(Gate::Rzz(slot).inverse(), None);
        assert_eq!(Gate::Rx(0.5).inverse(), Some(Gate::Rx(-0.5)));
        assert_eq!(format!("{}", Gate::Rz(slot)), "rz($4)");
        assert_eq!(Gate::Rz(slot).param(), Some(Param::Slot(4)));
        assert_eq!(Gate::Rz(slot).with_angle(0.25), Some(Gate::Rz(0.25)));
        assert_eq!(Gate::H.with_angle(0.25), None);
    }
}
