//! Stable content-addressed fingerprints.
//!
//! The batch-compilation engine caches compile results under a key derived
//! from the circuit, the device calibration, and the strategy. That key
//! must be *stable*: identical across runs, processes, platforms, and
//! releases — which rules out `std::hash` (SipHash keys are an
//! implementation detail) and anything derived from memory layout. This
//! module provides a 128-bit FNV-1a hasher with explicit, canonical
//! encodings for the primitive types the IR is made of, plus the
//! [`Fingerprint`] value it produces.

use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit stable content hash.
///
/// Displayed as 32 hex digits. The width makes accidental collisions
/// across realistic workloads (thousands of circuits) negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// A shortened 64-bit form (upper XOR lower half), for compact display.
    pub fn short(self) -> u64 {
        (self.0 >> 64) as u64 ^ self.0 as u64
    }

    /// Mixes another fingerprint in, producing a combined key.
    ///
    /// Non-commutative (order matters), so `a.combine(b) != b.combine(a)`.
    pub fn combine(self, other: Fingerprint) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_u128(self.0);
        h.write_u128(other.0);
        h.finish()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An FNV-1a 128-bit hasher with canonical encodings.
///
/// All multi-byte values are folded in little-endian; floats hash their
/// IEEE-754 bit patterns (so `-0.0` and `0.0` differ, and `NaN` payloads
/// are honored — canonicalization beyond that is the caller's job).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Folds a `u8` in.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u32` in (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` in (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u128` in (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` in, widened to 64 bits so 32- and 64-bit platforms
    /// agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `f64` in via its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string in, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StableHasher::new().finish().as_u128(), FNV128_OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a 128 of "a" = offset ^ 'a' then * prime.
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        let expected = (FNV128_OFFSET ^ b'a' as u128).wrapping_mul(FNV128_PRIME);
        assert_eq!(h.finish().as_u128(), expected);
    }

    #[test]
    fn stable_across_instances() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(42);
            h.write_f64(0.25);
            h.write_str("cx");
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn order_sensitivity() {
        let mut a = StableHasher::new();
        a.write_u8(1);
        a.write_u8(2);
        let mut b = StableHasher::new();
        b.write_u8(2);
        b.write_u8(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_concat_collision() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_sensitive() {
        let x = Fingerprint(1);
        let y = Fingerprint(2);
        assert_ne!(x.combine(y), y.combine(x));
        assert_eq!(x.combine(y), x.combine(y));
    }

    #[test]
    fn display_is_32_hex_digits() {
        let s = Fingerprint(0xdead_beef).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.ends_with("deadbeef"));
        let _ = Fingerprint(0xdead_beef).short();
    }
}
