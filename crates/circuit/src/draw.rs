//! ASCII circuit rendering, for docs, debugging, and CLI output.
//!
//! The drawing is layered: each ASAP layer becomes one column, two-qubit
//! gates get a vertical connector, and classical operations show the bit
//! they touch (`M0` measures into c0, `X?0` is an X conditioned on c0).

use crate::circuit::Circuit;
use crate::depth::layers;
use crate::gate::Gate;

/// Renders `circuit` as fixed-width ASCII art, one row per qubit.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{draw, Circuit, Clbit, Qubit};
///
/// let mut c = Circuit::new(2, 1);
/// c.h(Qubit::new(0));
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.measure(Qubit::new(0), Clbit::new(0));
/// let art = draw::to_ascii(&c);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("H"));
/// assert!(art.contains("M0"));
/// ```
pub fn to_ascii(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    let cols = layers(circuit);
    // cell[q][col] = label; connector[q][col] = true when a vertical line
    // passes through row q in this column.
    let mut cell: Vec<Vec<String>> = vec![vec![String::new(); cols.len()]; n];
    let mut connect: Vec<Vec<bool>> = vec![vec![false; cols.len()]; n];

    for (col, instrs) in cols.iter().enumerate() {
        for &idx in instrs {
            let instr = &circuit.instructions()[idx];
            match instr.qubits.len() {
                1 => {
                    let q = instr.qubits[0].index();
                    cell[q][col] = label_1q(instr);
                }
                2 => {
                    let (a, b) = (instr.qubits[0].index(), instr.qubits[1].index());
                    let (la, lb) = label_2q(&instr.gate);
                    cell[a][col] = la;
                    cell[b][col] = lb;
                    for row in &mut connect[a.min(b) + 1..a.max(b)] {
                        row[col] = true;
                    }
                }
                _ => unreachable!("gates have 1 or 2 qubits"),
            }
        }
    }

    // Column widths.
    let width: Vec<usize> = (0..cols.len())
        .map(|c| (0..n).map(|q| cell[q][c].len()).max().unwrap_or(1).max(1))
        .collect();

    let mut out = String::new();
    let q_width = format!("q{}", n - 1).len();
    for q in 0..n {
        out.push_str(&format!("{:<qw$}: ", format!("q{q}"), qw = q_width));
        for c in 0..cols.len() {
            out.push('─');
            let label = if !cell[q][c].is_empty() {
                cell[q][c].clone()
            } else if connect[q][c] {
                "│".to_string()
            } else {
                "─".to_string()
            };
            // Pad with the wire character.
            let pad = width[c].saturating_sub(label.chars().count().min(width[c]));
            out.push_str(&label);
            for _ in 0..pad {
                out.push('─');
            }
            out.push('─');
        }
        out.push('\n');
    }
    out
}

fn label_1q(instr: &crate::circuit::Instruction) -> String {
    match instr.gate {
        Gate::Measure => format!("M{}", instr.clbit.expect("measure has a clbit").index()),
        Gate::Reset => "R".to_string(),
        ref g => {
            let base = g.name().to_uppercase();
            match instr.condition {
                Some(c) => format!("{base}?{}", c.index()),
                None => base,
            }
        }
    }
}

fn label_2q(gate: &Gate) -> (String, String) {
    match gate {
        Gate::Cx => ("●".to_string(), "X".to_string()),
        Gate::Cz => ("●".to_string(), "●".to_string()),
        Gate::Cp(_) => ("●".to_string(), "P".to_string()),
        Gate::Rzz(_) => ("Z".to_string(), "Z".to_string()),
        Gate::Swap => ("x".to_string(), "x".to_string()),
        g => (g.name().to_uppercase(), g.name().to_uppercase()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn renders_rows_per_qubit() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.cx(q(0), q(2));
        let art = to_ascii(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[2].starts_with("q2:"));
        // Control and target markers present; the middle row carries the
        // vertical connector.
        assert!(lines[0].contains('●'));
        assert!(lines[2].contains('X'));
        assert!(lines[1].contains('│'));
    }

    #[test]
    fn conditional_and_measure_labels() {
        let mut c = Circuit::new(1, 2);
        c.measure(q(0), Clbit::new(1));
        c.cond_x(q(0), Clbit::new(1));
        let art = to_ascii(&c);
        assert!(art.contains("M1"));
        assert!(art.contains("X?1"));
    }

    #[test]
    fn parallel_gates_share_column() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.x(q(1));
        let art = to_ascii(&c);
        // One layer only: each row has exactly one gate label.
        for line in art.lines() {
            let labels = line.matches(['H', 'X']).count();
            assert_eq!(labels, 1);
        }
    }

    #[test]
    fn empty_circuit() {
        assert_eq!(to_ascii(&Circuit::new(0, 0)), "");
        let art = to_ascii(&Circuit::new(2, 0));
        assert_eq!(art.lines().count(), 2);
    }

    #[test]
    fn swap_uses_x_marks() {
        let mut c = Circuit::new(2, 0);
        c.swap(q(0), q(1));
        let art = to_ascii(&c);
        assert_eq!(art.matches('x').count(), 2);
    }
}
