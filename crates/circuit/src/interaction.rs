//! The qubit interaction graph (`G_int` in the paper).
//!
//! Vertices are qubits; an edge joins two qubits that share at least one
//! two-qubit gate. Its shape drives two CaQR insights:
//!
//! * Reuse merges interaction-graph vertices, relieving coupling pressure —
//!   the BV star graph of Fig. 4(b) does not embed in a degree-3
//!   architecture until one reuse merges two leaves (Fig. 4(c)).
//! * For commuting-gate circuits, a proper coloring of `G_int` gives the
//!   minimum qubit count (§3.2.2).

use crate::circuit::{Circuit, Qubit};
use caqr_graph::Graph;

/// Builds the qubit interaction graph of `circuit`.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{interaction, Circuit, Qubit};
///
/// let mut c = Circuit::new(3, 0);
/// c.cx(Qubit::new(0), Qubit::new(2));
/// c.cx(Qubit::new(1), Qubit::new(2));
/// let g = interaction::interaction_graph(&c);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(2), 2);
/// ```
pub fn interaction_graph(circuit: &Circuit) -> Graph {
    let mut g = Graph::new(circuit.num_qubits());
    for instr in circuit {
        if let [a, b] = instr.qubits[..] {
            g.add_edge(a.index(), b.index());
        }
    }
    g
}

/// Number of two-qubit gates between each interacting pair, keyed `(u, v)`
/// with `u < v`. Useful for weighting routing decisions.
pub fn interaction_weights(circuit: &Circuit) -> std::collections::BTreeMap<(usize, usize), usize> {
    let mut w = std::collections::BTreeMap::new();
    for instr in circuit {
        if let [a, b] = instr.qubits[..] {
            let key = (a.index().min(b.index()), a.index().max(b.index()));
            *w.entry(key).or_insert(0) += 1;
        }
    }
    w
}

/// Returns `true` if `a` and `b` share at least one two-qubit gate — the
/// paper's Condition 1 test (a qubit cannot be reused by a qubit it
/// interacts with).
pub fn qubits_interact(circuit: &Circuit, a: Qubit, b: Qubit) -> bool {
    circuit
        .iter()
        .any(|instr| instr.is_two_qubit() && instr.uses_qubit(a) && instr.uses_qubit(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn bv_star_shape() {
        // 5-qubit BV: data qubits 0..4 each CX into target 4 -> star graph.
        let mut c = Circuit::new(5, 0);
        for i in 0..4 {
            c.cx(q(i), q(4));
        }
        let g = interaction_graph(&c);
        assert_eq!(g.degree(4), 4);
        assert_eq!(g.max_degree(), 4);
        for i in 0..4 {
            assert_eq!(g.degree(i), 1);
        }
    }

    #[test]
    fn repeated_gates_single_edge() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        c.cx(q(1), q(0));
        c.cz(q(0), q(1));
        let g = interaction_graph(&c);
        assert_eq!(g.num_edges(), 1);
        let w = interaction_weights(&c);
        assert_eq!(w[&(0, 1)], 3);
    }

    #[test]
    fn single_qubit_gates_ignored() {
        let mut c = Circuit::new(2, 2);
        c.h(q(0));
        c.measure_all();
        let g = interaction_graph(&c);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn condition1_check() {
        let mut c = Circuit::new(3, 0);
        c.cx(q(0), q(1));
        assert!(qubits_interact(&c, q(0), q(1)));
        assert!(qubits_interact(&c, q(1), q(0)));
        assert!(!qubits_interact(&c, q(0), q(2)));
    }
}
