//! Quantum circuit intermediate representation for the CaQR reproduction.
//!
//! This crate is the substrate every CaQR pass manipulates:
//!
//! * [`Gate`] / [`Instruction`] / [`Circuit`] — the IR itself, including the
//!   dynamic-circuit primitives the paper relies on: mid-circuit
//!   [`Gate::Measure`], [`Gate::Reset`], and classically-conditioned gates
//!   (the paper's "measurement + classical control" reset optimization,
//!   Fig. 2).
//! * [`dag`] — the gate-dependency DAG (`G_D` in the paper) with frontier
//!   iteration and critical-path analysis.
//! * [`depth`] — ASAP scheduling, logical depth and duration in `dt`.
//! * [`interaction`] — the qubit interaction graph (`G_int`), whose shape
//!   drives both the coloring bound and SWAP pressure (Figs. 4-5).
//! * [`commute`] — gate commutation rules, needed to recognize QAOA-style
//!   commuting-gate regions (§3.2.2).
//! * [`qasm`] — OpenQASM 2 (+ dynamic-circuit extensions) text export and a
//!   subset importer for round-trip testing.
//!
//! # Examples
//!
//! Build the 5-qubit Bernstein–Vazirani circuit from the paper's Fig. 1(a):
//!
//! ```
//! use caqr_circuit::{Circuit, Qubit};
//!
//! let mut c = Circuit::new(5, 5);
//! let target = Qubit::new(4);
//! for q in 0..4 {
//!     c.h(Qubit::new(q));
//! }
//! c.x(target);
//! c.h(target);
//! for q in 0..4 {
//!     c.cx(Qubit::new(q), target); // hidden string 1111
//!     c.h(Qubit::new(q));
//! }
//! for q in 0..4 {
//!     c.measure(Qubit::new(q), caqr_circuit::Clbit::new(q));
//! }
//! assert_eq!(c.num_qubits(), 5);
//! assert_eq!(c.two_qubit_gate_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commute;
pub mod dag;
pub mod depth;
pub mod draw;
pub mod fingerprint;
pub mod interaction;
pub mod optimize;
pub mod param;
pub mod parametric;
pub mod qasm;

mod circuit;
mod gate;

pub use circuit::{Circuit, Clbit, Instruction, Qubit};
pub use dag::CircuitDag;
pub use fingerprint::Fingerprint;
pub use gate::Gate;
pub use param::Param;
pub use parametric::ParametricCircuit;
