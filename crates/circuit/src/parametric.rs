//! The parametric-template IR: circuits with symbolic rotation slots and
//! the O(gates) bind step that stamps concrete angles in.
//!
//! A [`ParametricCircuit`] wraps an ordinary [`Circuit`] whose rotation
//! angles may be NaN-boxed [`Param::Slot`]s (see [`crate::param`]). The
//! whole compilation pipeline — layout, routing under any cost model,
//! reuse and measure/reset scheduling — is angle-independent, so a
//! template compiles exactly like a concrete circuit; binding the routed
//! artifact afterwards costs one linear walk. The template fingerprint
//! lives in its own domain (a tag is mixed into the hash), so a template
//! can never collide with a concrete circuit in a content-addressed
//! cache.

use crate::circuit::{Circuit, Instruction};
use crate::fingerprint::{Fingerprint, StableHasher};
use crate::gate::Gate;
use crate::param::Param;
use std::fmt;

/// Domain tag for template fingerprints. Concrete circuits hash without
/// any tag, so the two key populations are disjoint by construction.
const TEMPLATE_DOMAIN: &str = "caqr/parametric-template/v1";

/// A structural error in a would-be template.
#[derive(Debug, Clone, PartialEq)]
pub enum ParametricError {
    /// A gate angle is neither a finite value nor a well-formed slot.
    NonFiniteAngle {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A slot id is not below the declared slot count.
    SlotOutOfRange {
        /// Index of the offending instruction.
        index: usize,
        /// The out-of-range slot id.
        slot: u32,
        /// The declared slot count.
        num_slots: u32,
    },
}

impl fmt::Display for ParametricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParametricError::NonFiniteAngle { index } => {
                write!(f, "instruction {index}: non-finite concrete angle")
            }
            ParametricError::SlotOutOfRange {
                index,
                slot,
                num_slots,
            } => write!(
                f,
                "instruction {index}: slot ${slot} out of range (template declares {num_slots})"
            ),
        }
    }
}

impl std::error::Error for ParametricError {}

/// An error from [`ParametricCircuit::bind`].
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    /// The value vector length does not match the slot count.
    ArityMismatch {
        /// Slots the template declares.
        expected: u32,
        /// Values supplied.
        got: usize,
    },
    /// A supplied value is NaN or infinite.
    NonFiniteValue {
        /// The slot the bad value was destined for.
        slot: u32,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "template has {expected} slots but {got} values were supplied"
                )
            }
            BindError::NonFiniteValue { slot } => {
                write!(f, "value for slot ${slot} is not finite")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// A compile-once circuit template with `num_slots` symbolic angles.
///
/// Deliberately not `PartialEq`: slot angles are NaN-boxed, so derived
/// float equality would report a template unequal to itself. Compare
/// [`ParametricCircuit::template_fingerprint`]s instead — they hash IEEE
/// bit patterns exactly.
#[derive(Debug, Clone)]
pub struct ParametricCircuit {
    circuit: Circuit,
    num_slots: u32,
}

impl ParametricCircuit {
    /// Wraps `circuit` as a template with `num_slots` slots, validating
    /// that every angle is either finite or a slot below `num_slots`.
    ///
    /// # Errors
    ///
    /// [`ParametricError`] when an angle is non-finite without being a
    /// well-formed slot, or references a slot `>= num_slots`.
    pub fn new(circuit: Circuit, num_slots: u32) -> Result<Self, ParametricError> {
        validate_angles(&circuit, num_slots)?;
        Ok(ParametricCircuit { circuit, num_slots })
    }

    /// The underlying circuit (slot angles are NaN-boxed raws).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The number of symbolic slots the template declares.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Unwraps the template into its raw circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }

    /// The template's cache key: structure + slot ids, hashed in a domain
    /// disjoint from concrete-circuit fingerprints.
    pub fn template_fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str(TEMPLATE_DOMAIN);
        h.write_u32(self.num_slots);
        h.finish().combine(self.circuit.fingerprint())
    }

    /// Stamps `values` into every slot, producing a fully concrete
    /// circuit in one O(gates) walk.
    ///
    /// # Errors
    ///
    /// [`BindError`] when `values.len() != num_slots` or any value is
    /// non-finite.
    pub fn bind(&self, values: &[f64]) -> Result<Circuit, BindError> {
        bind_circuit(&self.circuit, self.num_slots, values)
    }

    /// Lifts every rotation angle of a concrete circuit into a fresh
    /// slot, returning the template and the value vector that binds it
    /// back to the original. `bind(&values)` is the exact inverse:
    /// the result is bit-identical to `circuit`.
    pub fn parametrize(circuit: &Circuit) -> (ParametricCircuit, Vec<f64>) {
        let mut values = Vec::new();
        let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
        for instr in circuit {
            let gate = match instr.gate.param() {
                Some(Param::Val(v)) => {
                    let slot = values.len() as u32;
                    values.push(v);
                    instr
                        .gate
                        .with_angle(Param::Slot(slot).to_raw())
                        .expect("param() implies with_angle()")
                }
                _ => instr.gate,
            };
            out.push(Instruction {
                gate,
                ..instr.clone()
            });
        }
        let num_slots = values.len() as u32;
        (
            ParametricCircuit {
                circuit: out,
                num_slots,
            },
            values,
        )
    }
}

/// Stamps `values` into the slot angles of any circuit (typically a
/// routed template artifact) in one O(gates) walk.
///
/// # Errors
///
/// [`BindError`] on arity mismatch or non-finite values.
pub fn bind_circuit(
    circuit: &Circuit,
    num_slots: u32,
    values: &[f64],
) -> Result<Circuit, BindError> {
    if values.len() != num_slots as usize {
        return Err(BindError::ArityMismatch {
            expected: num_slots,
            got: values.len(),
        });
    }
    if let Some(slot) = values.iter().position(|v| !v.is_finite()) {
        return Err(BindError::NonFiniteValue { slot: slot as u32 });
    }
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit {
        let gate = match instr.gate.param() {
            Some(Param::Slot(id)) => {
                // Validated at construction: every slot is < num_slots.
                let gate = instr.gate.with_angle(values[id as usize]);
                gate.expect("param() implies with_angle()")
            }
            _ => instr.gate,
        };
        out.push(Instruction {
            gate,
            ..instr.clone()
        });
    }
    Ok(out)
}

/// Checks that every angle in `circuit` is finite or a slot below
/// `num_slots`. The generic `U(θ,φ,λ)` gate admits no slots — all three
/// angles must be finite.
///
/// # Errors
///
/// The first [`ParametricError`] encountered, in instruction order.
pub fn validate_angles(circuit: &Circuit, num_slots: u32) -> Result<(), ParametricError> {
    for (index, instr) in circuit.iter().enumerate() {
        if let Gate::U(t, p, l) = instr.gate {
            if !(t.is_finite() && p.is_finite() && l.is_finite()) {
                return Err(ParametricError::NonFiniteAngle { index });
            }
            continue;
        }
        match instr.gate.param() {
            Some(Param::Slot(slot)) if slot >= num_slots => {
                return Err(ParametricError::SlotOutOfRange {
                    index,
                    slot,
                    num_slots,
                });
            }
            Some(Param::Val(v)) if !v.is_finite() => {
                return Err(ParametricError::NonFiniteAngle { index });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Returns `true` when any angle in `circuit` is a symbolic slot.
pub fn has_slots(circuit: &Circuit) -> bool {
    circuit
        .iter()
        .any(|i| i.gate.param().is_some_and(Param::is_slot))
}

/// The sorted multiset of slot ids used by `circuit`. Passes must
/// preserve this exactly: reuse, routing, and scheduling may reorder or
/// duplicate-free-insert gates, but never invent or drop a rotation.
pub fn slot_census(circuit: &Circuit) -> Vec<u32> {
    let mut ids: Vec<u32> = circuit
        .iter()
        .filter_map(|i| i.gate.param().and_then(Param::slot))
        .collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Qubit;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn template() -> ParametricCircuit {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.rzz(Param::Slot(0).to_raw(), q(0), q(1));
        c.rx(Param::Slot(1).to_raw(), q(1));
        c.rz(0.25, q(0));
        ParametricCircuit::new(c, 2).expect("valid template")
    }

    #[test]
    fn bind_stamps_values_and_preserves_everything_else() {
        let t = template();
        let bound = t.bind(&[0.4, -1.1]).unwrap();
        assert_eq!(bound.len(), 4);
        assert_eq!(bound.instructions()[1].gate, Gate::Rzz(0.4));
        assert_eq!(bound.instructions()[2].gate, Gate::Rx(-1.1));
        assert_eq!(bound.instructions()[3].gate, Gate::Rz(0.25));
        assert!(!has_slots(&bound));
    }

    #[test]
    fn bind_checks_arity_and_finiteness() {
        let t = template();
        assert_eq!(
            t.bind(&[0.4]),
            Err(BindError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            t.bind(&[0.4, f64::NAN]),
            Err(BindError::NonFiniteValue { slot: 1 })
        );
    }

    #[test]
    fn construction_rejects_bad_angles() {
        let mut c = Circuit::new(1, 0);
        c.rx(Param::Slot(5).to_raw(), q(0));
        assert_eq!(
            ParametricCircuit::new(c, 2).unwrap_err(),
            ParametricError::SlotOutOfRange {
                index: 0,
                slot: 5,
                num_slots: 2
            }
        );
        let mut c = Circuit::new(1, 0);
        c.rx(f64::NAN, q(0));
        assert_eq!(
            ParametricCircuit::new(c, 0).unwrap_err(),
            ParametricError::NonFiniteAngle { index: 0 }
        );
        let mut c = Circuit::new(1, 0);
        c.push_gate(Gate::U(0.1, f64::INFINITY, 0.2), &[q(0)]);
        assert!(ParametricCircuit::new(c, 0).is_err());
    }

    #[test]
    fn parametrize_then_bind_is_the_identity() {
        let mut c = Circuit::new(3, 1);
        c.h(q(0));
        c.rz(0.3, q(0));
        c.rzz(1.25, q(0), q(1));
        c.cp(-0.5, q(1), q(2));
        c.measure(q(2), crate::circuit::Clbit::new(0));
        let (t, values) = ParametricCircuit::parametrize(&c);
        assert_eq!(t.num_slots(), 3);
        assert_eq!(values, vec![0.3, 1.25, -0.5]);
        let bound = t.bind(&values).unwrap();
        assert_eq!(bound, c);
        assert_eq!(bound.fingerprint(), c.fingerprint());
    }

    #[test]
    fn template_fingerprint_is_domain_separated() {
        let c = {
            let mut c = Circuit::new(1, 0);
            c.rx(0.5, q(0));
            c
        };
        let (t, _) = ParametricCircuit::parametrize(&c);
        assert_ne!(t.template_fingerprint(), c.fingerprint());
        assert_ne!(t.template_fingerprint(), t.circuit().fingerprint());
        // Slot ids participate: same structure, different slot wiring.
        let mut a = Circuit::new(1, 0);
        a.rx(Param::Slot(0).to_raw(), q(0));
        a.ry(Param::Slot(1).to_raw(), q(0));
        let mut b = Circuit::new(1, 0);
        b.rx(Param::Slot(1).to_raw(), q(0));
        b.ry(Param::Slot(0).to_raw(), q(0));
        let ta = ParametricCircuit::new(a, 2).unwrap();
        let tb = ParametricCircuit::new(b, 2).unwrap();
        assert_ne!(ta.template_fingerprint(), tb.template_fingerprint());
    }

    #[test]
    fn census_and_has_slots() {
        let t = template();
        assert!(has_slots(t.circuit()));
        assert_eq!(slot_census(t.circuit()), vec![0, 1]);
        let bound = t.bind(&[0.1, 0.2]).unwrap();
        assert!(slot_census(&bound).is_empty());
    }
}
