//! ASAP scheduling: logical depth layers and circuit duration in `dt`.
//!
//! The paper reports two cost metrics per compiled circuit: *depth* (gate
//! layers) and *duration* (system cycles, `1 dt = 0.22 ns`), computed from
//! per-gate durations. Both are longest-path computations over the
//! dependency DAG; this module wraps them in a reusable [`Schedule`].

use crate::circuit::{Circuit, Instruction};
use crate::dag::CircuitDag;

/// A function assigning a duration in `dt` to each instruction.
pub trait DurationModel {
    /// Duration of `instr` in `dt` (must be >= 1 for scheduling to make
    /// progress).
    fn duration(&self, instr: &Instruction) -> u64;
}

impl<F: Fn(&Instruction) -> u64> DurationModel for F {
    fn duration(&self, instr: &Instruction) -> u64 {
        self(instr)
    }
}

/// Uniform unit durations: duration equals logical depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitDurations;

impl DurationModel for UnitDurations {
    fn duration(&self, _instr: &Instruction) -> u64 {
        1
    }
}

/// An ASAP schedule of a circuit.
#[derive(Debug, Clone)]
pub struct Schedule {
    start: Vec<u64>,
    finish: Vec<u64>,
    makespan: u64,
}

impl Schedule {
    /// Schedules `circuit` as-soon-as-possible under `durations`.
    ///
    /// # Panics
    ///
    /// Panics if any duration is zero.
    pub fn asap(circuit: &Circuit, durations: &impl DurationModel) -> Self {
        let dag = CircuitDag::of(circuit);
        Self::asap_with_dag(circuit, &dag, durations)
    }

    /// Like [`Schedule::asap`] but reuses an existing DAG.
    ///
    /// # Panics
    ///
    /// Panics if `dag` was not built from `circuit` or any duration is zero.
    pub fn asap_with_dag(
        circuit: &Circuit,
        dag: &CircuitDag,
        durations: &impl DurationModel,
    ) -> Self {
        assert_eq!(dag.len(), circuit.len(), "DAG does not match circuit");
        let weights: Vec<u64> = circuit
            .iter()
            .map(|i| {
                let d = durations.duration(i);
                assert!(d > 0, "instruction duration must be positive");
                d
            })
            .collect();
        let finish = dag.longest_path_to(&weights);
        let start: Vec<u64> = finish.iter().zip(&weights).map(|(f, w)| f - w).collect();
        let makespan = finish.iter().copied().max().unwrap_or(0);
        Schedule {
            start,
            finish,
            makespan,
        }
    }

    /// Schedules `circuit` as-late-as-possible: every instruction is
    /// pushed toward the end without extending the ASAP makespan. The
    /// difference between ALAP and ASAP start times is an instruction's
    /// *slack* — SR-CaQR delays exactly the gates with positive slack.
    ///
    /// # Panics
    ///
    /// Panics if any duration is zero.
    pub fn alap(circuit: &Circuit, durations: &impl DurationModel) -> Self {
        let dag = CircuitDag::of(circuit);
        let weights: Vec<u64> = circuit
            .iter()
            .map(|i| {
                let d = durations.duration(i);
                assert!(d > 0, "instruction duration must be positive");
                d
            })
            .collect();
        let makespan = dag.weighted_critical_path(&weights);
        // Longest path from each node (inclusive) gives its latest finish.
        let from = dag.longest_path_from(&weights);
        let finish: Vec<u64> = from
            .iter()
            .zip(&weights)
            .map(|(f, w)| makespan - (f - w))
            .collect();
        let start: Vec<u64> = finish.iter().zip(&weights).map(|(f, w)| f - w).collect();
        Schedule {
            start,
            finish,
            makespan,
        }
    }

    /// Start time of instruction `idx`.
    pub fn start(&self, idx: usize) -> u64 {
        self.start[idx]
    }

    /// Finish time of instruction `idx`.
    pub fn finish(&self, idx: usize) -> u64 {
        self.finish[idx]
    }

    /// Total circuit duration (the makespan).
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// The number of scheduled instructions.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Returns `true` if nothing was scheduled.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }
}

/// Circuit duration in `dt` under a duration model (convenience wrapper).
pub fn duration_dt(circuit: &Circuit, durations: &impl DurationModel) -> u64 {
    Schedule::asap(circuit, durations).makespan()
}

/// Groups instruction indices into ASAP layers under unit durations:
/// `layers()[k]` executes at logical time step `k`.
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let schedule = Schedule::asap(circuit, &UnitDurations);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); schedule.makespan() as usize];
    for idx in 0..schedule.len() {
        out[schedule.start(idx) as usize].push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn unit_schedule_matches_depth() {
        let mut c = Circuit::new(3, 3);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.cx(q(1), q(2));
        c.measure_all();
        let s = Schedule::asap(&c, &UnitDurations);
        assert_eq!(s.makespan() as usize, c.depth());
    }

    #[test]
    fn weighted_schedule() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0)); // 50 dt
        c.cx(q(0), q(1)); // 300 dt
        let model = |i: &Instruction| -> u64 {
            if i.is_two_qubit() {
                300
            } else {
                50
            }
        };
        let s = Schedule::asap(&c, &model);
        assert_eq!(s.start(0), 0);
        assert_eq!(s.finish(0), 50);
        assert_eq!(s.start(1), 50);
        assert_eq!(s.makespan(), 350);
        assert_eq!(duration_dt(&c, &model), 350);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.h(q(1));
        let s = Schedule::asap(&c, &UnitDurations);
        assert_eq!(s.start(0), 0);
        assert_eq!(s.start(1), 0);
        assert_eq!(s.makespan(), 1);
    }

    #[test]
    fn layers_partition_instructions() {
        let mut c = Circuit::new(3, 0);
        c.h(q(0));
        c.h(q(1));
        c.cx(q(0), q(1));
        c.h(q(2));
        let ls = layers(&c);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0], vec![0, 1, 3]);
        assert_eq!(ls[1], vec![2]);
    }

    #[test]
    fn conditional_reset_serializes_in_time() {
        let mut c = Circuit::new(1, 1);
        c.measure(q(0), Clbit::new(0));
        c.cond_x(q(0), Clbit::new(0));
        let model = |i: &Instruction| -> u64 {
            match i.gate {
                crate::Gate::Measure => 1000,
                _ => 60,
            }
        };
        let s = Schedule::asap(&c, &model);
        assert_eq!(s.start(1), 1000);
        assert_eq!(s.makespan(), 1060);
    }

    #[test]
    fn alap_pushes_slack_late() {
        // q1's H has slack: ASAP runs it at t=0, ALAP right before the CX.
        let mut c = Circuit::new(2, 0);
        c.h(q(0)); // 0
        c.h(q(0)); // 1
        c.h(q(1)); // 2 (slack 1)
        c.cx(q(0), q(1)); // 3
        let asap = Schedule::asap(&c, &UnitDurations);
        let alap = Schedule::alap(&c, &UnitDurations);
        assert_eq!(asap.makespan(), alap.makespan());
        assert_eq!(asap.start(2), 0);
        assert_eq!(alap.start(2), 1);
        // Critical-path instructions have no slack.
        for idx in [0usize, 1, 3] {
            assert_eq!(asap.start(idx), alap.start(idx), "instr {idx}");
        }
    }

    #[test]
    fn alap_respects_dependencies() {
        let mut c = Circuit::new(2, 2);
        c.h(q(0));
        c.cx(q(0), q(1));
        c.measure_all();
        let alap = Schedule::alap(&c, &UnitDurations);
        // Every instruction still starts after its predecessors finish.
        let dag = crate::dag::CircuitDag::of(&c);
        for v in 0..c.len() {
            for p in dag.graph().predecessors(v) {
                assert!(alap.start(v) >= alap.finish(p));
            }
        }
    }

    #[test]
    fn empty_circuit_zero_makespan() {
        let s = Schedule::asap(&Circuit::new(2, 0), &UnitDurations);
        assert!(s.is_empty());
        assert_eq!(s.makespan(), 0);
        assert!(layers(&Circuit::new(2, 0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let mut c = Circuit::new(1, 0);
        c.h(q(0));
        let _ = Schedule::asap(&c, &|_: &Instruction| 0u64);
    }
}
