//! Peephole circuit optimization: adjacent inverse-pair cancellation and
//! rotation merging.
//!
//! Runs before reuse analysis / routing, shrinking gate count without
//! changing semantics — smaller circuits mean fewer error events and more
//! reuse headroom. The pass is wire-local and conservative: only gates
//! that are provably adjacent on *all* their wires are considered, and
//! non-unitary operations (measure, reset, conditionals) act as barriers.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// Repeatedly cancels adjacent inverse pairs and merges adjacent
/// same-axis rotations until a fixed point.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{optimize, Circuit, Qubit};
///
/// let mut c = Circuit::new(2, 0);
/// c.h(Qubit::new(0));
/// c.h(Qubit::new(0));          // cancels
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.cx(Qubit::new(0), Qubit::new(1)); // cancels
/// c.rz(0.3, Qubit::new(1));
/// c.rz(0.4, Qubit::new(1));    // merges into rz(0.7)
/// let opt = optimize::peephole(&c);
/// assert_eq!(opt.len(), 1);
/// ```
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let (next, changed) = pass(&current);
        current = next;
        if !changed {
            return current;
        }
    }
}

/// One left-to-right pass. Returns the rewritten circuit and whether
/// anything changed.
fn pass(circuit: &Circuit) -> (Circuit, bool) {
    let n = circuit.num_qubits();
    // Slot per emitted instruction; None = cancelled.
    let mut slots: Vec<Option<Instruction>> = Vec::with_capacity(circuit.len());
    // Last live slot on each wire, if its instruction is still eligible.
    let mut last: Vec<Option<usize>> = vec![None; n];
    let mut changed = false;

    for instr in circuit {
        let wires: Vec<usize> = instr.qubits.iter().map(|q| q.index()).collect();
        let barrier = instr.gate.is_non_unitary() || instr.condition.is_some();
        if !barrier {
            // All wires must point at the same previous slot, and that slot
            // must cover exactly these wires in the same operand order for
            // direction-sensitive gates.
            let prev = wires
                .iter()
                .map(|&w| last[w])
                .reduce(|a, b| if a == b { a } else { None })
                .flatten();
            if let Some(pi) = prev {
                if let Some(prev_instr) = slots[pi].clone() {
                    let same_operands = prev_instr.qubits == instr.qubits;
                    let symmetric_match =
                        instr.gate.is_symmetric() && prev_instr.gate.is_symmetric() && {
                            let mut a = prev_instr.qubits.clone();
                            let mut b = instr.qubits.clone();
                            a.sort();
                            b.sort();
                            a == b
                        };
                    if same_operands || symmetric_match {
                        if let Some(rewritten) =
                            combine(&prev_instr.gate, &instr.gate, same_operands)
                        {
                            changed = true;
                            match rewritten {
                                None => {
                                    // Full cancellation.
                                    slots[pi] = None;
                                    for &w in &wires {
                                        last[w] = None;
                                    }
                                }
                                Some(gate) => {
                                    slots[pi] = Some(Instruction { gate, ..prev_instr });
                                }
                            }
                            continue;
                        }
                    }
                }
            }
        }
        let idx = slots.len();
        slots.push(Some(instr.clone()));
        for &w in &wires {
            last[w] = if barrier { None } else { Some(idx) };
        }
        // Classical wires are barriers for everything they touch... qubit
        // wires of a measure were reset above via `barrier`.
        let _ = barrier;
    }

    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    for slot in slots.into_iter().flatten() {
        out.push(slot);
    }
    (out, changed)
}

/// Tries to combine `first` then `second` on identical operands.
/// `Some(None)` = the pair cancels; `Some(Some(g))` = replace with `g`;
/// `None` = no rule applies. `same_order` distinguishes CX(a,b)+CX(a,b)
/// (cancels) from CX(a,b)+CX(b,a) (does not).
fn combine(first: &Gate, second: &Gate, same_order: bool) -> Option<Option<Gate>> {
    const EPS: f64 = 1e-12;
    // Symbolic slot angles (NaN-boxed, see `param`) admit no arithmetic:
    // `a + b` would silently propagate a corrupted NaN payload, and the
    // identity test below can never hold for them. Refuse to rewrite.
    let symbolic = |g: &Gate| g.param().is_some_and(|p| p.is_slot());
    if symbolic(first) || symbolic(second) {
        return None;
    }
    let cancels = |g: Option<Gate>| -> Option<Option<Gate>> { Some(g) };
    match (first, second) {
        // Self-inverse pairs.
        (Gate::H, Gate::H) | (Gate::X, Gate::X) | (Gate::Y, Gate::Y) | (Gate::Z, Gate::Z) => {
            cancels(None)
        }
        (Gate::Cz, Gate::Cz) | (Gate::Swap, Gate::Swap) => cancels(None),
        (Gate::Cx, Gate::Cx) if same_order => cancels(None),
        // Inverse pairs.
        (Gate::S, Gate::Sdg)
        | (Gate::Sdg, Gate::S)
        | (Gate::T, Gate::Tdg)
        | (Gate::Tdg, Gate::T) => cancels(None),
        // Rotation merging (same axis).
        (Gate::Rx(a), Gate::Rx(b)) => merged(Gate::Rx(a + b), (a + b).abs() < EPS),
        (Gate::Ry(a), Gate::Ry(b)) => merged(Gate::Ry(a + b), (a + b).abs() < EPS),
        (Gate::Rz(a), Gate::Rz(b)) => merged(Gate::Rz(a + b), (a + b).abs() < EPS),
        (Gate::Phase(a), Gate::Phase(b)) => merged(Gate::Phase(a + b), (a + b).abs() < EPS),
        (Gate::Cp(a), Gate::Cp(b)) => merged(Gate::Cp(a + b), (a + b).abs() < EPS),
        (Gate::Rzz(a), Gate::Rzz(b)) => merged(Gate::Rzz(a + b), (a + b).abs() < EPS),
        // S·S = Z, T·T = S (common peepholes).
        (Gate::S, Gate::S) => cancels(Some(Gate::Z)),
        (Gate::Sdg, Gate::Sdg) => cancels(Some(Gate::Z)),
        (Gate::T, Gate::T) => cancels(Some(Gate::S)),
        (Gate::Tdg, Gate::Tdg) => cancels(Some(Gate::Sdg)),
        _ => None,
    }
}

fn merged(gate: Gate, is_identity: bool) -> Option<Option<Gate>> {
    Some(if is_identity { None } else { Some(gate) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Clbit, Qubit};

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn adjacent_h_pairs_cancel() {
        let mut c = Circuit::new(1, 0);
        c.h(q(0));
        c.h(q(0));
        assert!(peephole(&c).is_empty());
        // Triple H leaves one.
        c.h(q(0));
        assert_eq!(peephole(&c).len(), 1);
    }

    #[test]
    fn cx_direction_matters() {
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        c.cx(q(0), q(1));
        assert!(peephole(&c).is_empty());
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        c.cx(q(1), q(0));
        assert_eq!(peephole(&c).len(), 2);
    }

    #[test]
    fn symmetric_gates_cancel_in_either_order() {
        let mut c = Circuit::new(2, 0);
        c.cz(q(0), q(1));
        c.cz(q(1), q(0));
        assert!(peephole(&c).is_empty());
        let mut c = Circuit::new(2, 0);
        c.rzz(0.4, q(0), q(1));
        c.rzz(-0.4, q(1), q(0));
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn rotations_merge() {
        let mut c = Circuit::new(1, 0);
        c.rz(0.3, q(0));
        c.rz(0.4, q(0));
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        match opt.instructions()[0].gate {
            Gate::Rz(a) => assert!((a - 0.7).abs() < 1e-12),
            ref g => panic!("expected rz, got {g}"),
        }
        // Opposite angles vanish entirely.
        let mut c = Circuit::new(1, 0);
        c.rx(0.9, q(0));
        c.rx(-0.9, q(0));
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn t_pairs_promote() {
        let mut c = Circuit::new(1, 0);
        c.t(q(0));
        c.t(q(0));
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::S);
        // Four Ts = Z (via two Ss).
        let mut c = Circuit::new(1, 0);
        for _ in 0..4 {
            c.t(q(0));
        }
        let opt = peephole(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate, Gate::Z);
    }

    #[test]
    fn interposed_gate_blocks_cancellation() {
        let mut c = Circuit::new(2, 0);
        c.h(q(0));
        c.cx(q(0), q(1)); // touches wire 0 between the Hs
        c.h(q(0));
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn measurement_is_a_barrier() {
        let mut c = Circuit::new(1, 1);
        c.h(q(0));
        c.measure(q(0), Clbit::new(0));
        c.h(q(0));
        assert_eq!(peephole(&c).len(), 3);
        // Conditionals too.
        let mut c = Circuit::new(1, 1);
        c.x(q(0));
        c.cond_x(q(0), Clbit::new(0));
        c.x(q(0));
        assert_eq!(peephole(&c).len(), 3);
    }

    #[test]
    fn symbolic_rotations_never_merge() {
        use crate::param::Param;
        // Two same-axis rotations on one wire would merge if concrete;
        // with slot angles the pair must survive untouched — there is no
        // representation for "slot 0 + slot 1".
        let s0 = Param::Slot(0).to_raw();
        let s1 = Param::Slot(1).to_raw();
        let mut c = Circuit::new(1, 0);
        c.rz(s0, q(0));
        c.rz(s1, q(0));
        let opt = peephole(&c);
        assert_eq!(opt.len(), 2);
        assert_eq!(
            opt.instructions()[0].gate.param(),
            Some(crate::param::Param::Slot(0))
        );
        // Mixed concrete + slot also refuses.
        let mut c = Circuit::new(1, 0);
        c.rx(0.4, q(0));
        c.rx(s0, q(0));
        assert_eq!(peephole(&c).len(), 2);
        // Concrete rewrites still fire around symbolic ones.
        let mut c = Circuit::new(1, 0);
        c.rz(s0, q(0));
        c.h(q(0));
        c.h(q(0));
        assert_eq!(peephole(&c).len(), 1);
    }

    #[test]
    fn chains_collapse_to_fixpoint() {
        // cx (h h) cx: inner pair cancels, outer pair becomes adjacent.
        let mut c = Circuit::new(2, 0);
        c.cx(q(0), q(1));
        c.h(q(0));
        c.h(q(0));
        c.cx(q(0), q(1));
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn distribution_preserved() {
        // Semantics check on a circuit with several rewrite opportunities.
        let mut c = Circuit::new(3, 3);
        c.h(q(0));
        c.t(q(1));
        c.t(q(1));
        c.cx(q(0), q(1));
        c.rz(0.5, q(2));
        c.rz(-0.2, q(2));
        c.h(q(2));
        c.cz(q(1), q(2));
        c.cz(q(2), q(1));
        c.measure_all();
        let opt = peephole(&c);
        assert!(opt.len() < c.len());
        // Compare structure-independent invariants here; full distribution
        // equality is covered by the cross-crate integration test.
        assert_eq!(opt.num_qubits(), 3);
        assert_eq!(opt.count_gates(|g| matches!(g, Gate::Measure)), 3);
    }
}
