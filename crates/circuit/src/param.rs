//! Symbolic rotation parameters, NaN-boxed into the IR's `f64` angles.
//!
//! A parametric template is an ordinary [`Circuit`](crate::Circuit) whose
//! rotation angles may be *slots* — placeholders bound to concrete values
//! after compilation. Rather than widening every `Gate` variant (and the
//! dozens of call sites that pattern-match `Gate::Rx(f64)`), a slot is
//! encoded **inside** the `f64` itself as a quiet NaN with a recognizable
//! payload: the high 32 bits carry a magic tag, the low 32 bits the slot
//! id. Every pass, analysis, router, and scheduler that treats angles as
//! opaque payload (which is all of them — layout, routing, and reuse are
//! angle-independent) runs unchanged on a template.
//!
//! The encoding is safe because:
//!
//! * No real rotation angle is NaN — the wire codec and the QASM importer
//!   both reject non-finite angles, so the payload space is private.
//! * The pipeline never does arithmetic on angles except the peephole
//!   rotation merge, which explicitly refuses slot operands (see
//!   `optimize::combine`), and `Gate::inverse`, which returns `None` for
//!   slot-valued rotations (negating a NaN flips its sign bit and would
//!   silently corrupt the payload).
//! * Fingerprints hash IEEE bit patterns, so slot ids hash exactly like
//!   the distinct, deterministic values they are.

use std::fmt;

/// High-32-bit tag marking a NaN-boxed slot: a quiet NaN (`0x7FF8…`) with
/// a payload prefix (`5107`) no arithmetic result produces on its own.
const SLOT_MAGIC: u64 = 0x7FF8_5107_0000_0000;
/// Mask selecting the bits that must equal [`SLOT_MAGIC`].
const SLOT_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// A rotation parameter: either a concrete angle or a symbolic slot.
///
/// # Examples
///
/// ```
/// use caqr_circuit::Param;
///
/// let theta = Param::Slot(3);
/// let raw = theta.to_raw();          // rides any f64 angle field
/// assert!(raw.is_nan());
/// assert_eq!(Param::from_raw(raw), Param::Slot(3));
/// assert_eq!(Param::from_raw(1.5), Param::Val(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// A concrete angle in radians.
    Val(f64),
    /// A symbolic slot, bound to `values[id]` at bind time.
    Slot(u32),
}

impl Param {
    /// Decodes a raw angle: slot-tagged NaNs become [`Param::Slot`],
    /// everything else (including ordinary NaNs) is [`Param::Val`].
    pub fn from_raw(raw: f64) -> Param {
        let bits = raw.to_bits();
        if bits & SLOT_MASK == SLOT_MAGIC {
            Param::Slot(bits as u32)
        } else {
            Param::Val(raw)
        }
    }

    /// Encodes the parameter as the raw `f64` the IR stores.
    pub fn to_raw(self) -> f64 {
        match self {
            Param::Val(v) => v,
            Param::Slot(id) => f64::from_bits(SLOT_MAGIC | id as u64),
        }
    }

    /// Returns `true` for [`Param::Slot`].
    pub fn is_slot(self) -> bool {
        matches!(self, Param::Slot(_))
    }

    /// The slot id, if symbolic.
    pub fn slot(self) -> Option<u32> {
        match self {
            Param::Slot(id) => Some(id),
            Param::Val(_) => None,
        }
    }

    /// The concrete angle, if bound.
    pub fn value(self) -> Option<f64> {
        match self {
            Param::Val(v) => Some(v),
            Param::Slot(_) => None,
        }
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Param::Val(v) => write!(f, "{v:.6}"),
            Param::Slot(id) => write!(f, "${id}"),
        }
    }
}

/// Returns `true` when a raw angle carries a slot tag.
pub fn raw_is_slot(raw: f64) -> bool {
    raw.to_bits() & SLOT_MASK == SLOT_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_slot_shape() {
        for id in [0u32, 1, 7, 0xFFFF_FFFF] {
            let p = Param::Slot(id);
            assert!(p.to_raw().is_nan());
            assert_eq!(Param::from_raw(p.to_raw()), p);
            assert!(raw_is_slot(p.to_raw()));
            assert_eq!(p.slot(), Some(id));
            assert_eq!(p.value(), None);
        }
    }

    #[test]
    fn concrete_values_stay_concrete() {
        for v in [0.0, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -3.25] {
            assert_eq!(Param::from_raw(v), Param::Val(v));
            assert!(!raw_is_slot(v));
        }
        // An ordinary NaN is not a slot: the payload prefix is private.
        assert_eq!(Param::from_raw(f64::NAN).slot(), None);
        assert!(!raw_is_slot(f64::NAN));
        assert!(!raw_is_slot(f64::INFINITY));
        assert!(!raw_is_slot(f64::NEG_INFINITY));
    }

    #[test]
    fn negating_a_slot_breaks_the_tag() {
        // The sign bit is part of the mask, so `-raw` is NOT a slot — this
        // is why `Gate::inverse` must refuse symbolic rotations instead of
        // negating them.
        let raw = Param::Slot(9).to_raw();
        assert!(!raw_is_slot(-raw));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Param::Slot(3)), "$3");
        assert_eq!(format!("{}", Param::Val(1.5)), "1.500000");
    }
}
