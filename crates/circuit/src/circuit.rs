//! Circuits, instructions, and the qubit/clbit index newtypes.

use crate::fingerprint::{Fingerprint, StableHasher};
use crate::gate::Gate;
use std::fmt;

/// A logical or physical qubit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(u32);

impl Qubit {
    /// Wraps a qubit index.
    pub fn new(index: usize) -> Self {
        Qubit(u32::try_from(index).expect("qubit index fits in u32"))
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit::new(i)
    }
}

/// A classical bit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clbit(u32);

impl Clbit {
    /// Wraps a classical bit index.
    pub fn new(index: usize) -> Self {
        Clbit(u32::try_from(index).expect("clbit index fits in u32"))
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Clbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for Clbit {
    fn from(i: usize) -> Self {
        Clbit::new(i)
    }
}

/// One operation in a circuit: a gate, its qubit operands, an optional
/// classical destination (for `Measure`), and an optional classical
/// condition (`if (c == 1)`), which is how the paper's fast conditional
/// reset is expressed.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub gate: Gate,
    /// Operand qubits; length must equal `gate.num_qubits()`.
    pub qubits: Vec<Qubit>,
    /// Classical bit written by `Measure`.
    pub clbit: Option<Clbit>,
    /// Classical bit conditioning the gate: it only executes when the bit
    /// is 1.
    pub condition: Option<Clbit>,
}

impl Instruction {
    /// A plain unconditioned gate application.
    ///
    /// # Panics
    ///
    /// Panics if the qubit count does not match the gate arity or operands
    /// repeat.
    pub fn gate(gate: Gate, qubits: Vec<Qubit>) -> Self {
        let instr = Instruction {
            gate,
            qubits,
            clbit: None,
            condition: None,
        };
        instr.validate();
        instr
    }

    fn validate(&self) {
        assert_eq!(
            self.qubits.len(),
            self.gate.num_qubits(),
            "{} expects {} qubit(s), got {}",
            self.gate,
            self.gate.num_qubits(),
            self.qubits.len()
        );
        if self.qubits.len() == 2 {
            assert_ne!(
                self.qubits[0], self.qubits[1],
                "two-qubit gate operands must differ"
            );
        }
        if self.gate == Gate::Measure {
            assert!(self.clbit.is_some(), "measure requires a classical bit");
        }
    }

    /// Returns `true` if this instruction touches `q`.
    pub fn uses_qubit(&self, q: Qubit) -> bool {
        self.qubits.contains(&q)
    }

    /// Returns `true` for two-qubit instructions.
    pub fn is_two_qubit(&self) -> bool {
        self.gate.is_two_qubit()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.condition {
            write!(f, "if({c}==1) ")?;
        }
        write!(f, "{}", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            write!(f, "{}{q}", if i == 0 { " " } else { ", " })?;
        }
        if let Some(c) = self.clbit {
            write!(f, " -> {c}")?;
        }
        Ok(())
    }
}

/// A quantum circuit: an ordered list of [`Instruction`]s over
/// `num_qubits` qubit wires and `num_clbits` classical bits.
///
/// The order is a valid (not necessarily unique) serialization of the gate
/// dependency DAG; passes that reorder gates produce a new `Circuit`.
///
/// # Examples
///
/// ```
/// use caqr_circuit::{Circuit, Clbit, Qubit};
///
/// let mut c = Circuit::new(2, 2);
/// c.h(Qubit::new(0));
/// c.cx(Qubit::new(0), Qubit::new(1));
/// c.measure_all();
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.depth(), 3); // h | cx | the two measures in parallel
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instrs: Vec<Instruction>,
}

impl Circuit {
    /// An empty circuit with the given register sizes.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits,
            instrs: Vec::new(),
        }
    }

    /// The number of qubit wires.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if any operand index is out of range for this circuit.
    pub fn push(&mut self, instr: Instruction) {
        for q in &instr.qubits {
            assert!(
                q.index() < self.num_qubits,
                "{q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        for c in instr.clbit.iter().chain(instr.condition.iter()) {
            assert!(
                c.index() < self.num_clbits,
                "{c} out of range for {} classical bits",
                self.num_clbits
            );
        }
        self.instrs.push(instr);
    }

    /// Appends a plain gate on the given qubits.
    pub fn push_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        self.push(Instruction::gate(gate, qubits.to_vec()));
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: Qubit) {
        self.push_gate(Gate::H, &[q]);
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: Qubit) {
        self.push_gate(Gate::X, &[q]);
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: Qubit) {
        self.push_gate(Gate::Z, &[q]);
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, angle: f64, q: Qubit) {
        self.push_gate(Gate::Rx(angle), &[q]);
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, angle: f64, q: Qubit) {
        self.push_gate(Gate::Ry(angle), &[q]);
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, angle: f64, q: Qubit) {
        self.push_gate(Gate::Rz(angle), &[q]);
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: Qubit) {
        self.push_gate(Gate::T, &[q]);
    }

    /// Appends a T-dagger gate.
    pub fn tdg(&mut self, q: Qubit) {
        self.push_gate(Gate::Tdg, &[q]);
    }

    /// Appends a CNOT with `control` controlling `target`.
    pub fn cx(&mut self, control: Qubit, target: Qubit) {
        self.push_gate(Gate::Cx, &[control, target]);
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: Qubit, b: Qubit) {
        self.push_gate(Gate::Cz, &[a, b]);
    }

    /// Appends a controlled-phase (QAOA CPHASE).
    pub fn cp(&mut self, angle: f64, a: Qubit, b: Qubit) {
        self.push_gate(Gate::Cp(angle), &[a, b]);
    }

    /// Appends an RZZ.
    pub fn rzz(&mut self, angle: f64, a: Qubit, b: Qubit) {
        self.push_gate(Gate::Rzz(angle), &[a, b]);
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) {
        self.push_gate(Gate::Swap, &[a, b]);
    }

    /// Appends a measurement of `q` into `c`.
    pub fn measure(&mut self, q: Qubit, c: Clbit) {
        self.push(Instruction {
            gate: Gate::Measure,
            qubits: vec![q],
            clbit: Some(c),
            condition: None,
        });
    }

    /// Measures qubit `i` into clbit `i` for every qubit.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer clbits than qubits.
    pub fn measure_all(&mut self) {
        assert!(
            self.num_clbits >= self.num_qubits,
            "measure_all needs a clbit per qubit"
        );
        for i in 0..self.num_qubits {
            self.measure(Qubit::new(i), Clbit::new(i));
        }
    }

    /// Appends an unconditional reset of `q` to |0>.
    pub fn reset(&mut self, q: Qubit) {
        self.push(Instruction {
            gate: Gate::Reset,
            qubits: vec![q],
            clbit: None,
            condition: None,
        });
    }

    /// Appends the paper's fast conditional reset: an X on `q` executed only
    /// if classical bit `c` is 1 (Fig. 2b). Preceded by a measurement of `q`
    /// into `c`, this returns `q` to |0> at roughly half the cost of the
    /// built-in reset.
    pub fn cond_x(&mut self, q: Qubit, c: Clbit) {
        self.push(Instruction {
            gate: Gate::X,
            qubits: vec![q],
            clbit: None,
            condition: Some(c),
        });
    }

    /// Appends the full measure-and-conditionally-reset sequence used at a
    /// qubit reuse point: `measure q -> c; if (c) x q`.
    pub fn measure_and_reset(&mut self, q: Qubit, c: Clbit) {
        self.measure(q, c);
        self.cond_x(q, c);
    }

    /// The number of two-qubit gates (including SWAPs).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_two_qubit()).count()
    }

    /// The number of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.gate == Gate::Swap).count()
    }

    /// The number of mid-circuit measurements (measurements followed by any
    /// later gate on the same qubit).
    pub fn mid_circuit_measurement_count(&self) -> usize {
        let mut count = 0;
        for (idx, instr) in self.instrs.iter().enumerate() {
            if instr.gate == Gate::Measure {
                let q = instr.qubits[0];
                if self.instrs[idx + 1..]
                    .iter()
                    .any(|later| later.uses_qubit(q))
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// Circuit depth: the longest chain of instructions through qubit *and*
    /// classical wires (the standard transpiler depth metric).
    pub fn depth(&self) -> usize {
        let mut qfront = vec![0usize; self.num_qubits];
        let mut cfront = vec![0usize; self.num_clbits];
        let mut depth = 0;
        for instr in &self.instrs {
            let mut level = 0;
            for q in &instr.qubits {
                level = level.max(qfront[q.index()]);
            }
            for c in instr.clbit.iter().chain(instr.condition.iter()) {
                level = level.max(cfront[c.index()]);
            }
            let level = level + 1;
            for q in &instr.qubits {
                qfront[q.index()] = level;
            }
            for c in instr.clbit.iter().chain(instr.condition.iter()) {
                cfront[c.index()] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// The indices of instructions touching qubit `q`, in program order.
    pub fn gates_on_qubit(&self, q: Qubit) -> Vec<usize> {
        self.instrs
            .iter()
            .enumerate()
            .filter_map(|(i, instr)| instr.uses_qubit(q).then_some(i))
            .collect()
    }

    /// The set of qubits that appear in at least one instruction.
    pub fn active_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.num_qubits];
        for instr in &self.instrs {
            for q in &instr.qubits {
                used[q.index()] = true;
            }
        }
        (0..self.num_qubits)
            .filter(|&i| used[i])
            .map(Qubit::new)
            .collect()
    }

    /// Rewrites every qubit operand through `map` (old index -> new index)
    /// into a circuit of `new_num_qubits` wires. Classical bits are
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `map` is shorter than this circuit's qubit count or maps
    /// out of range.
    pub fn remap_qubits(&self, map: &[usize], new_num_qubits: usize) -> Circuit {
        assert!(map.len() >= self.num_qubits, "map too short");
        let mut out = Circuit::new(new_num_qubits, self.num_clbits);
        for instr in &self.instrs {
            let mut ni = instr.clone();
            ni.qubits = instr
                .qubits
                .iter()
                .map(|q| Qubit::new(map[q.index()]))
                .collect();
            out.push(ni);
        }
        out
    }

    /// Counts instructions whose gate satisfies `pred`.
    pub fn count_gates(&self, mut pred: impl FnMut(&Gate) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(&i.gate)).count()
    }

    /// A stable 128-bit content fingerprint of this circuit.
    ///
    /// Covers the register sizes and every instruction in program order:
    /// gate mnemonic, exact angle bit patterns, operand qubits, classical
    /// destination, and classical condition. Two circuits built through
    /// the same sequence of instructions always agree; any semantic
    /// difference (gate, order, operand, angle, register width) produces a
    /// different fingerprint. The value is independent of process,
    /// platform, and release — suitable as a content-addressed cache key.
    ///
    /// # Examples
    ///
    /// ```
    /// use caqr_circuit::{Circuit, Qubit};
    ///
    /// let mut a = Circuit::new(2, 0);
    /// a.h(Qubit::new(0));
    /// let mut b = Circuit::new(2, 0);
    /// b.h(Qubit::new(0));
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// b.h(Qubit::new(1));
    /// assert_ne!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_usize(self.num_qubits);
        h.write_usize(self.num_clbits);
        h.write_usize(self.instrs.len());
        for instr in &self.instrs {
            h.write_str(instr.gate.name());
            if let Gate::U(theta, phi, lambda) = instr.gate {
                h.write_f64(theta);
                h.write_f64(phi);
                h.write_f64(lambda);
            } else if let Some(angle) = instr.gate.angle() {
                h.write_f64(angle);
            }
            h.write_usize(instr.qubits.len());
            for q in &instr.qubits {
                h.write_u32(q.index() as u32);
            }
            match instr.clbit {
                Some(c) => {
                    h.write_u8(1);
                    h.write_u32(c.index() as u32);
                }
                None => h.write_u8(0),
            }
            match instr.condition {
                Some(c) => {
                    h.write_u8(1);
                    h.write_u32(c.index() as u32);
                }
                None => h.write_u8(0),
            }
        }
        h.finish()
    }

    /// The adjoint circuit: gates inverted, order reversed. Returns `None`
    /// if the circuit contains measurements, resets, or conditioned gates
    /// (non-unitary operations have no inverse).
    ///
    /// Mirror benchmarking (`C` then `C.inverse()`) turns any unitary
    /// circuit into one with the known output |0...0>, a standard
    /// hardware-fidelity probe.
    pub fn inverse(&self) -> Option<Circuit> {
        let mut out = Circuit::new(self.num_qubits, self.num_clbits);
        for instr in self.instrs.iter().rev() {
            if instr.condition.is_some() {
                return None;
            }
            let gate = instr.gate.inverse()?;
            out.push(Instruction {
                gate,
                qubits: instr.qubits.clone(),
                clbit: None,
                condition: None,
            });
        }
        Some(out)
    }

    /// Appends every instruction of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses qubits or clbits outside this circuit's
    /// registers.
    pub fn extend_from(&mut self, other: &Circuit) {
        for instr in other {
            self.push(instr.clone());
        }
    }

    /// Drops idle wires, renumbering the used ones contiguously (first-use
    /// order is *not* used — original index order is kept). Returns the
    /// compacted circuit and, per original qubit, its new index (`None`
    /// for dropped idle wires).
    ///
    /// Routed circuits live on full-device registers; compacting them
    /// makes dense simulation feasible.
    pub fn compact_qubits(&self) -> (Circuit, Vec<Option<usize>>) {
        let mut used = vec![false; self.num_qubits];
        for instr in &self.instrs {
            for q in &instr.qubits {
                used[q.index()] = true;
            }
        }
        let mut mapping = vec![None; self.num_qubits];
        let mut next = 0;
        for (i, &u) in used.iter().enumerate() {
            if u {
                mapping[i] = Some(next);
                next += 1;
            }
        }
        let mut out = Circuit::new(next, self.num_clbits);
        for instr in &self.instrs {
            let mut ni = instr.clone();
            ni.qubits = instr
                .qubits
                .iter()
                .map(|q| Qubit::new(mapping[q.index()].expect("wire is used")))
                .collect();
            out.push(ni);
        }
        (out, mapping)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} clbits, {} ops]:",
            self.num_qubits,
            self.num_clbits,
            self.instrs.len()
        )?;
        for instr in &self.instrs {
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn c(i: usize) -> Clbit {
        Clbit::new(i)
    }

    #[test]
    fn build_and_count() {
        let mut circ = Circuit::new(3, 3);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.cz(q(1), q(2));
        circ.swap(q(0), q(2));
        circ.measure_all();
        assert_eq!(circ.len(), 7);
        assert_eq!(circ.two_qubit_gate_count(), 3);
        assert_eq!(circ.swap_count(), 1);
        assert_eq!(circ.num_clbits(), 3);
    }

    #[test]
    fn depth_parallel_gates() {
        let mut circ = Circuit::new(4, 0);
        circ.h(q(0));
        circ.h(q(1));
        circ.h(q(2));
        circ.h(q(3));
        assert_eq!(circ.depth(), 1);
        circ.cx(q(0), q(1));
        circ.cx(q(2), q(3));
        assert_eq!(circ.depth(), 2);
        circ.cx(q(1), q(2));
        assert_eq!(circ.depth(), 3);
    }

    #[test]
    fn depth_through_classical_wire() {
        // measure q0 -> c0, then conditional X on q1 with condition c0:
        // the condition serializes the two even though qubits differ.
        let mut circ = Circuit::new(2, 1);
        circ.measure(q(0), c(0));
        circ.cond_x(q(1), c(0));
        assert_eq!(circ.depth(), 2);
    }

    #[test]
    fn measure_and_reset_sequence() {
        let mut circ = Circuit::new(1, 1);
        circ.h(q(0));
        circ.measure_and_reset(q(0), c(0));
        assert_eq!(circ.len(), 3);
        assert_eq!(circ.instructions()[1].gate, Gate::Measure);
        assert_eq!(circ.instructions()[2].condition, Some(c(0)));
    }

    #[test]
    fn mid_circuit_measurement_detection() {
        let mut circ = Circuit::new(2, 2);
        circ.measure(q(0), c(0));
        circ.h(q(0)); // makes the measure mid-circuit
        circ.measure(q(1), c(1)); // final
        assert_eq!(circ.mid_circuit_measurement_count(), 1);
    }

    #[test]
    fn gates_on_qubit_ordered() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0));
        circ.cx(q(0), q(1));
        circ.h(q(1));
        assert_eq!(circ.gates_on_qubit(q(0)), vec![0, 1]);
        assert_eq!(circ.gates_on_qubit(q(1)), vec![1, 2]);
    }

    #[test]
    fn remap_qubits() {
        let mut circ = Circuit::new(3, 0);
        circ.cx(q(0), q(2));
        let mapped = circ.remap_qubits(&[1, 2, 0], 3);
        assert_eq!(mapped.instructions()[0].qubits, vec![q(1), q(0)]);
    }

    #[test]
    fn active_qubits_skips_idle() {
        let mut circ = Circuit::new(4, 0);
        circ.h(q(1));
        circ.h(q(3));
        assert_eq!(circ.active_qubits(), vec![q(1), q(3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(1));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn two_qubit_same_operand_rejected() {
        let mut circ = Circuit::new(2, 0);
        circ.cx(q(0), q(0));
    }

    #[test]
    #[should_panic(expected = "classical bit")]
    fn measure_requires_clbit() {
        Instruction {
            gate: Gate::Measure,
            qubits: vec![q(0)],
            clbit: None,
            condition: None,
        }
        .validate_public();
    }

    impl Instruction {
        fn validate_public(&self) {
            self.validate();
        }
    }

    #[test]
    fn display_instruction() {
        let mut circ = Circuit::new(2, 1);
        circ.measure(q(0), c(0));
        circ.cond_x(q(1), c(0));
        let text = format!("{circ}");
        assert!(text.contains("measure q0 -> c0"));
        assert!(text.contains("if(c0==1) x q1"));
    }

    #[test]
    fn into_iterator() {
        let mut circ = Circuit::new(1, 0);
        circ.h(q(0));
        circ.x(q(0));
        let names: Vec<&str> = (&circ).into_iter().map(|i| i.gate.name()).collect();
        assert_eq!(names, vec!["h", "x"]);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut circ = Circuit::new(2, 0);
        circ.h(q(0));
        circ.t(q(1));
        circ.cx(q(0), q(1));
        let inv = circ.inverse().unwrap();
        assert_eq!(inv.len(), 3);
        assert_eq!(inv.instructions()[0].gate, Gate::Cx);
        assert_eq!(inv.instructions()[1].gate, Gate::Tdg);
        assert_eq!(inv.instructions()[2].gate, Gate::H);
    }

    #[test]
    fn inverse_rejects_non_unitary() {
        let mut circ = Circuit::new(1, 1);
        circ.measure(q(0), c(0));
        assert!(circ.inverse().is_none());
        let mut circ2 = Circuit::new(1, 1);
        circ2.cond_x(q(0), c(0));
        assert!(circ2.inverse().is_none());
        let mut circ3 = Circuit::new(1, 0);
        circ3.reset(q(0));
        assert!(circ3.inverse().is_none());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Circuit::new(2, 0);
        a.h(q(0));
        let mut b = Circuit::new(2, 0);
        b.cx(q(0), q(1));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.instructions()[1].gate, Gate::Cx);
    }

    #[test]
    fn compact_qubits_drops_idle_wires() {
        let mut circ = Circuit::new(27, 2);
        circ.h(q(3));
        circ.cx(q(3), q(20));
        circ.measure(q(20), c(1));
        let (compacted, mapping) = circ.compact_qubits();
        assert_eq!(compacted.num_qubits(), 2);
        assert_eq!(mapping[3], Some(0));
        assert_eq!(mapping[20], Some(1));
        assert_eq!(mapping[0], None);
        assert_eq!(compacted.instructions()[1].qubits, vec![q(0), q(1)]);
        assert_eq!(compacted.num_clbits(), 2);
    }

    #[test]
    fn compact_qubits_identity_when_all_used() {
        let mut circ = Circuit::new(2, 0);
        circ.cx(q(0), q(1));
        let (compacted, mapping) = circ.compact_qubits();
        assert_eq!(compacted, circ);
        assert_eq!(mapping, vec![Some(0), Some(1)]);
    }

    #[test]
    fn fingerprint_stable_across_rebuilds() {
        let build = || {
            let mut circ = Circuit::new(3, 3);
            circ.h(q(0));
            circ.cx(q(0), q(1));
            circ.rz(0.25, q(2));
            circ.measure_and_reset(q(1), c(1));
            circ
        };
        assert_eq!(build().fingerprint(), build().fingerprint());
        assert_eq!(build().fingerprint(), build().clone().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_semantics() {
        let mut base = Circuit::new(3, 3);
        base.h(q(0));
        base.cx(q(0), q(1));
        let fp = base.fingerprint();

        // Different operand.
        let mut other = Circuit::new(3, 3);
        other.h(q(0));
        other.cx(q(0), q(2));
        assert_ne!(fp, other.fingerprint());

        // Different gate order.
        let mut reordered = Circuit::new(3, 3);
        reordered.cx(q(0), q(1));
        reordered.h(q(0));
        assert_ne!(fp, reordered.fingerprint());

        // Different register width, same instructions.
        let mut wider = Circuit::new(4, 3);
        wider.h(q(0));
        wider.cx(q(0), q(1));
        assert_ne!(fp, wider.fingerprint());

        // Different angle bits.
        let mut a = Circuit::new(1, 0);
        a.rz(0.5, q(0));
        let mut b = Circuit::new(1, 0);
        b.rz(0.5 + f64::EPSILON, q(0));
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Conditioned vs unconditioned X.
        let mut plain = Circuit::new(1, 1);
        plain.x(q(0));
        let mut conditioned = Circuit::new(1, 1);
        conditioned.cond_x(q(0), c(0));
        assert_ne!(plain.fingerprint(), conditioned.fingerprint());
    }

    #[test]
    fn qubit_and_clbit_newtypes() {
        assert_eq!(Qubit::new(5).index(), 5);
        assert_eq!(format!("{}", Qubit::new(5)), "q5");
        assert_eq!(Clbit::from(2).index(), 2);
        assert_eq!(format!("{}", Clbit::new(2)), "c2");
        assert_eq!(Qubit::from(3), Qubit::new(3));
    }
}
