//! Property tests pinning the streaming front-end to the batch importer.
//!
//! Three contracts on randomly generated OpenQASM programs (covering
//! pi-expression angles, mid-circuit measurement, reset, and
//! feed-forward conditionals):
//!
//! * [`StreamingImporter`] fed arbitrary byte splits produces the exact
//!   [`Circuit`] that batch [`from_qasm`] produces from the whole text.
//! * A [`StreamSession`]'s report, digest, and concatenated chunk output
//!   are independent of how the source bytes were split — and equal to
//!   [`schedule_circuit`] run on the batch-parsed circuit.
//! * Malformed programs are rejected by both importers on the same line.

use caqr_circuit::qasm::from_qasm;
use caqr_stream::{schedule_circuit, CollectSink, StreamOptions, StreamSession, StreamingImporter};
use proptest::collection;
use proptest::prelude::*;

/// One (opcode, operand-selector, angle-selector) triple decodes to one
/// source statement.
type StmtSpec = (u8, u32, u8);

/// Angle spellings exercising the qelib expression grammar: `pi`
/// products/quotients, unary minus, and plain floats.
const ANGLES: [&str; 8] = [
    "pi", "pi/2", "-pi/4", "3*pi/2", "2*pi", "0.5", "-0.25", "1.5e0",
];

/// Decodes specs into a well-formed program on `n` qubits: every
/// statement kind the streaming parser handles, with all operand indices
/// in range and two-qubit operands distinct.
fn program_text(n: usize, specs: &[StmtSpec]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\ncreg c[{n}];\n");
    for &(op, sel, asel) in specs {
        let q0 = sel as usize % n;
        let q1 = (sel as usize / n) % n;
        let angle = ANGLES[asel as usize % ANGLES.len()];
        match op % 12 {
            0 => writeln!(out, "h q[{q0}];"),
            1 => writeln!(out, "x q[{q0}];"),
            2 => writeln!(out, "s q[{q0}];"),
            3 => writeln!(out, "rz({angle}) q[{q0}];"),
            4 => writeln!(out, "rx( {angle} ) q[{q0}];"),
            5 => writeln!(out, "u({angle}, -pi, 0.5) q[{q0}];"),
            6 if q0 != q1 => writeln!(out, "cx q[{q0}], q[{q1}];"),
            7 if q0 != q1 => writeln!(out, "rzz({angle}) q[{q0}], q[{q1}];"),
            // Mid-circuit measurement and reset — the statements the
            // reuse pipeline exists for.
            8 => writeln!(out, "measure q[{q0}] -> c[{q0}];"),
            9 => writeln!(out, "reset q[{q0}];"),
            10 => writeln!(out, "if(c[{q1}]==1) x q[{q0}];"),
            11 => writeln!(out, "// comment line\nt q[{q0}];"),
            _ => Ok(()), // degenerate two-qubit selector: skip
        }
        .expect("write to String");
    }
    out
}

/// Splits `text` into chunks at pseudo-random byte positions derived
/// from `cuts` — including empty chunks and splits inside statements,
/// tokens, and UTF-8-safe ASCII runs.
fn byte_splits<'a>(text: &'a str, cuts: &[u32]) -> Vec<&'a [u8]> {
    let bytes = text.as_bytes();
    let mut positions: Vec<usize> = cuts
        .iter()
        .map(|&c| c as usize % (bytes.len() + 1))
        .collect();
    positions.sort_unstable();
    let mut chunks = Vec::with_capacity(positions.len() + 1);
    let mut start = 0;
    for p in positions {
        chunks.push(&bytes[start..p]);
        start = p;
    }
    chunks.push(&bytes[start..]);
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn streamed_import_equals_batch_import(
        n in 1usize..6,
        specs in collection::vec((0u8..=255, 0u32..1024, 0u8..=255), 0..60),
        cuts in collection::vec(0u32..4096, 0..12),
    ) {
        let text = program_text(n, &specs);
        let batch = from_qasm(&text).expect("generated program parses");
        let mut importer = StreamingImporter::new();
        for chunk in byte_splits(&text, &cuts) {
            if let Err(e) = importer.feed(chunk) {
                return Err(format!("streaming feed rejected: {e}\n{text}"));
            }
        }
        match importer.finish() {
            Ok(streamed) => prop_assert_eq!(streamed, batch),
            Err(e) => return Err(format!("streaming finish rejected: {e}\n{text}")),
        }
    }

    #[test]
    fn session_output_is_split_invariant_and_equals_batch(
        n in 1usize..6,
        specs in collection::vec((0u8..=255, 0u32..1024, 0u8..=255), 0..60),
        cuts in collection::vec(0u32..4096, 0..12),
    ) {
        let text = program_text(n, &specs);
        // Window larger than any generated program: retirement can only
        // happen at finish-time emission, so WindowTooSmall is impossible
        // and the comparison is purely about split independence.
        let opts = StreamOptions::default();

        let mut session = StreamSession::new(opts.clone(), CollectSink::new());
        for chunk in byte_splits(&text, &cuts) {
            session.feed(chunk).expect("well-formed program");
        }
        let (report, sink) = session.finish().expect("well-formed program");

        let batch = from_qasm(&text).expect("generated program parses");
        let (batch_report, batch_sink) =
            schedule_circuit(&batch, opts, CollectSink::new()).expect("fits in window");

        prop_assert_eq!(report, batch_report);
        prop_assert_eq!(
            sink.into_circuit().fingerprint(),
            batch_sink.into_circuit().fingerprint()
        );
    }

    #[test]
    fn parse_errors_surface_the_same_line_as_batch(
        n in 1usize..4,
        specs in collection::vec((0u8..=255, 0u32..1024, 0u8..=255), 0..12),
        bad_line in 0usize..16,
    ) {
        let mut text = program_text(n, &specs);
        // Corrupt one line past the prelude (or append when the program
        // is shorter than the chosen position).
        let lines: Vec<&str> = text.lines().collect();
        let target = 4 + bad_line % lines.len().max(1);
        let mut rebuilt: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        if target < rebuilt.len() {
            rebuilt[target] = "wat q[0];".to_string();
        } else {
            rebuilt.push("wat q[0];".to_string());
        }
        text = rebuilt.join("\n");
        text.push('\n');

        let batch_err = from_qasm(&text).expect_err("corrupted program");
        let mut importer = StreamingImporter::new();
        let streamed_err = byte_splits(&text, &[7, 31, 131])
            .into_iter()
            .try_for_each(|chunk| importer.feed(chunk))
            .err()
            .or_else(|| importer.finish().err())
            .expect("corrupted program");
        prop_assert_eq!(streamed_err.line(), batch_err.line());
        prop_assert_eq!(streamed_err.to_string(), batch_err.to_string());
    }
}
