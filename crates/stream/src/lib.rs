//! Bounded-memory streaming compilation with causal-cone qubit reuse.
//!
//! The batch pipeline materializes a whole [`caqr_circuit::Circuit`] (and
//! later a DAG) before any pass runs, so peak memory is O(gates). This
//! crate adds a fourth compilation mode that never holds the program:
//!
//! * [`parser::StreamingQasmParser`] — a push-based OpenQASM front-end
//!   built on the same statement grammar as the batch importer
//!   ([`caqr_circuit::qasm::LineParser`]); feed it byte chunks straight
//!   off a socket, get statements out.
//! * [`cone::ConeTracker`] — an online union-find over logical qubits
//!   that follows per-output causal cones without a global DAG, counting
//!   cones as they close.
//! * [`window::WindowScheduler`] — a sliding window of W instructions
//!   that retires a measured qubit once W later instructions have been
//!   observed without touching it, frees its wire, and reuses the wire
//!   (with an inserted `reset`) for the next fresh logical qubit.
//! * [`session::StreamSession`] — wires the three together, hands each
//!   bounded chunk of rewritten instructions to the existing peephole
//!   pass, and folds everything into an order-exact [`digest::StreamDigest`].
//!
//! Peak memory is O(window + chunk), not O(gates): a million-gate program
//! streams through in a few megabytes while the batch path holds the full
//! text plus the full instruction list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod digest;
pub mod parser;
pub mod session;
pub mod window;

pub use cone::ConeTracker;
pub use digest::StreamDigest;
pub use parser::{StreamingImporter, StreamingQasmParser};
pub use session::{
    schedule_circuit, ChunkSink, CollectSink, NullSink, StreamMetrics, StreamOptions, StreamReport,
    StreamSession,
};
pub use window::WindowScheduler;

use caqr_circuit::qasm::ParseQasmError;

/// Errors from the streaming pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// The QASM front-end rejected the input (carries the source line).
    Parse(ParseQasmError),
    /// A logical qubit reappeared after the scheduler had already retired
    /// it: its last touch was a measurement followed by at least `window`
    /// unrelated instructions, so its wire was freed and reused. Retry
    /// with a larger window.
    WindowTooSmall {
        /// The logical (source-program) qubit index that reappeared.
        qubit: usize,
        /// The window size the scheduler was running with.
        window: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse(e) => write!(f, "{e}"),
            StreamError::WindowTooSmall { qubit, window } => write!(
                f,
                "qubit q[{qubit}] reused after retirement: lookahead window \
                 of {window} instructions is too small for this circuit"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ParseQasmError> for StreamError {
    fn from(e: ParseQasmError) -> Self {
        StreamError::Parse(e)
    }
}
