//! Order-exact fingerprinting of an instruction stream.
//!
//! [`caqr_circuit::Circuit::fingerprint`] hashes the circuit *header*
//! (widths, length) before any instruction — but a streaming compiler
//! only knows the final wire count at end of input. [`StreamDigest`]
//! therefore hashes instructions incrementally with the exact
//! per-instruction encoding the batch fingerprint uses, then folds the
//! header over the running digest at [`finish`](StreamDigest::finish).
//! The value differs from `Circuit::fingerprint` by construction, but is
//! equally order- and content-exact, and
//! [`of_circuit`](StreamDigest::of_circuit) computes the same value from
//! a materialized circuit so streamed and batch outputs can be compared
//! without ever materializing the streamed one.

use caqr_circuit::fingerprint::StableHasher;
use caqr_circuit::{Circuit, Fingerprint, Gate, Instruction};

/// Incremental instruction-stream hasher.
#[derive(Debug, Default)]
pub struct StreamDigest {
    inner: StableHasher,
    count: usize,
}

impl StreamDigest {
    /// An empty digest.
    pub fn new() -> Self {
        StreamDigest::default()
    }

    /// Absorbs one instruction (same encoding as the batch fingerprint).
    pub fn absorb(&mut self, instr: &Instruction) {
        self.count += 1;
        let h = &mut self.inner;
        h.write_str(instr.gate.name());
        if let Gate::U(theta, phi, lambda) = instr.gate {
            h.write_f64(theta);
            h.write_f64(phi);
            h.write_f64(lambda);
        } else if let Some(angle) = instr.gate.angle() {
            h.write_f64(angle);
        }
        h.write_usize(instr.qubits.len());
        for q in &instr.qubits {
            h.write_u32(q.index() as u32);
        }
        match instr.clbit {
            Some(c) => {
                h.write_u8(1);
                h.write_u32(c.index() as u32);
            }
            None => h.write_u8(0),
        }
        match instr.condition {
            Some(c) => {
                h.write_u8(1);
                h.write_u32(c.index() as u32);
            }
            None => h.write_u8(0),
        }
    }

    /// Instructions absorbed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Folds the now-known header over the instruction digest.
    pub fn finish(self, num_qubits: usize, num_clbits: usize) -> Fingerprint {
        let stream = self.inner.finish();
        let mut h = StableHasher::new();
        h.write_usize(num_qubits);
        h.write_usize(num_clbits);
        h.write_usize(self.count);
        h.write_u128(stream.as_u128());
        h.finish()
    }

    /// The digest a stream producing exactly `circuit` would finish with.
    pub fn of_circuit(circuit: &Circuit) -> Fingerprint {
        let mut d = StreamDigest::new();
        for instr in circuit.iter() {
            d.absorb(instr);
        }
        d.finish(circuit.num_qubits(), circuit.num_clbits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::{Clbit, Qubit};

    fn sample() -> Circuit {
        let mut c = Circuit::new(2, 1);
        c.h(Qubit::new(0));
        c.rz(0.75, Qubit::new(1));
        c.cx(Qubit::new(0), Qubit::new(1));
        c.measure(Qubit::new(1), Clbit::new(0));
        c.cond_x(Qubit::new(0), Clbit::new(0));
        c
    }

    #[test]
    fn incremental_matches_of_circuit() {
        let c = sample();
        let mut d = StreamDigest::new();
        for i in c.iter() {
            d.absorb(i);
        }
        assert_eq!(
            d.finish(c.num_qubits(), c.num_clbits()),
            StreamDigest::of_circuit(&c)
        );
    }

    #[test]
    fn sensitive_to_order_content_and_header() {
        let c = sample();
        let base = StreamDigest::of_circuit(&c);

        let mut reordered = Circuit::new(2, 1);
        let instrs: Vec<_> = c.iter().cloned().collect();
        reordered.push(instrs[1].clone());
        reordered.push(instrs[0].clone());
        for i in &instrs[2..] {
            reordered.push(i.clone());
        }
        assert_ne!(StreamDigest::of_circuit(&reordered), base);

        let mut widened = Circuit::new(3, 1);
        for i in c.iter() {
            widened.push(i.clone());
        }
        assert_ne!(StreamDigest::of_circuit(&widened), base);

        let mut angle = StreamDigest::new();
        for i in c.iter() {
            let mut i = i.clone();
            if let Gate::Rz(_) = i.gate {
                i.gate = Gate::Rz(0.76);
            }
            angle.absorb(&i);
        }
        assert_ne!(angle.finish(2, 1), base);
    }
}
