//! The streaming compilation session: parser → cone tracker → windowed
//! scheduler → chunked peephole → digest, end to end.
//!
//! A [`StreamSession`] owns the whole bounded-memory pipeline. Feed it
//! source bytes; every time the scheduler has pushed `chunk_gates`
//! instructions out of the window, the pending chunk is materialized as
//! a small [`Circuit`], run through the existing peephole pass, handed
//! to the [`ChunkSink`], and folded into the running [`StreamDigest`].
//! Chunk boundaries depend only on the instruction stream — never on how
//! the bytes were split — so any two deliveries of the same program
//! produce byte-identical chunk sequences and digests.

use caqr_circuit::optimize::peephole;
use caqr_circuit::qasm::QasmStmt;
use caqr_circuit::{Circuit, Fingerprint, Instruction};

use crate::digest::StreamDigest;
use crate::parser::StreamingQasmParser;
use crate::window::WindowScheduler;
use crate::StreamError;

/// Tuning knobs for a streaming session.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Scheduler lookahead: a measured qubit retires only after this
    /// many later instructions avoid it. Larger windows find more reuse
    /// and tolerate longer measure-to-reuse gaps; memory is O(window).
    pub window: usize,
    /// Emitted instructions per chunk handed to the pass pipeline.
    pub chunk_gates: usize,
    /// Run the peephole pass on each chunk before sinking it.
    pub optimize_chunks: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            window: 4096,
            chunk_gates: 1024,
            optimize_chunks: true,
        }
    }
}

/// Receives each compiled chunk. Implementations must not assume
/// anything about chunk sizes beyond "bounded".
pub trait ChunkSink {
    /// Called once per chunk, in program order. The chunk's declared
    /// width/clbits are the widths known so far (monotonically
    /// non-decreasing across chunks).
    fn accept(&mut self, chunk: &Circuit);
}

/// Discards chunks — for digest/metrics-only runs (the serve endpoint
/// and the 1M-gate bench).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ChunkSink for NullSink {
    fn accept(&mut self, _chunk: &Circuit) {}
}

/// Concatenates chunks back into one [`Circuit`] — for tests that prove
/// streamed output identical to batch output. Unbounded memory by
/// design; never use it on the million-gate path.
#[derive(Debug, Default)]
pub struct CollectSink {
    instrs: Vec<Instruction>,
    wires: usize,
    clbits: usize,
}

impl CollectSink {
    /// An empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The concatenated output circuit.
    pub fn into_circuit(self) -> Circuit {
        let mut c = Circuit::new(self.wires, self.clbits);
        for i in self.instrs {
            c.push(i);
        }
        c
    }
}

impl ChunkSink for CollectSink {
    fn accept(&mut self, chunk: &Circuit) {
        self.wires = self.wires.max(chunk.num_qubits());
        self.clbits = self.clbits.max(chunk.num_clbits());
        self.instrs.extend(chunk.iter().cloned());
    }
}

/// Counters describing a finished streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamMetrics {
    /// Source-program qubit register width (`qreg` declaration).
    pub declared_qubits: usize,
    /// Physical wires the output actually needs — the reuse win is
    /// `declared_qubits - wires`.
    pub wires: usize,
    /// Classical bits in the output.
    pub clbits: usize,
    /// Logical instructions accepted from the source.
    pub gates_in: u64,
    /// Instructions emitted to sinks (after reset insertion and chunk
    /// peephole).
    pub gates_out: u64,
    /// `reset` instructions inserted ahead of wire reuse.
    pub resets_inserted: u64,
    /// Chunks handed to the pass pipeline.
    pub chunks: u64,
    /// High-water mark of windowed (buffered) instructions.
    pub peak_window: usize,
    /// High-water mark of simultaneously live wires.
    pub peak_live: usize,
    /// Causal cones fully closed (every member measured and retired).
    pub cones_closed: u64,
    /// Largest causal-cone class formed.
    pub peak_cone: usize,
}

/// What a finished session hands back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Stage counters.
    pub metrics: StreamMetrics,
    /// Order-exact digest of the emitted instruction stream (see
    /// [`StreamDigest`]).
    pub digest: Fingerprint,
}

/// A live streaming compilation.
#[derive(Debug)]
pub struct StreamSession<S: ChunkSink> {
    parser: StreamingQasmParser,
    sched: WindowScheduler,
    sink: S,
    digest: StreamDigest,
    opts: StreamOptions,
    /// Parser events awaiting dispatch (drained every feed).
    stmts: Vec<QasmStmt>,
    /// Scheduler output awaiting the next chunk flush.
    emitted: Vec<Instruction>,
    declared_qubits: usize,
    clbits: usize,
    gates_out: u64,
    chunks: u64,
}

impl<S: ChunkSink> StreamSession<S> {
    /// A fresh session writing chunks into `sink`.
    pub fn new(opts: StreamOptions, sink: S) -> Self {
        StreamSession {
            parser: StreamingQasmParser::new(),
            sched: WindowScheduler::new(opts.window),
            sink,
            digest: StreamDigest::new(),
            opts,
            stmts: Vec::new(),
            emitted: Vec::new(),
            declared_qubits: 0,
            clbits: 0,
            gates_out: 0,
            chunks: 0,
        }
    }

    /// Consumes a chunk of OpenQASM source bytes.
    ///
    /// # Errors
    ///
    /// [`StreamError::Parse`] on malformed source,
    /// [`StreamError::WindowTooSmall`] if a retired qubit reappears.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), StreamError> {
        self.parser.feed(bytes, &mut self.stmts)?;
        self.dispatch()
    }

    /// Pushes an already-parsed instruction (the front-end-free entry
    /// point [`schedule_circuit`] is built on).
    ///
    /// # Errors
    ///
    /// [`StreamError::WindowTooSmall`] if a retired qubit reappears.
    pub fn push_instruction(&mut self, instr: Instruction) -> Result<(), StreamError> {
        self.note_clbits(&instr);
        self.sched.push(instr, &mut self.emitted)?;
        if self.emitted.len() >= self.opts.chunk_gates {
            self.flush_chunk();
        }
        Ok(())
    }

    /// Records a register declaration without going through the parser.
    pub fn declare(&mut self, qubits: usize, clbits: usize) {
        self.declared_qubits = self.declared_qubits.max(qubits);
        self.clbits = self.clbits.max(clbits);
    }

    /// Ends the input: flushes the parser, drains the window, sinks the
    /// final chunk, and returns the report plus the sink.
    ///
    /// # Errors
    ///
    /// Same conditions as [`feed`](StreamSession::feed).
    pub fn finish(mut self) -> Result<(StreamReport, S), StreamError> {
        self.parser.finish(&mut self.stmts)?;
        self.dispatch()?;
        self.sched.finish(&mut self.emitted);
        self.flush_chunk();
        let metrics = StreamMetrics {
            declared_qubits: self.declared_qubits,
            wires: self.sched.width(),
            clbits: self.clbits,
            gates_in: self.sched.gates_in(),
            gates_out: self.gates_out,
            resets_inserted: self.sched.resets_inserted(),
            chunks: self.chunks,
            peak_window: self.sched.peak_window(),
            peak_live: self.sched.peak_live(),
            cones_closed: self.sched.cones().cones_closed(),
            peak_cone: self.sched.cones().peak_cone(),
        };
        let digest = self.digest.finish(metrics.wires, metrics.clbits);
        Ok((StreamReport { metrics, digest }, self.sink))
    }

    /// Routes buffered parser events into the scheduler. The chunk-size
    /// check runs per event, so chunk boundaries are a function of the
    /// statement stream alone — byte-chunk splits cannot move them.
    fn dispatch(&mut self) -> Result<(), StreamError> {
        for stmt in std::mem::take(&mut self.stmts) {
            match stmt {
                QasmStmt::Qreg(n) => self.declared_qubits = self.declared_qubits.max(n),
                QasmStmt::Creg(n) => self.clbits = self.clbits.max(n),
                QasmStmt::Instr(instr) => {
                    self.note_clbits(&instr);
                    self.sched.push(instr, &mut self.emitted)?;
                    if self.emitted.len() >= self.opts.chunk_gates {
                        self.flush_chunk();
                    }
                }
            }
        }
        Ok(())
    }

    fn note_clbits(&mut self, instr: &Instruction) {
        for c in instr.clbit.iter().chain(instr.condition.iter()) {
            self.clbits = self.clbits.max(c.index() + 1);
        }
    }

    fn flush_chunk(&mut self) {
        if self.emitted.is_empty() {
            return;
        }
        let mut chunk = Circuit::new(self.sched.width(), self.clbits);
        for i in self.emitted.drain(..) {
            chunk.push(i);
        }
        if self.opts.optimize_chunks {
            chunk = peephole(&chunk);
        }
        for i in chunk.iter() {
            self.digest.absorb(i);
        }
        self.gates_out += chunk.len() as u64;
        self.chunks += 1;
        self.sink.accept(&chunk);
    }
}

/// Runs a materialized circuit through the identical window/chunk/
/// peephole machinery — the batch twin of a byte-fed session. Streamed
/// and batch runs of the same program produce equal digests and metrics
/// by construction.
///
/// With `window >= circuit.len()` this doubles as the full-lookahead
/// width probe used by the cone-reuse width-delta study.
///
/// # Errors
///
/// [`StreamError::WindowTooSmall`] if a retired qubit reappears.
pub fn schedule_circuit<S: ChunkSink>(
    circuit: &Circuit,
    opts: StreamOptions,
    sink: S,
) -> Result<(StreamReport, S), StreamError> {
    let mut session = StreamSession::new(opts, sink);
    session.declare(circuit.num_qubits(), circuit.num_clbits());
    for instr in circuit.iter() {
        session.push_instruction(instr.clone())?;
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::qasm::{from_qasm, to_qasm};
    use caqr_circuit::{Clbit, Qubit};

    /// Ten sequential single-qubit lifetimes: maximum reuse pressure.
    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(10, 10);
        for q in 0..10 {
            c.h(Qubit::new(q));
            c.rz(0.1 + q as f64, Qubit::new(q));
            c.measure(Qubit::new(q), Clbit::new(q));
        }
        c
    }

    fn stream_text(text: &str, opts: StreamOptions, byte_chunk: usize) -> (StreamReport, Circuit) {
        let mut s = StreamSession::new(opts, CollectSink::new());
        for piece in text.as_bytes().chunks(byte_chunk.max(1)) {
            s.feed(piece).expect("feed");
        }
        let (report, sink) = s.finish().expect("finish");
        (report, sink.into_circuit())
    }

    #[test]
    fn streamed_equals_batch_twin_at_every_byte_split() {
        let source = chain_circuit();
        let text = to_qasm(&source);
        let opts = StreamOptions {
            window: 4,
            chunk_gates: 5,
            optimize_chunks: true,
        };
        let (batch_report, batch_sink) = schedule_circuit(
            &from_qasm(&text).expect("parse"),
            opts.clone(),
            CollectSink::new(),
        )
        .expect("batch twin");
        let batch_out = batch_sink.into_circuit();
        for byte_chunk in [1, 3, 17, 64, text.len()] {
            let (report, out) = stream_text(&text, opts.clone(), byte_chunk);
            assert_eq!(report, batch_report, "byte chunk {byte_chunk}");
            assert_eq!(out.fingerprint(), batch_out.fingerprint());
        }
    }

    #[test]
    fn digest_matches_materialized_output() {
        let text = to_qasm(&chain_circuit());
        let (report, out) = stream_text(&text, StreamOptions::default(), 16);
        assert_eq!(report.digest, StreamDigest::of_circuit(&out));
    }

    #[test]
    fn reuse_shrinks_width_and_closes_cones() {
        let text = to_qasm(&chain_circuit());
        let opts = StreamOptions {
            window: 4,
            chunk_gates: 1024,
            optimize_chunks: false,
        };
        let (report, _) = stream_text(&text, opts, 32);
        let m = report.metrics;
        assert_eq!(m.declared_qubits, 10);
        assert_eq!(m.wires, 1, "ten sequential lifetimes fit one wire");
        assert_eq!(m.peak_live, 1);
        assert_eq!(m.resets_inserted, 9);
        assert_eq!(m.cones_closed, 10);
        assert_eq!(m.gates_in, 30);
        assert_eq!(m.gates_out, 39, "30 gates + 9 resets");
        assert!(m.peak_window <= 5);
    }

    #[test]
    fn window_too_small_surfaces_from_feed() {
        let mut text = String::from("qreg q[2];\ncreg c[2];\nmeasure q[0] -> c[0];\n");
        for _ in 0..8 {
            text.push_str("h q[1];\n");
        }
        text.push_str("h q[0];\n");
        let opts = StreamOptions {
            window: 3,
            ..StreamOptions::default()
        };
        let mut s = StreamSession::new(opts, NullSink);
        let err = s
            .feed(text.as_bytes())
            .and_then(|()| s.finish().map(|_| ()))
            .expect_err("q0 retired then reused");
        assert!(matches!(
            err,
            StreamError::WindowTooSmall {
                qubit: 0,
                window: 3
            }
        ));
    }

    #[test]
    fn chunk_count_and_sizes_are_bounded() {
        let text = to_qasm(&chain_circuit());
        let opts = StreamOptions {
            window: 2,
            chunk_gates: 4,
            optimize_chunks: false,
        };
        let (report, _) = stream_text(&text, opts, 8);
        assert!(report.metrics.chunks >= 5, "got {}", report.metrics.chunks);
        assert_eq!(report.metrics.gates_out, 39);
    }

    #[test]
    fn parse_error_surfaces_with_line() {
        let mut s = StreamSession::new(StreamOptions::default(), NullSink);
        let err = s
            .feed(b"qreg q[1];\nbogus q[0];\n")
            .expect_err("unknown gate");
        match err {
            StreamError::Parse(e) => assert_eq!(e.line(), 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
