//! The sliding-window measure → reset → reuse scheduler.
//!
//! Instructions enter in program order and leave in program order — the
//! scheduler never reorders, it only *renames*: logical (source-program)
//! qubits are mapped onto physical wires, and a wire is reclaimed the
//! moment its logical qubit provably has no future. The proof is the
//! window invariant:
//!
//! > An instruction is only emitted once `window` later instructions
//! > have been observed. If a qubit's last touch within that lookahead
//! > is a measurement, nothing in the next `window` instructions uses
//! > it — so it retires, and its wire (after an inserted `reset`) can
//! > host the next fresh logical qubit.
//!
//! Retirement is sound but conservative: a qubit whose next use lies
//! *beyond* the window is mistaken for dead. That case is detected, not
//! miscompiled — touching a retired qubit raises
//! [`StreamError::WindowTooSmall`] so the caller can retry with a larger
//! window. Memory is O(window) buffered instructions plus O(qubits seen)
//! bookkeeping, never O(gates).

use std::collections::VecDeque;

use caqr_circuit::{Gate, Instruction, Qubit};

use crate::cone::ConeTracker;
use crate::StreamError;

#[derive(Debug, Clone, Copy)]
struct QubitState {
    /// Physical wire currently hosting this logical qubit.
    wire: Option<u32>,
    /// Global index of the newest buffered instruction touching it.
    last_seen: u64,
    /// Retired qubits must never reappear (window invariant).
    retired: bool,
}

const FRESH: QubitState = QubitState {
    wire: None,
    last_seen: 0,
    retired: false,
};

/// The windowed scheduler. Push logical instructions in, collect
/// wire-renamed instructions (with inserted resets) out.
#[derive(Debug)]
pub struct WindowScheduler {
    window: usize,
    buffer: VecDeque<Instruction>,
    /// Global index of the buffer front.
    base: u64,
    qubits: Vec<QubitState>,
    /// Freed (dirty) wires, reused LIFO so hot wires stay hot.
    free: Vec<u32>,
    next_wire: u32,
    live: u32,
    peak_live: u32,
    peak_window: usize,
    resets_inserted: u64,
    gates_in: u64,
    cones: ConeTracker,
}

impl WindowScheduler {
    /// A scheduler with the given lookahead window (clamped to ≥ 1).
    pub fn new(window: usize) -> Self {
        WindowScheduler {
            window: window.max(1),
            buffer: VecDeque::new(),
            base: 0,
            qubits: Vec::new(),
            free: Vec::new(),
            next_wire: 0,
            live: 0,
            peak_live: 0,
            peak_window: 0,
            resets_inserted: 0,
            gates_in: 0,
            cones: ConeTracker::new(),
        }
    }

    /// Accepts the next logical instruction, appending any instructions
    /// it forces out of the window to `out`.
    ///
    /// # Errors
    ///
    /// [`StreamError::WindowTooSmall`] if the instruction touches a
    /// qubit the scheduler already retired.
    pub fn push(
        &mut self,
        instr: Instruction,
        out: &mut Vec<Instruction>,
    ) -> Result<(), StreamError> {
        let idx = self.base + self.buffer.len() as u64;
        for q in &instr.qubits {
            let qi = q.index();
            if self.qubits.len() <= qi {
                self.qubits.resize(qi + 1, FRESH);
            }
            if self.qubits[qi].retired {
                return Err(StreamError::WindowTooSmall {
                    qubit: qi,
                    window: self.window,
                });
            }
            self.qubits[qi].last_seen = idx;
            self.cones.touch(qi);
        }
        if instr.qubits.len() == 2 {
            self.cones
                .merge(instr.qubits[0].index(), instr.qubits[1].index());
        }
        self.gates_in += 1;
        self.buffer.push_back(instr);
        self.peak_window = self.peak_window.max(self.buffer.len());
        if self.buffer.len() > self.window {
            self.emit_front(out);
        }
        Ok(())
    }

    /// Drains every buffered instruction (end of input).
    pub fn finish(&mut self, out: &mut Vec<Instruction>) {
        while !self.buffer.is_empty() {
            self.emit_front(out);
        }
    }

    fn emit_front(&mut self, out: &mut Vec<Instruction>) {
        let idx = self.base;
        self.base += 1;
        let mut instr = self.buffer.pop_front().expect("emit on non-empty buffer");
        // Logical index of the measured qubit, captured before the wire
        // rename below overwrites it.
        let measured = (instr.gate == Gate::Measure).then(|| instr.qubits[0].index());
        for q in &mut instr.qubits {
            let qi = q.index();
            let wire = match self.qubits[qi].wire {
                Some(w) => w,
                None => {
                    let w = self.allocate(out);
                    self.qubits[qi].wire = Some(w);
                    w
                }
            };
            *q = Qubit::new(wire as usize);
        }
        // A measurement that is the qubit's newest buffered touch has no
        // use in the next `window` instructions: retire it.
        if let Some(qi) = measured {
            let state = &mut self.qubits[qi];
            if state.last_seen == idx {
                let wire = state.wire.take().expect("measured qubit has a wire");
                state.retired = true;
                self.free.push(wire);
                self.live -= 1;
                self.cones.retire(qi);
            }
        }
        out.push(instr);
    }

    fn allocate(&mut self, out: &mut Vec<Instruction>) -> u32 {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(w) => {
                // The wire carries a measured qubit's stale state; a
                // mid-circuit reset makes it |0> again — the dynamic
                // circuit at the heart of CaQR reuse.
                out.push(Instruction {
                    gate: Gate::Reset,
                    qubits: vec![Qubit::new(w as usize)],
                    clbit: None,
                    condition: None,
                });
                self.resets_inserted += 1;
                w
            }
            None => {
                let w = self.next_wire;
                self.next_wire += 1;
                w
            }
        }
    }

    /// Physical wires allocated so far — the output circuit's width.
    pub fn width(&self) -> usize {
        self.next_wire as usize
    }

    /// Wires currently hosting a live logical qubit.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// High-water mark of simultaneously live wires.
    pub fn peak_live(&self) -> usize {
        self.peak_live as usize
    }

    /// High-water mark of buffered (windowed) instructions.
    pub fn peak_window(&self) -> usize {
        self.peak_window
    }

    /// `reset` instructions inserted ahead of wire reuse.
    pub fn resets_inserted(&self) -> u64 {
        self.resets_inserted
    }

    /// Logical instructions accepted.
    pub fn gates_in(&self) -> u64 {
        self.gates_in
    }

    /// The causal-cone tracker (for closed-cone and peak-cone metrics).
    pub fn cones(&self) -> &ConeTracker {
        &self.cones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::Clbit;

    fn h(q: usize) -> Instruction {
        Instruction::gate(Gate::H, vec![Qubit::new(q)])
    }

    fn cx(a: usize, b: usize) -> Instruction {
        Instruction::gate(Gate::Cx, vec![Qubit::new(a), Qubit::new(b)])
    }

    fn meas(q: usize, c: usize) -> Instruction {
        Instruction {
            gate: Gate::Measure,
            qubits: vec![Qubit::new(q)],
            clbit: Some(Clbit::new(c)),
            condition: None,
        }
    }

    fn run(window: usize, program: Vec<Instruction>) -> (WindowScheduler, Vec<Instruction>) {
        let mut s = WindowScheduler::new(window);
        let mut out = Vec::new();
        for i in program {
            s.push(i, &mut out).expect("window large enough");
        }
        s.finish(&mut out);
        (s, out)
    }

    /// q0 is measured and dead before q1 starts: one wire serves both.
    #[test]
    fn sequential_lifetimes_share_one_wire() {
        let (s, out) = run(2, vec![h(0), meas(0, 0), h(1), h(1), meas(1, 1)]);
        assert_eq!(s.width(), 1);
        assert_eq!(s.peak_live(), 1);
        assert_eq!(s.resets_inserted(), 1);
        assert_eq!(s.cones().cones_closed(), 2);
        // Order preserved; the reset lands right before q1's first gate.
        let names: Vec<&str> = out.iter().map(|i| i.gate.name()).collect();
        assert_eq!(names, ["h", "measure", "reset", "h", "h", "measure"]);
        // Everything runs on wire 0.
        assert!(out.iter().all(|i| i.qubits == [Qubit::new(0)]));
    }

    /// Overlapping lifetimes need two wires no matter the window.
    #[test]
    fn overlapping_lifetimes_need_two_wires() {
        let (s, out) = run(16, vec![h(0), cx(0, 1), meas(0, 0), meas(1, 1)]);
        assert_eq!(s.width(), 2);
        assert_eq!(s.resets_inserted(), 0);
        assert_eq!(s.cones().cones_closed(), 1);
        assert_eq!(s.cones().peak_cone(), 2);
        assert_eq!(out.len(), 4);
    }

    /// A measured qubit used again within the window is NOT retired.
    #[test]
    fn mid_circuit_measure_keeps_the_wire() {
        let (s, out) = run(8, vec![h(0), meas(0, 0), h(0), meas(0, 0)]);
        assert_eq!(s.width(), 1);
        assert_eq!(s.resets_inserted(), 0);
        assert_eq!(out.len(), 4);
    }

    /// A use beyond the window after a measure is detected, not
    /// miscompiled.
    #[test]
    fn reuse_beyond_window_is_typed_error() {
        let mut s = WindowScheduler::new(2);
        let mut out = Vec::new();
        s.push(meas(0, 0), &mut out).unwrap();
        for _ in 0..4 {
            s.push(h(1), &mut out).unwrap();
        }
        let err = s.push(h(0), &mut out).expect_err("q0 retired");
        assert_eq!(
            err,
            StreamError::WindowTooSmall {
                qubit: 0,
                window: 2
            }
        );
        assert!(err.to_string().contains("q[0]"));
    }

    /// With a window spanning the whole program the same input compiles
    /// at full lookahead — this is the width-measurement mode.
    #[test]
    fn full_lookahead_equals_min_width_for_chain() {
        // A measurement chain: each qubit interacts then dies.
        let mut prog = Vec::new();
        for q in 0..8 {
            prog.push(h(q));
            if q > 0 {
                prog.push(cx(q - 1, q));
                prog.push(meas(q - 1, q - 1));
            }
        }
        prog.push(meas(7, 7));
        let (s, _) = run(usize::MAX, prog);
        // Only two overlapping lifetimes at any time.
        assert_eq!(s.width(), 2);
        assert_eq!(s.peak_live(), 2);
        assert_eq!(s.resets_inserted(), 6);
    }

    /// Conditions and clbits pass through untouched.
    #[test]
    fn clbits_pass_through() {
        let cond = Instruction {
            gate: Gate::X,
            qubits: vec![Qubit::new(1)],
            clbit: None,
            condition: Some(Clbit::new(0)),
        };
        let (_, out) = run(4, vec![meas(0, 0), cond.clone()]);
        // q0 retires at its measure, so q1 reuses the wire: the emitted
        // stream is [measure, reset, conditional-x].
        assert_eq!(out[0].clbit, Some(Clbit::new(0)));
        let last = out.last().expect("non-empty");
        assert_eq!(last.gate, Gate::X);
        assert_eq!(last.condition, Some(Clbit::new(0)));
    }

    #[test]
    fn window_occupancy_is_bounded() {
        let prog: Vec<Instruction> = (0..100).map(|i| h(i % 3)).collect();
        let (s, out) = run(5, prog);
        assert_eq!(s.peak_window(), 6);
        assert_eq!(out.len(), 100);
        assert_eq!(s.gates_in(), 100);
    }
}
