//! Push-based incremental OpenQASM parsing.
//!
//! [`StreamingQasmParser`] accepts arbitrary byte chunks (straight off a
//! socket) and emits [`QasmStmt`] events through the *same*
//! [`LineParser`] grammar the batch importer uses, so the two front-ends
//! cannot drift. The only buffered state is the current partial line:
//! memory is O(longest line), independent of program length.

use caqr_circuit::qasm::{LineParser, ParseQasmError, QasmStmt};
use caqr_circuit::{Circuit, Instruction};

/// Incremental OpenQASM tokenizer/parser.
///
/// Feed byte chunks with [`feed`](StreamingQasmParser::feed); statements
/// are appended to a caller-owned scratch vector (reuse it across calls
/// for zero steady-state allocation). Call
/// [`finish`](StreamingQasmParser::finish) once the input ends to flush a
/// final unterminated line. Chunk boundaries are invisible: splitting the
/// same bytes differently yields the same statement sequence.
#[derive(Debug)]
pub struct StreamingQasmParser {
    grammar: LineParser,
    /// Bytes of the current, not-yet-terminated source line.
    partial: Vec<u8>,
    /// 1-based number of the *next* line to complete.
    lineno: usize,
}

impl Default for StreamingQasmParser {
    fn default() -> Self {
        StreamingQasmParser::new()
    }
}

impl StreamingQasmParser {
    /// A parser at the start of a program.
    pub fn new() -> Self {
        StreamingQasmParser {
            grammar: LineParser::new(),
            partial: Vec::new(),
            lineno: 1,
        }
    }

    /// The 1-based line number the parser is currently reading.
    pub fn line(&self) -> usize {
        self.lineno
    }

    /// Consumes a byte chunk, appending every statement completed by it
    /// to `out`.
    ///
    /// # Errors
    ///
    /// [`ParseQasmError`] with the offending line number on malformed
    /// statements, unknown gates, or invalid UTF-8.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<QasmStmt>) -> Result<(), ParseQasmError> {
        let mut rest = bytes;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (line, tail) = rest.split_at(nl);
            rest = &tail[1..];
            if self.partial.is_empty() {
                self.parse_bytes(line, out)?;
            } else {
                self.partial.extend_from_slice(line);
                let full = std::mem::take(&mut self.partial);
                self.parse_bytes(&full, out)?;
            }
        }
        self.partial.extend_from_slice(rest);
        Ok(())
    }

    /// Flushes a final line that had no trailing newline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`feed`](StreamingQasmParser::feed).
    pub fn finish(&mut self, out: &mut Vec<QasmStmt>) -> Result<(), ParseQasmError> {
        if !self.partial.is_empty() {
            let full = std::mem::take(&mut self.partial);
            self.parse_bytes(&full, out)?;
        }
        Ok(())
    }

    fn parse_bytes(&mut self, line: &[u8], out: &mut Vec<QasmStmt>) -> Result<(), ParseQasmError> {
        // `str::lines` strips one trailing '\r'; match it byte-for-byte.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let lineno = self.lineno;
        self.lineno += 1;
        let text =
            std::str::from_utf8(line).map_err(|_| ParseQasmError::new(lineno, "invalid UTF-8"))?;
        if let Some(stmt) = self.grammar.parse_line(text, lineno)? {
            out.push(stmt);
        }
        Ok(())
    }
}

/// A streaming importer that materializes a whole [`Circuit`] — the
/// incremental twin of [`caqr_circuit::qasm::from_qasm`], used to prove
/// the two front-ends agree. It buffers every instruction, so it is *not*
/// the bounded-memory path; that is [`crate::session::StreamSession`].
#[derive(Debug, Default)]
pub struct StreamingImporter {
    parser: StreamingQasmParser,
    scratch: Vec<QasmStmt>,
    num_qubits: usize,
    num_clbits: usize,
    instrs: Vec<Instruction>,
}

impl StreamingImporter {
    /// An importer at the start of a program.
    pub fn new() -> Self {
        StreamingImporter::default()
    }

    /// Consumes a byte chunk.
    ///
    /// # Errors
    ///
    /// [`ParseQasmError`] as from [`StreamingQasmParser::feed`].
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), ParseQasmError> {
        self.parser.feed(bytes, &mut self.scratch)?;
        self.drain();
        Ok(())
    }

    /// Ends the input and builds the circuit, applying the same deferred
    /// operand-range validation as the batch importer (declarations may
    /// follow uses; last declaration wins).
    ///
    /// # Errors
    ///
    /// [`ParseQasmError`] on a malformed final line or an operand outside
    /// the declared registers.
    pub fn finish(mut self) -> Result<Circuit, ParseQasmError> {
        self.parser.finish(&mut self.scratch)?;
        self.drain();
        let mut circuit = Circuit::new(self.num_qubits, self.num_clbits);
        for i in self.instrs {
            caqr_circuit::qasm::validate_ranges(&i, self.num_qubits, self.num_clbits)?;
            circuit.push(i);
        }
        Ok(circuit)
    }

    fn drain(&mut self) {
        for stmt in self.scratch.drain(..) {
            match stmt {
                QasmStmt::Qreg(n) => self.num_qubits = n,
                QasmStmt::Creg(n) => self.num_clbits = n,
                QasmStmt::Instr(i) => self.instrs.push(i),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caqr_circuit::qasm::{from_qasm, to_qasm};
    use caqr_circuit::{Clbit, Qubit};

    const PROGRAM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
        qreg q[3];\ncreg c[3];\nh q[0];\ncx q[0], q[1];\n\
        rz(pi/4) q[2];\nmeasure q[0] -> c[0];\nif(c[0]==1) x q[1];\n\
        reset q[0];\nmeasure q[1] -> c[1];\n";

    fn import_in_chunks(text: &str, chunk: usize) -> Circuit {
        let mut imp = StreamingImporter::new();
        for piece in text.as_bytes().chunks(chunk.max(1)) {
            imp.feed(piece).expect("feed");
        }
        imp.finish().expect("finish")
    }

    #[test]
    fn matches_batch_importer_at_every_chunk_size() {
        let batch = from_qasm(PROGRAM).expect("batch parse");
        for chunk in [1, 2, 3, 7, 16, 64, PROGRAM.len()] {
            let streamed = import_in_chunks(PROGRAM, chunk);
            assert_eq!(
                streamed.fingerprint(),
                batch.fingerprint(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn roundtrips_generated_qasm() {
        let mut c = Circuit::new(3, 2);
        c.h(Qubit::new(0));
        c.cx(Qubit::new(0), Qubit::new(1));
        c.rz(0.25, Qubit::new(2));
        c.measure_and_reset(Qubit::new(0), Clbit::new(0));
        c.cond_x(Qubit::new(1), Clbit::new(0));
        c.measure(Qubit::new(1), Clbit::new(1));
        let text = to_qasm(&c);
        let streamed = import_in_chunks(&text, 5);
        assert_eq!(streamed.fingerprint(), c.fingerprint());
    }

    #[test]
    fn final_line_without_newline() {
        let text = "qreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];";
        let batch = from_qasm(text).expect("batch parse");
        assert_eq!(import_in_chunks(text, 4).fingerprint(), batch.fingerprint());
    }

    #[test]
    fn crlf_line_endings() {
        let text = "qreg q[2];\r\ncreg c[1];\r\ncx q[0], q[1];\r\n";
        let batch = from_qasm(text).expect("batch parse");
        assert_eq!(import_in_chunks(text, 3).fingerprint(), batch.fingerprint());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut imp = StreamingImporter::new();
        imp.feed(b"qreg q[1];\n").expect("ok line");
        let err = imp.feed(b"frobnicate q[0];\n").expect_err("unknown gate");
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unknown gate"));
    }

    #[test]
    fn error_line_matches_batch_even_when_split_mid_line() {
        let text = "qreg q[1];\nh q[0]\n";
        let batch_err = from_qasm(text).expect_err("missing ;");
        let mut imp = StreamingImporter::new();
        imp.feed(&text.as_bytes()[..13]).expect("prefix ok");
        let err = imp.feed(&text.as_bytes()[13..]).expect_err("missing ;");
        assert_eq!(err.line(), batch_err.line());
        assert_eq!(err.to_string(), batch_err.to_string());
    }

    #[test]
    fn invalid_utf8_is_a_parse_error() {
        let mut imp = StreamingImporter::new();
        let err = imp
            .feed(b"qreg q[1];\n\xff\xfe h;\n")
            .expect_err("bad bytes");
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("invalid UTF-8"));
    }

    #[test]
    fn deferred_range_validation_matches_batch() {
        // Declarations after uses are legal; out-of-range operands fail
        // with the batch importer's exact message.
        let late = "h q[0];\nqreg q[1];\ncreg c[0];\n";
        assert_eq!(
            import_in_chunks(late, 2).fingerprint(),
            from_qasm(late).expect("late decl ok").fingerprint()
        );
        let oob = "qreg q[1];\nh q[3];\n";
        let batch = from_qasm(oob).expect_err("out of range");
        let mut imp = StreamingImporter::new();
        imp.feed(oob.as_bytes()).expect("parse ok");
        let err = imp.finish().expect_err("out of range");
        assert_eq!(err.to_string(), batch.to_string());
    }
}
