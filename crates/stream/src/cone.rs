//! Online causal-cone tracking over logical qubits.
//!
//! A measurement's *causal cone* is the set of qubits whose operations
//! can influence its outcome. Batch cone analysis walks a full DAG
//! backwards from each measurement; here we exploit that for
//! *scheduling* purposes only the qubit-level partition matters: two
//! qubits are in the same cone class iff a chain of multi-qubit gates
//! connects them. That partition is exactly what a union-find maintains
//! online in near-constant time per gate, with no DAG at all.
//!
//! A cone *closes* when every qubit in its class has been retired
//! (measured, with no later operations). Closed cones are the unit of
//! progress for streaming reuse: their wires are all free again.

/// Union-find over logical qubit indices with per-class retirement
/// counts. Grows on demand as qubits first appear.
#[derive(Debug, Default)]
pub struct ConeTracker {
    /// parent[i] == i for roots.
    parent: Vec<usize>,
    /// Class size, valid at roots.
    size: Vec<u32>,
    /// Retired members, valid at roots.
    retired: Vec<u32>,
    cones_closed: u64,
    peak_cone: u32,
}

impl ConeTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ConeTracker::default()
    }

    /// Ensures qubit `q` exists (as a singleton cone if new).
    pub fn touch(&mut self, q: usize) {
        while self.parent.len() <= q {
            self.parent.push(self.parent.len());
            self.size.push(1);
            self.retired.push(0);
        }
    }

    fn find(&mut self, mut q: usize) -> usize {
        while self.parent[q] != q {
            // Path halving: point at the grandparent as we walk.
            self.parent[q] = self.parent[self.parent[q]];
            q = self.parent[q];
        }
        q
    }

    /// Merges the cones of `a` and `b` (a multi-qubit gate touched both).
    pub fn merge(&mut self, a: usize, b: usize) {
        self.touch(a.max(b));
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.retired[big] += self.retired[small];
        self.peak_cone = self.peak_cone.max(self.size[big]);
    }

    /// Marks `q` retired (measured with no later operations). Counts the
    /// cone closed once every member is retired.
    ///
    /// Callers must retire each qubit at most once; the scheduler's
    /// retired-wire bookkeeping guarantees this.
    pub fn retire(&mut self, q: usize) {
        self.touch(q);
        let r = self.find(q);
        self.retired[r] += 1;
        if self.retired[r] == self.size[r] {
            self.cones_closed += 1;
        }
    }

    /// Number of cones fully closed so far.
    pub fn cones_closed(&self) -> u64 {
        self.cones_closed
    }

    /// Size of the largest cone class ever formed (1 if no merges).
    pub fn peak_cone(&self) -> usize {
        self.peak_cone.max(u32::from(!self.parent.is_empty())) as usize
    }

    /// Number of distinct qubits seen.
    pub fn qubits_seen(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_cone_closes_on_retire() {
        let mut t = ConeTracker::new();
        t.touch(0);
        assert_eq!(t.cones_closed(), 0);
        t.retire(0);
        assert_eq!(t.cones_closed(), 1);
    }

    #[test]
    fn merged_cone_needs_every_member() {
        let mut t = ConeTracker::new();
        t.merge(0, 1);
        t.merge(1, 2);
        t.retire(0);
        t.retire(2);
        assert_eq!(t.cones_closed(), 0);
        t.retire(1);
        assert_eq!(t.cones_closed(), 1);
        assert_eq!(t.peak_cone(), 3);
    }

    #[test]
    fn merge_after_partial_retirement_carries_counts() {
        let mut t = ConeTracker::new();
        t.touch(0);
        t.retire(0);
        assert_eq!(t.cones_closed(), 1);
        // A disjoint pair, one side retired, then merged: the union
        // remembers the retirement.
        t.merge(1, 2);
        t.retire(1);
        t.merge(2, 3);
        t.retire(3);
        assert_eq!(t.cones_closed(), 1);
        t.retire(2);
        assert_eq!(t.cones_closed(), 2);
    }

    #[test]
    fn independent_cones_close_independently() {
        let mut t = ConeTracker::new();
        for q in 0..6 {
            t.touch(q);
        }
        t.merge(0, 1);
        t.merge(2, 3);
        t.retire(0);
        t.retire(1);
        assert_eq!(t.cones_closed(), 1);
        t.retire(4);
        assert_eq!(t.cones_closed(), 2);
        t.retire(2);
        t.retire(3);
        assert_eq!(t.cones_closed(), 3);
        assert_eq!(t.qubits_seen(), 6);
    }
}
