//! Measures the cost of one `poll(2)` cycle as registration count grows.
//!
//! ```text
//! cargo run --release -p caqr-reactor --example poll_cost
//! ```

use caqr_reactor::{Event, Interest, Poller, Token};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;

    for count in [8usize, 64, 256, 512] {
        let mut poller = Poller::new()?;
        let mut pairs = Vec::new();
        for index in 0..count {
            let client = TcpStream::connect(addr)?;
            let (server, _) = listener.accept()?;
            server.set_nonblocking(true)?;
            poller.register(&server, Token(index), Interest::READABLE)?;
            pairs.push((client, server));
        }

        let mut events: Vec<Event> = Vec::new();
        let rounds = 2000;
        let mut worst = Duration::ZERO;
        let started = Instant::now();
        for _ in 0..rounds {
            let lap = Instant::now();
            poller.poll(&mut events, Some(Duration::ZERO))?;
            worst = worst.max(lap.elapsed());
        }
        let total = started.elapsed();
        println!(
            "{count:4} fds: mean {:6.1} us, worst {:8.1} us",
            total.as_secs_f64() * 1e6 / rounds as f64,
            worst.as_secs_f64() * 1e6,
        );
    }
    Ok(())
}
