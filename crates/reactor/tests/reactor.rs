//! Integration tests for the reactor primitives, against real sockets on
//! ephemeral ports (the same style as the caqr-serve integration suite).

#![cfg(unix)]

use caqr_reactor::{bind_reuseport, Event, Interest, Poller, TimerWheel, Token};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

fn poll_until(
    poller: &mut Poller,
    events: &mut Vec<Event>,
    deadline: Duration,
    mut pred: impl FnMut(&[Event]) -> bool,
) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        poller
            .poll(events, Some(Duration::from_millis(100)))
            .expect("poll failed");
        if pred(events) {
            return true;
        }
    }
    false
}

#[test]
fn poller_reports_listener_and_stream_readiness() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();

    let mut poller = Poller::new().unwrap();
    poller
        .register(&listener, Token(0), Interest::READABLE)
        .unwrap();
    assert_eq!(poller.len(), 1);

    // Nothing connected yet: a short poll should time out empty.
    let mut events = Vec::new();
    poller
        .poll(&mut events, Some(Duration::from_millis(20)))
        .unwrap();
    assert!(events.is_empty(), "unexpected readiness: {events:?}");

    // Connect, then the listener must report readable.
    let mut client = TcpStream::connect(addr).unwrap();
    assert!(
        poll_until(&mut poller, &mut events, Duration::from_secs(5), |evs| {
            evs.iter().any(|e| e.token == Token(0) && e.readable)
        }),
        "listener never became readable"
    );

    let (stream, _) = listener.accept().unwrap();
    stream.set_nonblocking(true).unwrap();
    poller
        .register(&stream, Token(1), Interest::READABLE)
        .unwrap();

    // The accepted socket is idle; write from the client to make it ready.
    client.write_all(b"ping").unwrap();
    assert!(
        poll_until(&mut poller, &mut events, Duration::from_secs(5), |evs| {
            evs.iter().any(|e| e.token == Token(1) && e.readable)
        }),
        "stream never became readable"
    );
    let mut buf = [0u8; 8];
    let n = (&stream).read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"ping");

    // A fresh socket should be writable immediately.
    poller.reregister(Token(1), Interest::BOTH).unwrap();
    assert!(
        poll_until(&mut poller, &mut events, Duration::from_secs(5), |evs| {
            evs.iter().any(|e| e.token == Token(1) && e.writable)
        }),
        "stream never became writable"
    );

    // Peer disconnect surfaces as readable and/or closed.
    drop(client);
    assert!(
        poll_until(&mut poller, &mut events, Duration::from_secs(5), |evs| {
            evs.iter()
                .any(|e| e.token == Token(1) && (e.readable || e.closed))
        }),
        "peer hangup never surfaced"
    );

    poller.deregister(Token(1));
    poller.deregister(Token(0));
    poller.deregister(Token(0)); // double-deregister is a no-op
    assert!(poller.is_empty());
}

#[test]
fn register_rejects_duplicate_tokens() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut poller = Poller::new().unwrap();
    poller
        .register(&listener, Token(3), Interest::READABLE)
        .unwrap();
    let err = poller
        .register(&listener, Token(3), Interest::READABLE)
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    let err = poller.reregister(Token(9), Interest::BOTH).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn waker_interrupts_a_blocked_poll_from_another_thread() {
    let mut poller = Poller::new().unwrap();
    let waker = poller.waker();

    let handle = thread::spawn(move || {
        thread::sleep(Duration::from_millis(50));
        waker.wake();
    });

    // Block "forever": only the waker can end this poll.
    let start = Instant::now();
    let mut events = Vec::new();
    poller
        .poll(&mut events, Some(Duration::from_secs(30)))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "waker did not interrupt the poll"
    );
    assert!(events.is_empty());
    handle.join().unwrap();

    // Wakes coalesce and drain: a second poll times out quietly.
    let start = Instant::now();
    poller
        .poll(&mut events, Some(Duration::from_millis(30)))
        .unwrap();
    assert!(start.elapsed() >= Duration::from_millis(25));
}

#[test]
fn timer_wheel_fires_in_order_and_honors_cancel() {
    let mut wheel = TimerWheel::new(8, Duration::from_millis(1));
    let start = Instant::now();
    let _early = wheel.insert(Duration::from_millis(3), 1);
    let cancelled = wheel.insert(Duration::from_millis(3), 2);
    // Beyond one revolution (8 slots x 1ms) to exercise the rounds path.
    let _late = wheel.insert(Duration::from_millis(20), 3);
    assert_eq!(wheel.len(), 3);

    wheel.cancel(cancelled);
    wheel.cancel(cancelled); // double-cancel is a no-op
    assert_eq!(wheel.len(), 2);

    let mut fired = Vec::new();
    while fired.len() < 2 && start.elapsed() < Duration::from_secs(5) {
        if let Some(wait) = wheel.next_timeout(Instant::now()) {
            thread::sleep(wait.min(Duration::from_millis(5)));
        }
        wheel.advance(Instant::now(), &mut fired);
    }
    assert_eq!(fired, vec![1, 3], "expected 1 then 3 (2 was cancelled)");
    assert!(wheel.is_empty());
    assert!(wheel.next_timeout(Instant::now()).is_none());

    // A timer must never fire early.
    let elapsed_at_first = start.elapsed();
    assert!(
        elapsed_at_first >= Duration::from_millis(3),
        "fired after {elapsed_at_first:?}"
    );
}

#[test]
fn reuseport_allows_two_listeners_on_one_port() {
    let first = bind_reuseport("127.0.0.1:0".parse().unwrap()).expect("first reuseport bind");
    let addr = first.local_addr().unwrap();
    let second = bind_reuseport(addr).expect("second reuseport bind on the same port");

    // Both listeners accept: connect twice and serve one from each.
    first.set_nonblocking(true).unwrap();
    second.set_nonblocking(true).unwrap();
    let _c1 = TcpStream::connect(addr).unwrap();
    let _c2 = TcpStream::connect(addr).unwrap();

    let start = Instant::now();
    let mut accepted = 0;
    while accepted < 2 && start.elapsed() < Duration::from_secs(5) {
        for listener in [&first, &second] {
            match listener.accept() {
                Ok(_) => accepted += 1,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept failed: {e}"),
            }
        }
        thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(accepted, 2, "kernel did not deliver both connections");

    // IPv6 sharding is explicitly unsupported.
    let err = bind_reuseport("[::1]:0".parse().unwrap()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
}
