//! A hashed timer wheel for connection deadlines.
//!
//! The serve tier needs thousands of coarse timers (keep-alive idle
//! eviction, slow-request stalls) where insert/cancel dominate and firing
//! a few milliseconds late is fine. A hashed wheel gives O(1) insert and
//! cancel with a fixed-size slot array; each slot holds the timers whose
//! deadline hashes onto it, tagged with how many full wheel revolutions
//! remain.

use std::time::{Duration, Instant};

/// Handle returned by [`TimerWheel::insert`]; pass to [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerKey {
    id: u64,
    slot: usize,
}

#[derive(Debug)]
struct Entry {
    id: u64,
    /// Full revolutions left before this entry fires.
    rounds: u32,
    data: u64,
}

/// Fixed-slot hashed timer wheel. `data` is an opaque caller payload
/// (typically a connection token) handed back on expiry.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    /// Slot that `anchor` corresponds to; advanced as time passes.
    cursor: usize,
    anchor: Instant,
    next_id: u64,
    live: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick` granularity. The wheel spans
    /// `slots * tick` before timers need multiple revolutions; deadlines
    /// are rounded up to the next tick.
    pub fn new(slots: usize, tick: Duration) -> TimerWheel {
        assert!(slots >= 2, "timer wheel needs at least 2 slots");
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            anchor: Instant::now(),
            next_id: 0,
            live: 0,
        }
    }

    /// The number of pending (not cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Arms a timer `after` from now carrying `data`.
    pub fn insert(&mut self, after: Duration, data: u64) -> TimerKey {
        // Round up: never fire early.
        let ticks = after.as_nanos().div_ceil(self.tick.as_nanos()).max(1);
        let ticks = usize::try_from(ticks).unwrap_or(usize::MAX);
        let slot = (self.cursor + ticks) % self.slots.len();
        // `ticks - 1`: at exactly one revolution the cursor arrives back at
        // this slot after `slots` ticks, so no extra round remains.
        let rounds = ((ticks - 1) / self.slots.len()) as u32;
        let id = self.next_id;
        self.next_id += 1;
        self.slots[slot].push(Entry { id, rounds, data });
        self.live += 1;
        TimerKey { id, slot }
    }

    /// Disarms a timer. Harmless on an already-fired or already-cancelled
    /// key (connection teardown races with expiry).
    ///
    /// Removal is eager — tombstoning instead would let a rearm-heavy
    /// workload (every served request cancels and re-arms an idle timer)
    /// pile dead entries into the slots faster than the cursor reaps
    /// them, and [`TimerWheel::next_timeout`] would grind through them
    /// all on every poll cycle.
    pub fn cancel(&mut self, key: TimerKey) {
        let slot = &mut self.slots[key.slot];
        if let Some(index) = slot.iter().position(|e| e.id == key.id) {
            slot.swap_remove(index);
            self.live -= 1;
        }
    }

    /// Rotates the wheel up to `now`, pushing the payloads of expired
    /// timers into `fired` (unordered within a call).
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<u64>) {
        while now.duration_since(self.anchor) >= self.tick {
            self.anchor += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let slot = &mut self.slots[self.cursor];
            let mut index = 0;
            while index < slot.len() {
                if slot[index].rounds == 0 {
                    fired.push(slot.swap_remove(index).data);
                    self.live -= 1;
                } else {
                    slot[index].rounds -= 1;
                    index += 1;
                }
            }
        }
    }

    /// How long until the earliest pending timer can fire — the poll
    /// timeout for a loop driving this wheel. `None` when no timers are
    /// pending (block indefinitely). Scans the live entries so a wheel
    /// full of long idle timers parks the loop for seconds, not one tick.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.live == 0 {
            return None;
        }
        let n = self.slots.len();
        let mut min_ticks = usize::MAX;
        for (index, slot) in self.slots.iter().enumerate() {
            // Ticks until the cursor reaches this slot (1..=n).
            let arrival = (index + n - self.cursor - 1) % n + 1;
            if arrival >= min_ticks {
                continue;
            }
            for entry in slot {
                let ticks = arrival + entry.rounds as usize * n;
                min_ticks = min_ticks.min(ticks);
            }
        }
        debug_assert_ne!(min_ticks, usize::MAX, "live > 0 but no entries found");
        let due = self.anchor + self.tick * min_ticks as u32;
        Some(due.saturating_duration_since(now))
    }
}
