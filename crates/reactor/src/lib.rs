//! caqr-reactor: a dependency-free readiness-driven event loop for the
//! caqr serve tier.
//!
//! The serve tier needs to hold hundreds of cheap keep-alive connections
//! per core without one OS thread per socket. This crate provides the
//! three primitives that make that possible, in the repo's established
//! no-tokio/no-libc-crate style (the only unsafe code is a small
//! `extern "C"` surface in the private `sys` module, mirroring
//! `caqr-serve`'s signal handling):
//!
//! - [`Poller`] — a level-triggered `poll(2)` registration set with a
//!   self-pipe [`Waker`] so worker threads (and signal handlers, via
//!   [`notify_raw`]) can interrupt a blocked poll.
//! - [`TimerWheel`] — a hashed timer wheel for keep-alive idle eviction
//!   and slow-request stall deadlines: O(1) insert/cancel, coarse ticks.
//! - [`bind_reuseport`] — an `SO_REUSEPORT` listener factory so N reactor
//!   shards can each own a listener on one port and let the kernel
//!   load-balance accepts.
//!
//! # Portability
//!
//! The FFI layer is Unix-only (`poll`, `pipe`, `fcntl`, `socket`,
//! `setsockopt`, `getrlimit`). Non-Unix builds still compile — every
//! entry point returns `io::ErrorKind::Unsupported` — so downstream
//! crates can keep a portable fallback path (caqr-serve's threaded
//! backend) without cfg gymnastics. `SO_REUSEPORT` sharding additionally
//! requires a kernel that balances accepts across reuseport sockets
//! (Linux ≥ 3.9; BSDs accept the option with different semantics).

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
mod sys;

mod poller;
mod timer;

pub use poller::{Event, Interest, Poller, Source, Token, Waker};
pub use sys::{bind_reuseport, notify_raw, raise_nofile_limit, WakePipe};
pub use timer::{TimerKey, TimerWheel};
