//! The readiness core: a `poll(2)`-backed registration set with a
//! self-pipe [`Waker`] for cross-thread (and signal-context) wakeups.
//!
//! Level-triggered: an fd that stays readable keeps reporting readable.
//! Registrations are keyed by caller-chosen [`Token`]s — small dense
//! integers indexed straight into a slab, so register/modify/deregister
//! are O(1) and each [`Poller::poll`] rebuilds the `pollfd` array in one
//! linear sweep (a few KiB of copying even at 512 connections, far below
//! the syscall cost it feeds).

use crate::sys;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Identifies one registration. Callers pick the value (slab index,
/// listener id, ...) and get it back in every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction — the registration stays in the set (errors and
    /// hangups are still reported) but readiness is muted. Used for
    /// backpressure while a request is with the worker pool.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// The fd is readable.
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state — close it.
    pub closed: bool,
}

/// Anything with a pollable file descriptor. Blanket-implemented for every
/// `AsRawFd` type on Unix; non-Unix builds carry stub impls so the crate
/// still type-checks (the poller itself reports `Unsupported` there).
pub trait Source {
    /// The raw fd to place in the poll set.
    fn raw_fd(&self) -> i32;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl Source for std::net::TcpListener {
    fn raw_fd(&self) -> i32 {
        -1
    }
}

#[cfg(not(unix))]
impl Source for std::net::TcpStream {
    fn raw_fd(&self) -> i32 {
        -1
    }
}

#[derive(Debug, Clone, Copy)]
struct Registration {
    fd: i32,
    interest: Interest,
}

/// A registration set plus the machinery to wait on it.
#[derive(Debug)]
pub struct Poller {
    slots: Vec<Option<Registration>>,
    live: usize,
    wake: Arc<sys::WakePipe>,
    // Scratch reused across polls: the pollfd array and the token of each
    // entry (index 0 is always the wake pipe).
    pollfds: Vec<sys::PollFd>,
    tokens: Vec<usize>,
}

impl Poller {
    /// Creates an empty poller (with its internal wake pipe).
    ///
    /// # Errors
    ///
    /// Pipe creation failure, or `Unsupported` off Unix.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            slots: Vec::new(),
            live: 0,
            wake: Arc::new(sys::WakePipe::new()?),
            pollfds: Vec::new(),
            tokens: Vec::new(),
        })
    }

    /// A handle that interrupts [`Poller::poll`] from any thread.
    pub fn waker(&self) -> Waker {
        Waker {
            pipe: Arc::clone(&self.wake),
        }
    }

    /// The number of live registrations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers `source` under `token`.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the token is taken.
    pub fn register(
        &mut self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if self.slots.len() <= token.0 {
            self.slots.resize(token.0 + 1, None);
        }
        if self.slots[token.0].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("token {} is already registered", token.0),
            ));
        }
        self.slots[token.0] = Some(Registration {
            fd: source.raw_fd(),
            interest,
        });
        self.live += 1;
        Ok(())
    }

    /// Changes the interest set of an existing registration.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown token.
    pub fn reregister(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        match self.slots.get_mut(token.0).and_then(Option::as_mut) {
            Some(reg) => {
                reg.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("token {} is not registered", token.0),
            )),
        }
    }

    /// Removes a registration. Unknown tokens are a no-op (closing a
    /// connection twice must not poison the loop).
    pub fn deregister(&mut self, token: Token) {
        if let Some(slot) = self.slots.get_mut(token.0) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Waits for readiness, filling `events`. Returns after the timeout,
    /// on any readiness, or when a [`Waker`] fires (which yields an empty
    /// or shorter event list — callers re-check their own state after
    /// every poll). `None` blocks until something happens.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures (`EINTR` is absorbed as a wakeup).
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.pollfds.clear();
        self.tokens.clear();

        self.pollfds.push(sys::PollFd {
            fd: self.wake.read_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
        self.tokens.push(usize::MAX);

        for (index, slot) in self.slots.iter().enumerate() {
            let Some(reg) = slot else { continue };
            let mut mask = 0i16;
            if reg.interest.readable {
                mask |= sys::POLLIN;
            }
            if reg.interest.writable {
                mask |= sys::POLLOUT;
            }
            self.pollfds.push(sys::PollFd {
                fd: reg.fd,
                events: mask,
                revents: 0,
            });
            self.tokens.push(index);
        }

        let timeout_ms = match timeout {
            None => -1,
            // Round UP to whole milliseconds: `poll(2)` has no finer
            // granularity, and truncating a sub-millisecond timeout to 0
            // turns every short park into a busy spin — on a single core
            // that spin starves the very peer being waited on.
            Some(t) => t.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
        };
        let ready = sys::poll_fds(&mut self.pollfds, timeout_ms)?;
        if ready == 0 {
            return Ok(());
        }

        if self.pollfds[0].revents != 0 {
            self.wake.drain();
        }
        for (pollfd, &token) in self.pollfds.iter().zip(&self.tokens).skip(1) {
            let got = pollfd.revents;
            if got == 0 {
                continue;
            }
            events.push(Event {
                token: Token(token),
                readable: got & sys::POLLIN != 0,
                writable: got & sys::POLLOUT != 0,
                closed: got & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

/// Interrupts a [`Poller::poll`] wait from another thread. Cloneable and
/// cheap; wakes are coalesced (a full pipe already means "wake up").
#[derive(Debug, Clone)]
pub struct Waker {
    pipe: Arc<sys::WakePipe>,
}

impl Waker {
    /// Wakes the poller this came from.
    pub fn wake(&self) {
        self.pipe.notify();
    }
}
