//! The crate's single FFI surface: `poll(2)`, `pipe(2)`/`fcntl(2)` for the
//! self-pipe wakeup, `socket(2)`/`setsockopt(2)`/`bind(2)`/`listen(2)` for
//! `SO_REUSEPORT` listener sharding, and `setrlimit(2)` for the
//! many-connections posture.
//!
//! The build environment vendors no `libc` crate, so — mirroring the
//! `signal(2)` declaration in caqr-serve's signal module — the handful of
//! syscalls the reactor needs are declared here directly; std already
//! links libc. Everything unsafe in the crate lives in this module, behind
//! safe wrappers. Constants are declared per-OS: the Linux values are the
//! tested path (CI and the benchmark environment); other Unixes get the
//! BSD-family values on a best-effort basis, and non-Unix builds compile
//! but report [`std::io::ErrorKind::Unsupported`] at runtime (callers fall
//! back to blocking I/O — see the crate docs for the portability story).

#[cfg(unix)]
pub use imp::*;

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::io::{FromRawFd, RawFd};

    // ---- poll(2) --------------------------------------------------------

    /// `poll(2)` readiness flags (identical across Linux and the BSDs).
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// One `struct pollfd`, laid out exactly as `poll(2)` expects.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = core::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, ...) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Polls `fds` for readiness. `timeout_ms` of `-1` blocks forever.
    ///
    /// `EINTR` (a signal landed mid-wait) is reported as `Ok(0)` — callers
    /// loop anyway, and a signal is exactly the moment to re-check state.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of repr(C)
        // pollfd structs; the kernel writes only within its bounds.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        Err(err)
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
        // SAFETY: fcntl on an fd this process owns; F_GETFL/F_SETFL take
        // one int argument each.
        let flags = unsafe { fcntl(fd, F_GETFL, 0) };
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: as above.
        if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    // ---- the self-pipe --------------------------------------------------

    /// A non-blocking `pipe(2)` pair used to interrupt a `poll(2)` wait
    /// from another thread (or from a signal handler — the write side is a
    /// single `write(2)`, which is async-signal-safe).
    #[derive(Debug)]
    pub struct WakePipe {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl WakePipe {
        /// Creates the pipe with both ends non-blocking.
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [-1i32; 2];
            // SAFETY: `fds` is a valid 2-int buffer for pipe(2) to fill.
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            let this = WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            set_nonblocking_fd(this.read_fd)?;
            set_nonblocking_fd(this.write_fd)?;
            Ok(this)
        }

        /// The fd to register for readability in a poll set.
        pub fn read_fd(&self) -> RawFd {
            self.read_fd
        }

        /// The fd a signal handler may `write(2)` to ([`notify_raw`]).
        pub fn write_fd(&self) -> RawFd {
            self.write_fd
        }

        /// Makes the read end readable, waking any poller parked on it.
        /// A full pipe means a wakeup is already pending — fine.
        pub fn notify(&self) {
            notify_raw(self.write_fd);
        }

        /// Consumes every pending wakeup byte.
        pub fn drain(&self) {
            let mut scratch = [0u8; 64];
            loop {
                // SAFETY: reading into a valid stack buffer on an fd we own.
                let n = unsafe { read(self.read_fd, scratch.as_mut_ptr(), scratch.len()) };
                if n <= 0 {
                    return; // EAGAIN (drained), EOF, or a transient error
                }
            }
        }

        /// Parks the calling thread until a notification arrives or
        /// `timeout_ms` passes (`-1` blocks forever). Returns whether a
        /// wakeup was consumed — the single-pipe analogue of a full
        /// `Poller` for threads that only wait on one signal (e.g. the main
        /// thread parked until shutdown).
        ///
        /// # Errors
        ///
        /// Propagates `poll(2)` failures.
        pub fn wait(&self, timeout_ms: i32) -> io::Result<bool> {
            let mut fds = [PollFd {
                fd: self.read_fd,
                events: POLLIN,
                revents: 0,
            }];
            let ready = poll_fds(&mut fds, timeout_ms)?;
            if ready > 0 && fds[0].revents != 0 {
                self.drain();
                return Ok(true);
            }
            Ok(false)
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            // SAFETY: closing fds this struct owns exactly once.
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    /// One best-effort byte down a wake pipe's write end. Only calls
    /// `write(2)`, so it is safe from signal-handler context.
    pub fn notify_raw(write_fd: RawFd) {
        let byte = [1u8];
        // SAFETY: a single write(2) of one byte from a valid buffer; the
        // result (including EAGAIN on a full pipe) is deliberately ignored.
        unsafe {
            let _ = write(write_fd, byte.as_ptr(), 1);
        }
    }

    // ---- SO_REUSEPORT listeners -----------------------------------------

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(target_os = "linux")]
    const SO_REUSEADDR: i32 = 2;
    #[cfg(not(target_os = "linux"))]
    const SO_REUSEADDR: i32 = 0x0004;
    #[cfg(target_os = "linux")]
    const SO_REUSEPORT: i32 = 15;
    #[cfg(not(target_os = "linux"))]
    const SO_REUSEPORT: i32 = 0x0200;

    /// `struct sockaddr_in`, Linux layout (16 bytes). The BSD layout has a
    /// leading length byte folded into the family field; `SIN_FAMILY`
    /// below encodes the difference.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    #[cfg(target_os = "linux")]
    fn sin_family() -> u16 {
        AF_INET as u16
    }
    #[cfg(not(target_os = "linux"))]
    fn sin_family() -> u16 {
        // BSD sockaddr: u8 len (may be zero) then u8 family; little-endian
        // struct field order makes `family << 8 | len` the u16 view.
        (AF_INET as u16) << 8
    }

    fn set_bool_opt(fd: RawFd, name: i32) -> io::Result<()> {
        let one: i32 = 1;
        // SAFETY: setsockopt with a 4-byte int option on an owned fd.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                name,
                (&one as *const i32).cast::<u8>(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Binds an IPv4 TCP listener with `SO_REUSEPORT` (and `SO_REUSEADDR`)
    /// set *before* `bind(2)` — the part `std::net::TcpListener::bind`
    /// cannot do — so N shard listeners can share one port and let the
    /// kernel spread incoming connections across them.
    pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "SO_REUSEPORT sharding supports IPv4 addresses only",
            ));
        };

        // SAFETY: plain socket(2); the fd is owned below (closed on every
        // error path via the guard).
        let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        struct FdGuard(RawFd, bool);
        impl Drop for FdGuard {
            fn drop(&mut self) {
                if self.1 {
                    // SAFETY: closing an fd this guard still owns.
                    unsafe {
                        close(self.0);
                    }
                }
            }
        }
        let mut guard = FdGuard(fd, true);

        set_bool_opt(fd, SO_REUSEADDR)?;
        set_bool_opt(fd, SO_REUSEPORT)?;

        let sockaddr = SockAddrIn {
            family: sin_family(),
            port_be: v4.port().to_be(),
            addr_be: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        // SAFETY: `sockaddr` is a valid, fully-initialized sockaddr_in.
        let rc = unsafe {
            bind(
                fd,
                (&sockaddr as *const SockAddrIn).cast::<u8>(),
                std::mem::size_of::<SockAddrIn>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: listen(2) on the bound fd.
        if unsafe { listen(fd, 1024) } < 0 {
            return Err(io::Error::last_os_error());
        }

        guard.1 = false; // ownership moves into the TcpListener
                         // SAFETY: `fd` is a freshly-created, bound, listening TCP socket
                         // that nothing else owns.
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }

    // ---- setrlimit(2) ---------------------------------------------------

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    /// Raises the soft open-file limit to the hard limit and returns the
    /// resulting soft limit — the "hold thousands of sockets" posture.
    pub fn raise_nofile_limit() -> io::Result<u64> {
        let mut rlim = Rlimit { cur: 0, max: 0 };
        // SAFETY: getrlimit fills the valid struct we hand it.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut rlim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if rlim.cur < rlim.max {
            rlim.cur = rlim.max;
            // SAFETY: setrlimit reads the valid struct we hand it.
            if unsafe { setrlimit(RLIMIT_NOFILE, &rlim) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(rlim.cur)
    }
}

#[cfg(not(unix))]
pub use fallback::*;

#[cfg(not(unix))]
mod fallback {
    use std::io;
    use std::net::{SocketAddr, TcpListener};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "caqr-reactor readiness I/O requires a Unix platform",
        )
    }

    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(unsupported())
    }

    #[derive(Debug)]
    pub struct WakePipe;

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            Err(unsupported())
        }
        pub fn read_fd(&self) -> i32 {
            -1
        }
        pub fn write_fd(&self) -> i32 {
            -1
        }
        pub fn notify(&self) {}
        pub fn drain(&self) {}
        pub fn wait(&self, _timeout_ms: i32) -> io::Result<bool> {
            Err(unsupported())
        }
    }

    pub fn notify_raw(_write_fd: i32) {}

    pub fn bind_reuseport(_addr: SocketAddr) -> io::Result<TcpListener> {
        Err(unsupported())
    }

    pub fn raise_nofile_limit() -> io::Result<u64> {
        Ok(0)
    }
}
