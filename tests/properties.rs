//! Property-based tests over the core invariants, on randomly generated
//! circuits and graphs.

use caqr::analysis::ReuseAnalysis;
use caqr::router::{route, RouterOptions};
use caqr::transform::{self, ReusePlan};
use caqr_arch::Device;
use caqr_circuit::{Circuit, Clbit, Gate, Qubit};
use caqr_graph::{coloring, gen, matching};
use caqr_sim::exact;
use proptest::prelude::*;

/// A random shallow circuit on `n` qubits ending in measure-all.
fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (
        2..=max_qubits,
        proptest::collection::vec((0..6u8, 0..100usize, 0..100usize), 1..max_gates),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n, n);
            for (kind, a, b) in ops {
                let qa = Qubit::new(a % n);
                let qb = Qubit::new(b % n);
                match kind {
                    0 => c.h(qa),
                    1 => c.t(qa),
                    2 => c.x(qa),
                    3 if qa != qb => c.cx(qa, qb),
                    4 if qa != qb => c.cz(qa, qb),
                    5 => c.rz(0.3 + a as f64 / 50.0, qa),
                    _ => c.h(qa),
                }
            }
            c.measure_all();
            c
        })
}

fn distributions_match(a: &Circuit, b: &Circuit, mask_bits: usize) -> bool {
    let da: std::collections::BTreeMap<u64, f64> =
        exact::distribution(a).unwrap().into_iter().collect();
    let db = exact::distribution(b).unwrap();
    let mask = (1u64 << mask_bits) - 1;
    let mut merged: std::collections::BTreeMap<u64, f64> = Default::default();
    for (v, p) in db {
        *merged.entry(v & mask).or_insert(0.0) += p;
    }
    da.iter().all(|(v, p)| {
        let got = merged.get(v).copied().unwrap_or(0.0);
        (got - p).abs() < 1e-6
    }) && merged.iter().all(|(v, p)| {
        let want = da.get(v).copied().unwrap_or(0.0);
        (want - p).abs() < 1e-6
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Applying any single valid reuse pair preserves the output
    /// distribution over the original classical bits.
    #[test]
    fn reuse_transform_preserves_distribution(circuit in arb_circuit(5, 14)) {
        let analysis = ReuseAnalysis::of(&circuit);
        for pair in analysis.candidate_pairs().into_iter().take(3) {
            let t = transform::apply(&circuit, &ReusePlan::from_pairs([pair]))
                .expect("valid pairs apply cleanly");
            prop_assert!(t.circuit.num_qubits() < circuit.num_qubits()
                || circuit.active_qubits().len() < circuit.num_qubits());
            prop_assert!(
                distributions_match(&circuit, &t.circuit, circuit.num_clbits()),
                "pair {pair} changed the distribution"
            );
        }
    }

    /// Valid reuse pairs never create a dependence cycle; invalid ones are
    /// rejected by the transform.
    #[test]
    fn candidate_pairs_always_apply(circuit in arb_circuit(6, 18)) {
        let analysis = ReuseAnalysis::of(&circuit);
        for pair in analysis.candidate_pairs() {
            prop_assert!(
                transform::apply(&circuit, &ReusePlan::from_pairs([pair])).is_ok(),
                "analysis said {pair} is valid but the transform rejected it"
            );
        }
    }

    /// Depth never decreases when a reuse dependency is added.
    #[test]
    fn reuse_never_shrinks_logical_depth(circuit in arb_circuit(5, 14)) {
        let analysis = ReuseAnalysis::of(&circuit);
        let d0 = circuit.depth();
        for pair in analysis.candidate_pairs().into_iter().take(3) {
            let t = transform::apply(&circuit, &ReusePlan::from_pairs([pair])).unwrap();
            prop_assert!(t.circuit.depth() >= d0);
        }
    }

    /// Both routers always produce hardware-compliant circuits that keep
    /// the output distribution (over the original clbits) intact.
    #[test]
    fn routing_is_sound(circuit in arb_circuit(4, 10)) {
        let device = Device::mumbai(11);
        for opts in [RouterOptions::baseline(), RouterOptions::sr()] {
            let routed = route(&circuit, &device, opts).unwrap();
            prop_assert!(routed.is_hardware_compliant(&device));
            let (compact, _) = routed.circuit.compact_qubits();
            prop_assert!(
                distributions_match(&circuit, &compact, circuit.num_clbits()),
                "routing with {opts:?} changed the distribution"
            );
        }
    }

    /// Graph-algorithm invariants on random graphs.
    #[test]
    fn coloring_and_matching_invariants(n in 3usize..12, density in 0.1f64..0.7, seed in 0u64..500) {
        let g = gen::random_graph(n, density, seed);
        let col = coloring::dsatur(&g);
        prop_assert!(col.is_proper(&g));
        prop_assert!(col.num_colors() <= g.max_degree() + 1, "Brooks-style bound");
        let m = matching::maximum(&g);
        prop_assert!(m.is_valid(&g));
        let greedy = matching::greedy_maximal(&g, |_, _| 1);
        prop_assert!(m.len() >= greedy.len());
        // Greedy maximal is at least half of maximum.
        prop_assert!(2 * greedy.len() >= m.len());
    }

    /// Peephole optimization never changes the output distribution and
    /// never grows the circuit.
    #[test]
    fn peephole_preserves_distribution(circuit in arb_circuit(4, 16)) {
        let opt = caqr_circuit::optimize::peephole(&circuit);
        prop_assert!(opt.len() <= circuit.len());
        prop_assert!(
            distributions_match(&circuit, &opt, circuit.num_clbits()),
            "peephole changed semantics"
        );
        // Idempotent.
        let again = caqr_circuit::optimize::peephole(&opt);
        prop_assert_eq!(again.len(), opt.len());
    }

    /// TVD is a metric-ish quantity: within [0, 1], zero on identical
    /// histograms.
    #[test]
    fn tvd_bounds(values in proptest::collection::vec(0u64..8, 1..50)) {
        use caqr_sim::{metrics, Counts};
        let mut counts = Counts::new(3);
        for v in &values {
            counts.record(*v);
        }
        prop_assert!(metrics::tvd_counts(&counts, &counts) < 1e-12);
        let mut other = Counts::new(3);
        other.record(values[0] ^ 0b111);
        let d = metrics::tvd_counts(&counts, &other);
        prop_assert!((0.0..=1.0).contains(&d));
    }
}

/// Non-proptest regression: mid-circuit measurement bookkeeping through
/// the whole stack on a hand-built dynamic circuit.
#[test]
fn dynamic_circuit_pipeline_regression() {
    let mut c = Circuit::new(3, 4);
    c.h(Qubit::new(0));
    c.cx(Qubit::new(0), Qubit::new(1));
    c.measure(Qubit::new(0), Clbit::new(0));
    c.cond_x(Qubit::new(0), Clbit::new(0));
    c.h(Qubit::new(0));
    c.cx(Qubit::new(0), Qubit::new(2));
    c.measure(Qubit::new(0), Clbit::new(3));
    c.measure(Qubit::new(1), Clbit::new(1));
    c.measure(Qubit::new(2), Clbit::new(2));
    assert_eq!(c.mid_circuit_measurement_count(), 1);
    assert_eq!(c.count_gates(|g| *g == Gate::Measure), 4);
    let device = Device::mumbai(1);
    let routed = route(&c, &device, RouterOptions::sr()).unwrap();
    assert!(routed.is_hardware_compliant(&device));
    let (compact, _) = routed.circuit.compact_qubits();
    let da = exact::distribution(&c).unwrap();
    let db = exact::distribution(&compact).unwrap();
    let ma: std::collections::BTreeMap<u64, f64> = da.into_iter().collect();
    let mut mb: std::collections::BTreeMap<u64, f64> = Default::default();
    for (v, p) in db {
        *mb.entry(v & 0b1111).or_insert(0.0) += p;
    }
    for (v, p) in &ma {
        assert!(
            (mb.get(v).copied().unwrap_or(0.0) - p).abs() < 1e-9,
            "{v:04b}"
        );
    }
}
