//! Cross-crate integration tests: every benchmark through every compile
//! strategy, with hardware-compliance and semantic checks.

use caqr::{compile, Strategy};
use caqr_arch::Device;
use caqr_benchmarks::suite;
use caqr_sim::Executor;

const STRATEGIES: [Strategy; 6] = [
    Strategy::Baseline,
    Strategy::QsMaxReuse,
    Strategy::QsMinDepth,
    Strategy::QsMinSwap,
    Strategy::QsMaxEsp,
    Strategy::Sr,
];

fn device_for(n: usize) -> Device {
    if n <= 27 {
        Device::mumbai(1)
    } else {
        Device::scaled_heavy_hex(n, 1)
    }
}

#[test]
fn regular_suite_all_strategies_hardware_compliant() {
    for bench in suite::regular_suite() {
        let device = device_for(bench.circuit.num_qubits());
        for strategy in STRATEGIES {
            let report = compile(&bench.circuit, &device, strategy)
                .unwrap_or_else(|e| panic!("{} under {strategy}: {e}", bench.name));
            for instr in &report.circuit {
                if instr.is_two_qubit() {
                    assert!(
                        device
                            .topology()
                            .are_coupled(instr.qubits[0].index(), instr.qubits[1].index()),
                        "{} under {strategy}: gate on non-coupled pair {:?}",
                        bench.name,
                        instr.qubits
                    );
                }
            }
            assert!(report.qubits <= device.num_qubits());
            assert!(report.esp > 0.0 && report.esp <= 1.0);
        }
    }
}

#[test]
fn deterministic_benchmarks_stay_correct_through_every_strategy() {
    for bench in suite::regular_suite() {
        let correct = bench.correct_output.expect("regular suite is exact");
        let clbits = bench.circuit.num_clbits();
        let device = device_for(bench.circuit.num_qubits());
        for strategy in STRATEGIES {
            let report = compile(&bench.circuit, &device, strategy).expect("compiles");
            let (compact, _) = report.circuit.compact_qubits();
            assert!(
                compact.num_qubits() <= 24,
                "{}: {} wires too many to verify",
                bench.name,
                compact.num_qubits()
            );
            let counts = Executor::ideal()
                .run_shots(&compact, 25, 7)
                .marginal(clbits);
            assert_eq!(
                counts.get(correct),
                25,
                "{} under {strategy}: expected {:b}, got {}",
                bench.name,
                correct,
                counts
            );
        }
    }
}

#[test]
fn qaoa_suite_compiles_under_all_strategies() {
    for bench in suite::qaoa_table_suite(5) {
        let device = device_for(bench.circuit.num_qubits());
        for strategy in STRATEGIES {
            let report = compile(&bench.circuit, &device, strategy)
                .unwrap_or_else(|e| panic!("{} under {strategy}: {e}", bench.name));
            assert!(
                report.two_qubit_gates >= bench.circuit.two_qubit_gate_count(),
                "{}: routing cannot remove program gates",
                bench.name
            );
        }
    }
}

#[test]
fn qs_max_reuse_saves_qubits_where_the_paper_says() {
    // BV family: always compressible to 2.
    let device = Device::mumbai(3);
    for n in [5usize, 8, 10] {
        let bench = caqr_benchmarks::bv::bv_all_ones(n);
        let report = compile(&bench.circuit, &device, Strategy::QsMaxReuse).unwrap();
        assert_eq!(report.qubits, 2, "BV_{n}");
    }
}

#[test]
fn sr_never_uses_more_qubits_than_baseline() {
    for bench in suite::regular_suite() {
        let device = device_for(bench.circuit.num_qubits());
        let base = compile(&bench.circuit, &device, Strategy::Baseline).unwrap();
        let sr = compile(&bench.circuit, &device, Strategy::Sr).unwrap();
        assert!(
            sr.qubits <= base.qubits,
            "{}: SR {} vs baseline {}",
            bench.name,
            sr.qubits,
            base.qubits
        );
    }
}

#[test]
fn qaoa_exact_distribution_preserved_through_qs() {
    use caqr::commuting::{CommutingSpec, Matcher};
    use caqr::qs;
    use caqr_sim::exact;

    let bench =
        caqr_benchmarks::qaoa::qaoa_benchmark(6, 0.3, caqr_benchmarks::qaoa::GraphKind::Random, 9);
    let spec = CommutingSpec::from_circuit(&bench.circuit).unwrap();
    let reference: std::collections::BTreeMap<u64, f64> = exact::distribution(&bench.circuit)
        .unwrap()
        .into_iter()
        .collect();
    let mask = (1u64 << 6) - 1;
    for point in qs::commuting::sweep(&spec, Matcher::Blossom) {
        let dist = exact::distribution(&point.circuit).unwrap();
        let mut merged: std::collections::BTreeMap<u64, f64> = Default::default();
        for (v, p) in dist {
            *merged.entry(v & mask).or_insert(0.0) += p;
        }
        for (v, p) in &reference {
            let got = merged.get(v).copied().unwrap_or(0.0);
            assert!(
                (got - p).abs() < 1e-9,
                "{} qubits, outcome {v:06b}: want {p}, got {got}",
                point.qubits
            );
        }
    }
}
