//! QASM round-trips for every benchmark circuit: export, re-import, and
//! verify both structure and exact output distribution survive.

use caqr_benchmarks::{extra, suite};
use caqr_circuit::qasm;
use caqr_sim::exact;

fn assert_roundtrip(name: &str, circuit: &caqr_circuit::Circuit) {
    let text = qasm::to_qasm(circuit);
    let parsed = qasm::from_qasm(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(parsed.num_qubits(), circuit.num_qubits(), "{name}");
    assert_eq!(parsed.len(), circuit.len(), "{name}");
    // Distributions must agree exactly (both are noiseless).
    if circuit.num_qubits() <= 13 {
        let a = exact::distribution(circuit).unwrap();
        let b: std::collections::BTreeMap<u64, f64> =
            exact::distribution(&parsed).unwrap().into_iter().collect();
        for (v, p) in a {
            let got = b.get(&v).copied().unwrap_or(0.0);
            assert!((got - p).abs() < 1e-9, "{name}: outcome {v:b}");
        }
    }
}

#[test]
fn regular_suite_round_trips() {
    for bench in suite::regular_suite() {
        assert_roundtrip(&bench.name, &bench.circuit);
    }
}

#[test]
fn qaoa_suite_round_trips() {
    for bench in suite::qaoa_table_suite(3) {
        // Structure only for the wide ones (handled inside the helper).
        assert_roundtrip(&bench.name, &bench.circuit);
    }
}

#[test]
fn extra_benchmarks_round_trip() {
    assert_roundtrip("GHZ_6", &extra::ghz(6).circuit);
    assert_roundtrip("QFT_5", &extra::qft(5, 0b101).circuit);
    assert_roundtrip("Mirror", &extra::mirror(5, 3, 7).circuit);
}

#[test]
fn transformed_circuits_round_trip() {
    // Dynamic-circuit output (mid-circuit measure + conditional X) must
    // survive the text format too.
    use caqr::qs;
    use caqr_circuit::depth::UnitDurations;
    let bench = caqr_benchmarks::bv::bv_all_ones(6);
    let smallest = qs::regular::sweep(&bench.circuit, &UnitDurations)
        .pop()
        .unwrap()
        .circuit;
    assert!(smallest.mid_circuit_measurement_count() > 0);
    assert_roundtrip("BV_6 transformed", &smallest);
}
