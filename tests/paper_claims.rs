//! Direct checks of the paper's qualitative claims on this implementation.

use caqr::commuting::{CommutingSpec, Matcher};
use caqr::{compile, qs, Strategy};
use caqr_arch::{Device, Topology};
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};
use caqr_benchmarks::{bv, suite};
use caqr_circuit::depth::UnitDurations;

/// §1: "for an n-qubit BV application, the minimal number of required
/// qubits is always 2, despite how many qubits are in the original
/// circuit."
#[test]
fn bv_always_compresses_to_two_qubits() {
    for n in [3usize, 5, 8, 12] {
        let bench = bv::bv_all_ones(n);
        let min = qs::regular::min_qubits(&bench.circuit, &UnitDurations);
        assert_eq!(min, 2, "BV_{n}");
    }
}

/// §2.1 / Fig. 2: measure + conditional X halves the reuse-sequence cost
/// (33,179 dt -> 16,467 dt).
#[test]
fn fig2_reset_optimization() {
    let cal = Device::mumbai(0).calibration().clone();
    assert_eq!(cal.measure_plus_reset_duration(), 33_179);
    assert_eq!(cal.measure_plus_condx_duration(), 16_467);
}

/// §2.2 / Fig. 3: QAOA-64 on a 30%-density power-law graph can shed over
/// 80% of its qubits; the random graph saves at least a third.
#[test]
fn fig3_qaoa64_saving_potential() {
    for (kind, min_saving) in [(GraphKind::PowerLaw, 0.5), (GraphKind::Random, 0.33)] {
        let graph = kind.generate(64, 0.3, 3);
        let circuit = maxcut_circuit(&graph, &[(0.7, 0.3)]);
        let spec = CommutingSpec::from_circuit(&circuit).unwrap();
        let bound = qs::commuting::min_qubits(&spec);
        let saving = 1.0 - bound as f64 / 64.0;
        assert!(
            saving >= min_saving,
            "{kind:?}: coloring bound {bound} saves only {saving:.2}"
        );
    }
    // Note: the paper's power-law instances reach an even lower floor than
    // its random ones; with our Barabási–Albert generator the dense core
    // raises the chromatic bound slightly above the random graph's, so the
    // floor comparison is not asserted here. The power-law *trade-off*
    // advantage (cheaper depth per saved qubit in the early sweep) is
    // asserted in `fig14_power_law_tradeoff` instead.
}

/// Figs. 4/5: the 5-qubit BV star cannot embed in the degree-3 device
/// without SWAPs, while one reuse removes the need.
#[test]
fn fig5_one_reuse_removes_swaps_on_bv5() {
    let device = Device::with_synthetic_calibration(Topology::five_qubit_t(), 7);
    let bench = bv::bv_all_ones(5);
    let base = compile(&bench.circuit, &device, Strategy::Baseline).unwrap();
    assert!(
        base.swaps >= 1,
        "degree-4 star needs SWAPs on a degree-3 device"
    );
    let sr = compile(&bench.circuit, &device, Strategy::Sr).unwrap();
    assert_eq!(sr.swaps, 0, "one reuse makes BV_5 embeddable");
    assert!(sr.qubits <= 4);
}

/// §4.2.1 / Fig. 13's qualitative shape: the logical depth increases
/// monotonically as qubit usage decreases.
#[test]
fn fig13_logical_depth_monotone() {
    for bench in suite::regular_suite() {
        let points = qs::regular::sweep(&bench.circuit, &UnitDurations);
        for w in points.windows(2) {
            assert!(
                w[1].depth() >= w[0].depth(),
                "{}: depth dropped from {} to {} when saving a qubit",
                bench.name,
                w[0].depth(),
                w[1].depth()
            );
        }
    }
}

/// §4.2.2 shape claims at our density interpretation (|E| = 0.3 * C(n,2),
/// which bounds the reachable floor via pathwidth): every instance saves a
/// substantial fraction, the 16-vertex ones reach half, and the power-law
/// floor beats the random floor at equal size ("the power-law graphs have
/// more reuse").
#[test]
fn fig14_qaoa_saves_half() {
    for n in [16usize, 32] {
        let mut floors = Vec::new();
        for kind in [GraphKind::Random, GraphKind::PowerLaw] {
            let graph = kind.generate(n, 0.3, 17);
            let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)])).unwrap();
            let points = qs::commuting::sweep(&spec, Matcher::Greedy);
            let min = points.last().unwrap().qubits;
            assert!(
                min * 4 <= n * 3,
                "QAOA-{n} {kind:?}: reached only {min} qubits (< 25% saving)"
            );
            if n == 16 {
                assert!(min * 2 <= n, "QAOA-16 {kind:?}: floor {min}");
            }
            floors.push(min);
        }
        assert!(
            floors[1] <= floors[0],
            "power-law floor {} vs random {}",
            floors[1],
            floors[0]
        );
    }
}

/// The paper's Fig. 3 extreme ("reduce qubit usage from 64 to as few
/// as 5") needs the hub-and-leaf scale-free structure: a sparse
/// Barabási–Albert instance compresses by an order of magnitude.
#[test]
fn fig3_sparse_scale_free_compresses_hard() {
    let graph = caqr_graph::gen::barabasi_albert(64, 2, 17);
    let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)])).unwrap();
    let points = qs::commuting::sweep(&spec, Matcher::Greedy);
    let min = points.last().unwrap().qubits;
    assert!(min <= 16, "sparse scale-free floor {min} (expected <= 16)");
}

/// §4.2.2: power-law graphs have "a better tradeoff between depth and
/// qubit number" — early savings cost relatively less depth than on random
/// graphs, because low-degree leaves retire cheaply.
#[test]
fn fig14_power_law_tradeoff() {
    let n = 32;
    let growth_at_quarter_saving = |kind: GraphKind| -> f64 {
        let graph = kind.generate(n, 0.3, 17);
        let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)])).unwrap();
        let points = qs::commuting::sweep(&spec, Matcher::Greedy);
        let base = points[0].depth() as f64;
        let at = points
            .iter()
            .find(|p| p.qubits <= n - n / 4)
            .expect("sweep reaches 25% saving");
        at.depth() as f64 / base
    };
    let pl = growth_at_quarter_saving(GraphKind::PowerLaw);
    let er = growth_at_quarter_saving(GraphKind::Random);
    assert!(
        pl <= er * 1.15,
        "power-law growth {pl:.2} should not exceed random {er:.2} by much"
    );
}

/// Table 2's qualitative claim: SR-CaQR never inserts more SWAPs than the
/// QS-CaQR min-SWAP sweep point, on the regular suite.
#[test]
fn table2_sr_never_worse_on_swaps() {
    for bench in suite::regular_suite() {
        let device = Device::mumbai(1);
        let qs_min = compile(&bench.circuit, &device, Strategy::QsMinSwap).unwrap();
        let sr = compile(&bench.circuit, &device, Strategy::Sr).unwrap();
        assert!(
            sr.swaps <= qs_min.swaps,
            "{}: SR {} vs QS-min-swap {}",
            bench.name,
            sr.swaps,
            qs_min.swaps
        );
    }
}

/// The theory behind the floors: a commuting circuit's reachable qubit
/// count is sandwiched between pathwidth+1 (exact, small graphs) and what
/// the sweep constructs. On small instances the sweep should land within
/// one of the optimum.
#[test]
fn commuting_sweep_floor_near_exact_pathwidth() {
    use caqr_graph::pathwidth;
    for seed in [3u64, 9, 21] {
        let graph = caqr_graph::gen::random_graph(9, 0.3, seed);
        let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)])).unwrap();
        let floor = qs::commuting::sweep(&spec, Matcher::Blossom)
            .last()
            .unwrap()
            .qubits;
        let optimum = pathwidth::exact(&graph) + 1;
        assert!(
            floor >= optimum,
            "floor {floor} below pathwidth bound {optimum}"
        );
        assert!(
            floor <= optimum + 1,
            "seed {seed}: sweep floor {floor} vs exact optimum {optimum}"
        );
    }
}

/// The advisor deliverable ("identify whether qubit reuse will be
/// beneficial"): GHZ and BV allow reuse; QFT's all-to-all interaction has
/// none.
#[test]
fn advisor_separates_reuse_friendly_from_hostile() {
    use caqr::advisor::{advise, Recommendation};
    use caqr_benchmarks::extra;

    let device = Device::mumbai(1);
    let bv = bv::bv_all_ones(8);
    assert_eq!(
        advise(&bv.circuit, &device).recommendation,
        Recommendation::Beneficial
    );
    let ghz = extra::ghz(8);
    assert_ne!(
        advise(&ghz.circuit, &device).recommendation,
        Recommendation::NotApplicable
    );
    let qft = extra::qft(6, 0);
    assert_eq!(
        advise(&qft.circuit, &device).recommendation,
        Recommendation::NotApplicable
    );
}

/// §3.4: the QS pass runs in polynomial time — smoke-check that the full
/// sweep of the largest regular benchmark finishes quickly.
#[test]
fn qs_sweep_terminates_fast() {
    let bench = caqr_benchmarks::revlib::multiply_13();
    let start = std::time::Instant::now();
    let points = qs::regular::sweep(&bench.circuit, &UnitDurations);
    assert!(!points.is_empty());
    assert!(
        start.elapsed().as_secs() < 60,
        "sweep took {:?}",
        start.elapsed()
    );
}
