//! Umbrella crate for the CaQR reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one coherent namespace. Library users should depend on the individual
//! crates ([`caqr`], [`caqr_circuit`], ...) directly.

pub use caqr;
pub use caqr_arch;
pub use caqr_benchmarks;
pub use caqr_circuit;
pub use caqr_graph;
pub use caqr_optim;
pub use caqr_sim;
