//! Quantum teleportation as a dynamic circuit: mid-circuit measurement
//! plus classically-controlled corrections — the same hardware primitives
//! CaQR's qubit reuse is built on (Fig. 2's measure + conditional gates).
//!
//! ```sh
//! cargo run --example dynamic_teleportation
//! ```

use caqr_circuit::{draw, Circuit, Clbit, Gate, Qubit};
use caqr_sim::{exact, Executor};

fn main() {
    // Teleport the state Ry(0.9)|0> from q0 to q2.
    let theta = 0.9;
    let (q0, q1, q2) = (Qubit::new(0), Qubit::new(1), Qubit::new(2));
    let (c0, c1, c2) = (Clbit::new(0), Clbit::new(1), Clbit::new(2));

    let mut c = Circuit::new(3, 3);
    c.ry(theta, q0); // the payload
    c.h(q1); // Bell pair q1-q2
    c.cx(q1, q2);
    c.cx(q0, q1); // Bell measurement basis change
    c.h(q0);
    c.measure(q0, c0);
    c.measure(q1, c1);
    // Classically-controlled corrections on the receiver.
    c.cond_x(q2, c1);
    c.push(caqr_circuit::Instruction {
        gate: Gate::Z,
        qubits: vec![q2],
        clbit: None,
        condition: Some(c0),
    });
    c.measure(q2, c2);

    println!("teleportation circuit:\n{}", draw::to_ascii(&c));

    // The receiver's statistics must match the payload: P(1) = sin^2(t/2).
    let expected_p1 = (theta / 2.0).sin().powi(2);
    let counts = Executor::ideal().run_shots(&c, 20_000, 7);
    let measured_p1: f64 = counts
        .iter()
        .filter(|(v, _)| v >> 2 & 1 == 1)
        .map(|(_, n)| n as f64)
        .sum::<f64>()
        / counts.total() as f64;
    println!("P(q2 = 1): expected {expected_p1:.4}, sampled {measured_p1:.4}");
    assert!((measured_p1 - expected_p1).abs() < 0.02);

    // Exact check via the branching simulator.
    let dist = exact::distribution(&c).expect("small circuit");
    let exact_p1: f64 = dist
        .iter()
        .filter(|(v, _)| v >> 2 & 1 == 1)
        .map(|(_, p)| p)
        .sum();
    println!("P(q2 = 1): exact    {exact_p1:.4}");
    assert!((exact_p1 - expected_p1).abs() < 1e-9);
    println!("teleportation verified: corrections keyed off mid-circuit measurements.");
}
