//! Capacity planner: "can my N-qubit circuit run on an M-qubit machine?"
//!
//! QS-CaQR's qubit-budget interface answers yes/no per budget and hands
//! back the transformed circuit — the paper's pitch that reuse lets small
//! machines run large programs.
//!
//! ```sh
//! cargo run --example capacity_planner
//! ```

use caqr::qs;
use caqr_benchmarks::{bv, revlib, suite::Benchmark};
use caqr_circuit::depth::UnitDurations;

fn plan(bench: &Benchmark, budget: usize) {
    let width = bench.circuit.num_qubits();
    match qs::regular::to_target(&bench.circuit, budget, &UnitDurations) {
        Some(c) => println!(
            "{:<12} {width:>2} qubits -> budget {budget:>2}: YES (depth {} -> {})",
            bench.name,
            bench.circuit.depth(),
            c.depth()
        ),
        None => println!(
            "{:<12} {width:>2} qubits -> budget {budget:>2}: no",
            bench.name
        ),
    }
}

fn main() {
    println!("Can it fit? QS-CaQR qubit-budget planning\n");
    let benches = [
        bv::bv_all_ones(10),
        revlib::multiply_13(),
        revlib::system_9(),
        revlib::cc_10(),
        revlib::xor_5(),
    ];
    for bench in &benches {
        let floor = qs::regular::min_qubits(&bench.circuit, &UnitDurations);
        println!(
            "{} — {} qubits, reuse floor {}:",
            bench.name,
            bench.circuit.num_qubits(),
            floor
        );
        for budget in [2usize, 4, 6, 8] {
            plan(bench, budget);
        }
        println!();
    }
}
