//! Quickstart: compress a Bernstein–Vazirani circuit with QS-CaQR and run
//! it on the simulator (the paper's Fig. 1 walkthrough).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use caqr::qs;
use caqr_benchmarks::bv;
use caqr_circuit::depth::UnitDurations;
use caqr_sim::Executor;

fn main() {
    // The 5-qubit BV instance with hidden string 1111 (Fig. 1a).
    let bench = bv::bv_all_ones(5);
    let hidden = bench.correct_output.expect("BV is deterministic");
    println!(
        "original circuit: {} qubits, depth {}",
        bench.circuit.num_qubits(),
        bench.circuit.depth()
    );

    // Sweep every achievable qubit count. BV always reaches 2 qubits.
    let sweep = qs::regular::sweep(&bench.circuit, &UnitDurations);
    for point in &sweep {
        println!(
            "  {} qubits -> depth {} ({} reuses)",
            point.qubits,
            point.depth(),
            point.reuses
        );
    }

    // The smallest version still computes the same function.
    let smallest = &sweep.last().expect("sweep is non-empty").circuit;
    println!(
        "\ntransformed circuit ({} qubits):\n{smallest}",
        smallest.num_qubits()
    );
    let counts = Executor::ideal().run_shots(smallest, 1000, 42);
    println!("1000 ideal shots: {counts}");
    assert_eq!(counts.get(hidden), 1000);
    println!("hidden string recovered: {hidden:04b}");
}
