//! QAOA max-cut end to end: build the circuit from a problem graph,
//! compress it with the commuting-gate QS-CaQR path, compile, and optimize
//! the parameters with COBYLA on the noisy simulator.
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut
//! ```

use caqr::commuting::CommutingSpec;
use caqr::{compile, qs, sr, Strategy};
use caqr_arch::Device;
use caqr_benchmarks::qaoa::{maxcut_circuit, GraphKind};
use caqr_graph::Graph;
use caqr_optim::{cobyla, Options};
use caqr_sim::{metrics, Executor, NoiseModel};

fn energy(graph: &Graph, params: &[f64], device: &Device, seed: u64) -> f64 {
    let circuit = maxcut_circuit(graph, &[(params[0], params[1])]);
    let report = compile(&circuit, device, Strategy::Sr).expect("fits device");
    let (compact, _) = report.circuit.compact_qubits();
    let noisy = Executor::noisy(NoiseModel::from_device(device.clone()));
    let counts = noisy
        .run_shots(&compact, 512, seed)
        .marginal(graph.num_vertices());
    -metrics::expected_cut(graph, &counts)
}

fn main() {
    let device = Device::mumbai(7);
    let graph = GraphKind::Random.generate(8, 0.4, 11);
    println!(
        "max-cut instance: {} vertices, {} edges (brute-force optimum = {})",
        graph.num_vertices(),
        graph.num_edges(),
        metrics::max_cut_brute_force(&graph)
    );

    // How far can reuse shrink this circuit?
    let spec = CommutingSpec::from_circuit(&maxcut_circuit(&graph, &[(0.7, 0.3)]))
        .expect("QAOA has the commuting shape");
    println!(
        "coloring bound: {} qubits (from {})",
        qs::commuting::min_qubits(&spec),
        graph.num_vertices()
    );
    let sweep = qs::commuting::sweep(&spec, sr::default_matcher(&spec));
    for p in &sweep {
        println!("  {} qubits -> depth {}", p.qubits, p.depth());
    }

    // Optimize the (gamma, beta) parameters against the noisy device.
    let mut round = 0u64;
    let result = cobyla::minimize(
        |x| {
            round += 1;
            energy(&graph, x, &device, round)
        },
        &[0.7, 0.3],
        &Options {
            max_evals: 40,
            initial_step: 0.4,
            tolerance: 1e-4,
        },
    );
    println!(
        "\nafter {} COBYLA rounds: best expected cut = {:.3} at gamma={:.3}, beta={:.3}",
        result.evals, -result.fx, result.x[0], result.x[1]
    );
}
