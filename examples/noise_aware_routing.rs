//! Noise-aware routing with SR-CaQR: compare the baseline compiler against
//! SR-CaQR on a heavy-hex device, reporting SWAPs, qubit usage, duration,
//! and estimated success probability.
//!
//! ```sh
//! cargo run --example noise_aware_routing
//! ```

use caqr::{compile, Strategy};
use caqr_arch::Device;
use caqr_benchmarks::{bv, revlib};

fn main() {
    let device = Device::mumbai(2023);
    println!("device: {}\n", device.topology());

    for bench in [
        bv::bv_all_ones(10),
        revlib::multiply_13(),
        revlib::system_9(),
        revlib::cc_10(),
    ] {
        println!("{}:", bench.name);
        for strategy in [Strategy::Baseline, Strategy::Sr] {
            match compile(&bench.circuit, &device, strategy) {
                Ok(report) => println!("  {report}"),
                Err(e) => println!("  {strategy}: {e}"),
            }
        }
        println!();
    }
    println!("SR-CaQR's wins come from (a) reclaimed wires avoiding SWAPs and");
    println!("(b) error-variability-aware physical qubit choices (paper §3.3).");
}
